"""A12 — time synchronisation interval vs timestamp skew.

The paper assumes devices and aggregators are time-synchronized; TDMA
slotting and window alignment rest on it.  This ablation sweeps the
sync interval and measures the worst residual RTC error — confirming
the linear interval x ppm bound and showing what "unsynchronized"
would cost (window misattribution at scale).
"""

import numpy as np

from repro.experiments.report import render_table
from repro.hw.ds3231 import Ds3231Rtc
from repro.net.timesync import TimeSyncService
from repro.sim import Simulator


def run_point(interval_s: float, duration_s: float = 600.0, clocks: int = 8):
    sim = Simulator(seed=0)
    service = TimeSyncService(sim, "sync", interval_s=interval_s)
    rtcs = [Ds3231Rtc(np.random.default_rng(i), ppm_max=2.0) for i in range(clocks)]
    for i, rtc in enumerate(rtcs):
        service.register_clock(f"c{i}", rtc)
    service.start()
    worst = 0.0

    def probe():
        nonlocal worst
        for rtc in rtcs:
            worst = max(worst, abs(rtc.error_at(sim.now)))

    sim.every(1.0, probe)
    sim.run_until(duration_s)
    return worst


def test_sync_interval_bounds_skew(once):
    def sweep():
        rows = []
        for interval in (10.0, 60.0, 300.0):
            worst = run_point(interval)
            bound = interval * 2e-6
            rows.append([interval, worst * 1e6, bound * 1e6])
        # The "no sync" reference: free-running for the whole 600 s.
        free = run_point(1e9, duration_s=600.0)
        rows.append([float("inf"), free * 1e6, 600.0 * 2e-6 * 1e6])
        return rows

    rows = once(sweep)
    print()
    print(render_table(["sync_interval_s", "worst_skew_us", "bound_us"], rows))
    for interval, worst_us, bound_us in rows:
        assert worst_us <= bound_us + 1e-3
    # Skew grows with the interval: 60 s sync beats free-running by ~10x.
    assert rows[1][1] < rows[-1][1] / 5
