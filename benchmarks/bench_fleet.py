"""A13 — fleet stress: many networks, many devices, mobility churn.

A city-block-scale run: 6 networks x 6 devices with four devices
continuously migrating between networks.  Asserts the architecture's
global invariants hold under churn — ledger valid, every device billed,
roaming consolidated, anomaly rate at noise level — and reports the
simulation cost.
"""

import time

from repro.runtime import build
from repro.workloads.scenarios import scaled_spec


def test_fleet_with_mobility_churn(once):
    def run():
        scenario = build(
            scaled_spec(n_networks=6, devices_per_network=6, seed=77, enter_devices=True)
        )
        # Four roamers hop to a neighbour network mid-run.
        for i in range(4):
            roamer = f"dev-{i}-0"
            target = f"net-{(i + 1) % 6}"
            device = scenario.device(roamer)
            scenario.simulator.schedule(
                15.0 + i, lambda d=device: d.leave_network()
            )
            scenario.simulator.schedule(
                19.0 + i,
                lambda d=device, t=target, s=scenario: d.enter_network(
                    s.aggregator(t)
                ),
            )
        start = time.perf_counter()
        scenario.run_until(40.0)
        wall = time.perf_counter() - start
        return scenario, wall

    scenario, wall = once(run)
    scenario.chain.validate()
    events = scenario.simulator.events_executed

    # Every device has ledger records; roamers have roaming records.
    for name, device in scenario.devices.items():
        assert scenario.chain.records_for_device(device.device_id.uid), name
    roaming = [
        r
        for block in scenario.chain
        for r in block.records
        if r.get("roaming")
    ]
    assert roaming
    roamer_names = {r["device"] for r in roaming}
    assert roamer_names == {f"dev-{i}-0" for i in range(4)}

    # Network anomalies under churn are dominated by the *correct*
    # alarms for unmetered consumption: a roamer electrically attached
    # at its destination but still mid-registration (arrivals at
    # t = 19..22 plus the ~6 s handshake) and the windows straddling a
    # departure.  Outside those, only square-load-edge straddle noise
    # remains, bounded at a couple of percent of all checks.
    total_checks = sum(
        u.verifier.stats.network_checks for u in scenario.aggregators.values()
    )
    assert total_checks > 500
    anomaly_times = [
        record.time
        for record in scenario.simulator.trace.by_category("agg.network_anomaly")
    ]
    churn_windows = [(19.0 + i, 19.0 + i + 9.0) for i in range(4)] + [
        (15.0 + i, 15.0 + i + 2.5) for i in range(4)
    ]
    strays = [
        t for t in anomaly_times
        if not any(lo <= t <= hi for lo, hi in churn_windows)
    ]
    assert anomaly_times  # the unmetered arrivals ARE detected
    assert len(strays) <= 0.02 * total_checks

    records = sum(b.header.record_count for b in scenario.chain)
    print(
        f"\nfleet: 36 devices / 6 networks / 40 s, {records} records, "
        f"{scenario.chain.height} blocks, {events} events in {wall:.2f}s wall "
        f"({events / max(wall, 1e-9):,.0f} events/s)"
    )
