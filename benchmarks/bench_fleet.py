"""A13 — fleet stress: many networks, many devices, mobility churn.

A city-block-scale run: 6 networks x 6 devices with four devices
continuously migrating between networks.  Asserts the architecture's
global invariants hold under churn — ledger valid, every device billed,
roaming consolidated, anomaly rate at noise level — and reports the
simulation cost.  The fleet also runs on the lightweight ``direct``
transport backend, and ``python bench_fleet.py --smoke`` drives a tiny
fleet through both backends without pytest (the CI smoke step).
"""

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import case, check_regression, write_results
from repro.runtime import TransportSpec, build
from repro.workloads.scenarios import scaled_spec


def _run_fleet(kind="mqtt", n_networks=6, devices_per_network=6, horizon_s=40.0, seed=77):
    """One churned fleet run on the chosen backend; returns (scenario, wall)."""
    scenario = build(
        scaled_spec(
            n_networks=n_networks,
            devices_per_network=devices_per_network,
            seed=seed,
            enter_devices=True,
            transport=TransportSpec(kind=kind),
        )
    )
    # Roamers hop to a neighbour network mid-run.
    for i in range(min(4, n_networks)):
        roamer = f"dev-{i}-0"
        target = f"net-{(i + 1) % n_networks}"
        device = scenario.device(roamer)
        scenario.simulator.schedule(
            15.0 + i, lambda d=device: d.leave_network()
        )
        scenario.simulator.schedule(
            19.0 + i,
            lambda d=device, t=target, s=scenario: d.enter_network(
                s.aggregator(t)
            ),
        )
    start = time.perf_counter()
    scenario.run_until(horizon_s)
    wall = time.perf_counter() - start
    return scenario, wall


def test_fleet_with_mobility_churn(once):
    def run():
        return _run_fleet(kind="mqtt")

    scenario, wall = once(run)
    scenario.chain.validate()
    events = scenario.simulator.events_executed

    # Every device has ledger records; roamers have roaming records.
    for name, device in scenario.devices.items():
        assert scenario.chain.records_for_device(device.device_id.uid), name
    roaming = [
        r
        for block in scenario.chain
        for r in block.records
        if r.get("roaming")
    ]
    assert roaming
    roamer_names = {r["device"] for r in roaming}
    assert roamer_names == {f"dev-{i}-0" for i in range(4)}

    # Network anomalies under churn are dominated by the *correct*
    # alarms for unmetered consumption: a roamer electrically attached
    # at its destination but still mid-registration (arrivals at
    # t = 19..22 plus the ~6 s handshake) and the windows straddling a
    # departure.  Outside those, only square-load-edge straddle noise
    # remains, bounded at a couple of percent of all checks.
    total_checks = sum(
        u.verifier.stats.network_checks for u in scenario.aggregators.values()
    )
    assert total_checks > 500
    anomaly_times = [
        record.time
        for record in scenario.simulator.trace.by_category("agg.network_anomaly")
    ]
    churn_windows = [(19.0 + i, 19.0 + i + 9.0) for i in range(4)] + [
        (15.0 + i, 15.0 + i + 2.5) for i in range(4)
    ]
    strays = [
        t for t in anomaly_times
        if not any(lo <= t <= hi for lo, hi in churn_windows)
    ]
    assert anomaly_times  # the unmetered arrivals ARE detected
    assert len(strays) <= 0.02 * total_checks

    records = sum(b.header.record_count for b in scenario.chain)
    print(
        f"\nfleet: 36 devices / 6 networks / 40 s, {records} records, "
        f"{scenario.chain.height} blocks, {events} events in {wall:.2f}s wall "
        f"({events / max(wall, 1e-9):,.0f} events/s)"
    )


def test_fleet_on_direct_backend(once):
    """The same churned fleet holds its invariants on the fast backend."""
    scenario, wall = once(_run_fleet, kind="direct")
    scenario.chain.validate()
    assert scenario.channel is None
    for name, device in scenario.devices.items():
        assert scenario.chain.records_for_device(device.device_id.uid), name
    roaming = [
        r
        for block in scenario.chain
        for r in block.records
        if r.get("roaming")
    ]
    assert {r["device"] for r in roaming} == {f"dev-{i}-0" for i in range(4)}
    events = scenario.simulator.events_executed
    print(
        f"\nfleet[direct]: 36 devices / 6 networks / 40 s, "
        f"{scenario.chain.height} blocks, {events} events in {wall:.2f}s wall"
    )


def main(argv=None):
    """CI smoke entry point: a tiny fleet once per backend, no pytest.

    Asserts both backends complete (devices registered, blocks written,
    valid ledger) and records the mqtt-vs-direct wall-clock ratio.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fleet (2 networks x 3 devices, 30 s) instead of the full one",
    )
    parser.add_argument(
        "--out", metavar="JSON", help="write/update this BENCH_fleet.json file"
    )
    parser.add_argument(
        "--check",
        metavar="JSON",
        help="fail when any case drops >30%% below this file's committed rates",
    )
    args = parser.parse_args(argv)
    config = "smoke" if args.smoke else "full"
    shape = (
        dict(n_networks=2, devices_per_network=3, horizon_s=30.0)
        if args.smoke
        else dict()
    )
    # Best-of repeats for the sub-second smoke shape: CI gates on these
    # rates with a 30% threshold, and single tiny runs are too noisy.
    repeats = 3 if args.smoke else 1
    walls = {}
    cases = {}
    for kind in ("mqtt", "direct"):
        scenario, wall = _run_fleet(kind=kind, **shape)
        for _ in range(repeats - 1):
            rerun, rerun_wall = _run_fleet(kind=kind, **shape)
            if rerun_wall < wall:
                scenario, wall = rerun, rerun_wall
        scenario.chain.validate()
        registered = sum(
            unit.registry.member_count for unit in scenario.aggregators.values()
        )
        # Roamers also register as visitors at their destination, so the
        # sum over registries can exceed the device count.
        assert registered >= len(scenario.devices), (kind, registered)
        assert scenario.chain.height > 0, kind
        for name, device in scenario.devices.items():
            assert scenario.chain.records_for_device(device.device_id.uid), (kind, name)
        walls[kind] = wall
        cases[f"fleet_{kind}"] = case(scenario.simulator.events_executed, wall)
        print(
            f"{kind}: {len(scenario.devices)} devices, "
            f"{scenario.chain.height} blocks, {wall:.2f}s wall"
        )
    print(f"mqtt/direct wall-clock ratio: {walls['mqtt'] / walls['direct']:.2f}x")

    failures = []
    if args.check and Path(args.check).exists():
        failures = check_regression(cases, args.check, config)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
    if args.out:
        write_results(args.out, "fleet", config, cases)
        print(f"wrote {args.out} [{config}]")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
