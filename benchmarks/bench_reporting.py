"""E5 — sustained reporting at T_measure.

Paper: "the pre-configured measurement interval for the device,
T_measure, was set to 10 times per second", every report acknowledged.
Verifies the steady-state rate and measures simulator cost per
simulated second of the full testbed.
"""

from repro.runtime import build
from repro.workloads.scenarios import paper_testbed_spec


def test_sustained_10hz_reporting(once):
    def run():
        scenario = build(paper_testbed_spec(seed=5))
        scenario.run_until(30.0)
        return scenario

    scenario = once(run)
    print()
    for name, device in scenario.devices.items():
        registered_at = device.last_handshake.registered_at
        reporting_span = 30.0 - registered_at
        live = device.acked_count
        rate = live / reporting_span
        print(f"{name}: {rate:.1f} acked reports/s over {reporting_span:.1f}s")
        # 10 Hz cadence, allowing for the buffered backlog counted too.
        assert rate > 9.0


def test_simulation_throughput(benchmark):
    def run_one_second():
        scenario = build(paper_testbed_spec(seed=6))
        scenario.run_until(5.0)
        return scenario.simulator.events_executed

    events = benchmark(run_one_second)
    print(f"\nkernel events for 5 simulated seconds of the testbed: {events}")
