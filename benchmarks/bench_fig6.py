"""E2+E3 / Fig. 6 — device mobility timeline and T_handshake.

Paper: the mobile device's consumption remains billable across a network
transition; temporary-membership registration takes 6 s on average
(5.5-6.5 s over 15 runs); data buffered during the handshake is
backfilled once membership is established.
"""

from repro.experiments.fig6 import run_fig6, run_handshake_distribution
from repro.experiments.report import render_fig6, render_handshake_stats


def test_fig6_mobility_timeline(once):
    result = once(run_fig6, seed=0)
    print()
    print(render_fig6(result))
    assert 5.0 < result.handshake_s < 7.0
    assert result.buffered_records > 0
    assert result.first_forwarded_at is not None


def test_handshake_distribution(once):
    stats = once(run_handshake_distribution, runs=15, base_seed=0)
    print()
    print(render_handshake_stats(stats))
    # Paper: mean ~6 s, range 5.5-6.5 s over 15 runs.
    assert 5.5 < stats.mean_s < 6.5
    assert stats.max_s - stats.min_s < 1.5
