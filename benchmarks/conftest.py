"""Shared benchmark helpers.

Heavy simulation benches run once per benchmark (a full simulated run
is itself thousands of kernel events; statistical repetition comes from
seeded multi-run experiments, not from pytest-benchmark rounds).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
