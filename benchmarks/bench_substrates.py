"""Micro-benchmarks of the substrates the experiments run on.

Not a paper artifact — these guard the reproduction itself: the kernel,
hashing, Merkle trees and MQTT routing must stay fast enough that the
paper-scale experiments run in seconds.
"""

from repro.chain.hashing import hash_value
from repro.chain.merkle import MerkleTree
from repro.net import ChannelParams, MqttBroker, WirelessChannel
from repro.sim import Simulator

RECORD = {
    "device": "device1", "device_uid": "abc123", "sequence": 42,
    "measured_at": 1.5, "interval_s": 0.1, "current_ma": 123.4,
    "voltage_v": 3.3, "energy_mwh": 0.0113, "buffered": False,
}


def test_kernel_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator(trace=False)
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            sim.schedule(i * 1e-4, tick)
        sim.run()
        return count[0]

    executed = benchmark(run_10k_events)
    assert executed == 10_000


def test_canonical_hash_cost(benchmark):
    digest = benchmark(hash_value, RECORD)
    assert len(digest) == 64


def test_merkle_tree_of_1000_records(benchmark):
    records = [dict(RECORD, sequence=i) for i in range(1000)]

    def build():
        return MerkleTree(records).root

    root = benchmark(build)
    assert len(root) == 64


def test_mqtt_routing_cost(benchmark):
    sim = Simulator(trace=False)
    broker = MqttBroker(sim, "broker", processing_latency_s=0.0)
    hits = [0]
    broker.subscribe("meter/+/report", lambda t, p: hits.__setitem__(0, hits[0] + 1))
    for i in range(64):
        broker.subscribe(f"device/d{i}/ctrl", lambda t, p: None)

    def route_100():
        for i in range(100):
            broker.deliver(f"meter/d{i % 8}/report", RECORD)
        sim.run()

    benchmark(route_100)
    assert hits[0] > 0


def test_channel_rssi_and_per(benchmark):
    channel = WirelessChannel(ChannelParams(), Simulator().rng.stream("c"))

    def evaluate():
        rssi = channel.rssi_dbm(25.0)
        return channel.packet_error_rate(rssi)

    per = benchmark(evaluate)
    assert 0.0 <= per <= 1.0
