"""Micro-benchmarks of the substrates the experiments run on.

Not a paper artifact — these guard the reproduction itself: the kernel,
hashing, Merkle trees and message routing must stay fast enough that
the paper-scale experiments run in seconds.
"""

import time

from repro.chain.hashing import hash_value
from repro.chain.merkle import MerkleTree
from repro.net import ChannelParams, MqttBroker, WirelessChannel
from repro.sim import Simulator
from repro.transport import DirectTransport, MqttTransport, QoS

RECORD = {
    "device": "device1", "device_uid": "abc123", "sequence": 42,
    "measured_at": 1.5, "interval_s": 0.1, "current_ma": 123.4,
    "voltage_v": 3.3, "energy_mwh": 0.0113, "buffered": False,
}


def test_kernel_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator(trace=False)
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            sim.schedule(i * 1e-4, tick)
        sim.run()
        return count[0]

    executed = benchmark(run_10k_events)
    assert executed == 10_000


def test_canonical_hash_cost(benchmark):
    digest = benchmark(hash_value, RECORD)
    assert len(digest) == 64


def test_merkle_tree_of_1000_records(benchmark):
    records = [dict(RECORD, sequence=i) for i in range(1000)]

    def build():
        return MerkleTree(records).root

    root = benchmark(build)
    assert len(root) == 64


def test_mqtt_routing_cost(benchmark):
    sim = Simulator(trace=False)
    broker = MqttBroker(sim, "broker", processing_latency_s=0.0)
    hits = [0]
    broker.subscribe("meter/+/report", lambda t, p: hits.__setitem__(0, hits[0] + 1))
    for i in range(64):
        broker.subscribe(f"device/d{i}/ctrl", lambda t, p: None)

    def route_100():
        for i in range(100):
            broker.deliver(f"meter/d{i % 8}/report", RECORD)
        sim.run()

    benchmark(route_100)
    assert hits[0] > 0


def _transport_for(kind, sim):
    if kind == "mqtt":
        channel = WirelessChannel(
            ChannelParams(shadowing_sigma_db=0.0), sim.rng.stream("channel")
        )
        return MqttTransport(channel)
    return DirectTransport()


def _messaging_wall_clock(kind, n_hubs=50, devices_per_hub=20, messages=10):
    """Wall-clock of one publish burst across a 1k-link fleet's uplinks.

    The subscription tables mirror a real aggregator's: four wildcard
    uplink filters plus one exact control topic per device.
    """
    sim = Simulator(trace=False, seed=11)
    transport = _transport_for(kind, sim)
    links = []
    delivered = [0]
    for h in range(n_hubs):
        hub = transport.make_endpoint(sim, f"agg{h}")
        for purpose in ("report", "join", "leave", "sync"):
            hub.subscribe(
                f"meter/+/{purpose}",
                lambda t, p: delivered.__setitem__(0, delivered[0] + 1),
            )
        for d in range(devices_per_hub):
            hub.subscribe(f"device/agg{h}-d{d}/ctrl", lambda t, p: None)
            link = transport.make_link(sim, f"agg{h}-d{d}")
            link.connect(hub, -50.0)
            links.append((link, h, d))
    sim.run()
    start = time.perf_counter()
    for link, h, d in links:
        for i in range(messages):
            link.publish(f"meter/agg{h}-d{d}/report", i, qos=QoS.AT_LEAST_ONCE)
    sim.run()
    wall = time.perf_counter() - start
    assert delivered[0] == len(links) * messages
    return wall


def test_direct_transport_beats_mqtt_at_1k_devices(once):
    """The lightweight backend's reason to exist: >= 3x on the wire path."""

    def compare():
        _messaging_wall_clock("direct")  # warm both code paths
        mqtt_wall = _messaging_wall_clock("mqtt")
        direct_wall = _messaging_wall_clock("direct")
        return mqtt_wall, direct_wall

    mqtt_wall, direct_wall = once(compare)
    ratio = mqtt_wall / direct_wall
    print(
        f"\n1k-device publish burst: mqtt {mqtt_wall:.3f}s, "
        f"direct {direct_wall:.3f}s ({ratio:.1f}x)"
    )
    assert ratio >= 3.0


def test_channel_rssi_and_per(benchmark):
    channel = WirelessChannel(ChannelParams(), Simulator().rng.stream("c"))

    def evaluate():
        rssi = channel.rssi_dbm(25.0)
        return channel.packet_error_rate(rssi)

    per = benchmark(evaluate)
    assert 0.0 <= per <= 1.0
