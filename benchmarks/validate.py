"""Shared schema validator for every committed ``BENCH_*.json`` artifact.

One entry point replaces the per-bench ``--validate`` one-offs::

    PYTHONPATH=src python -m benchmarks.validate            # repo root
    PYTHONPATH=src python -m benchmarks.validate BENCH_kernel.json ...

Covered suites (dispatched on the file's ``suite`` field):

* ``kernel`` — throughput cases, including the vector curve: the full
  config must carry ``fleet_1k_vector`` with its ``kernel_events`` /
  ``reference_events_per_s`` / ``speedup`` extras next to the preserved
  scalar ``fleet_1k_direct`` reference.
* ``fleet`` — plain throughput cases (both transport backends).
* ``shard`` — throughput plus the digest invariant: every shard count
  of one fleet must report the same ledger digest.
* ``ledger`` — the delay-vs-traffic curve and pruning acceptance bound
  (delegated to :func:`repro.experiments.ledger_sync.validate_bench`,
  the module that writes the artifact).
* ``serve`` — the sustained-ingestion curve over batch sizes: every
  case carries ``batch_size``/``clients`` extras, and within a config
  the per-report throughput must not *decrease* as batches grow (the
  batch idiom's whole point).

Each validator returns a list of problem strings; the CLI prints them
and exits non-zero when any file is invalid or missing.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

# Keys every throughput case must carry (written by _harness.case()).
THROUGHPUT_KEYS = {"events", "wall_s", "events_per_s"}

# The shard suite's cases add provenance the digest gate relies on.
SHARD_CASE_KEYS = THROUGHPUT_KEYS | {
    "shards",
    "basis",
    "critical_path_s",
    "available_cpus",
    "digest",
}

# The kernel full config must include the vectorized fleet curve with
# its comparison metadata, alongside the scalar case it is measured
# against.
KERNEL_VECTOR_CASE = "fleet_1k_vector"
KERNEL_VECTOR_KEYS = {"kernel_events", "reference_events_per_s", "speedup"}


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_throughput_case(
    problems: list[str], where: str, record: Any, required: set[str]
) -> bool:
    """Common shape check; returns True when the record is an object."""
    if not isinstance(record, dict):
        problems.append(f"{where}: case is not an object")
        return False
    missing = required - set(record)
    if missing:
        problems.append(f"{where}: missing {sorted(missing)}")
        return False
    for key in required & THROUGHPUT_KEYS:
        if not _numeric(record[key]):
            problems.append(f"{where}: {key} is not numeric")
            return False
    if record["events"] <= 0 or record["events_per_s"] <= 0:
        problems.append(f"{where}: no throughput recorded")
    return True


def _configs(problems: list[str], data: Any, suite: str) -> dict[str, Any]:
    if not isinstance(data, dict):
        problems.append("document is not an object")
        return {}
    if data.get("suite") != suite:
        problems.append(f"suite is {data.get('suite')!r}, expected {suite!r}")
    configs = data.get("configs")
    if not isinstance(configs, dict) or not configs:
        problems.append("configs must be a non-empty object")
        return {}
    return configs


def validate_kernel(data: Any) -> list[str]:
    """Kernel suite: throughput cases + the vector curve's extras."""
    problems: list[str] = []
    for config_name, cases in _configs(problems, data, "kernel").items():
        if not isinstance(cases, dict) or not cases:
            problems.append(f"{config_name}: empty config")
            continue
        for case_name, record in cases.items():
            where = f"{config_name}/{case_name}"
            if not _check_throughput_case(problems, where, record, THROUGHPUT_KEYS):
                continue
            if case_name == KERNEL_VECTOR_CASE:
                missing = KERNEL_VECTOR_KEYS - set(record)
                if missing:
                    problems.append(f"{where}: vector case missing {sorted(missing)}")
        if config_name == "full":
            if KERNEL_VECTOR_CASE not in cases:
                problems.append(f"{config_name}: vector curve not recorded")
            if "fleet_1k_direct" not in cases:
                problems.append(f"{config_name}: scalar reference case missing")
    return problems


def validate_fleet(data: Any) -> list[str]:
    """Fleet suite: plain throughput cases."""
    problems: list[str] = []
    for config_name, cases in _configs(problems, data, "fleet").items():
        if not isinstance(cases, dict) or not cases:
            problems.append(f"{config_name}: empty config")
            continue
        for case_name, record in cases.items():
            _check_throughput_case(
                problems, f"{config_name}/{case_name}", record, THROUGHPUT_KEYS
            )
    return problems


def validate_shard(data: Any) -> list[str]:
    """Shard suite: throughput, provenance, and the digest invariant."""
    problems: list[str] = []
    for config_name, cases in _configs(problems, data, "shard").items():
        if not isinstance(cases, dict) or not cases:
            problems.append(f"{config_name}: empty config")
            continue
        digests: dict[str, str] = {}
        for case_name, record in cases.items():
            where = f"{config_name}/{case_name}"
            if not _check_throughput_case(problems, where, record, SHARD_CASE_KEYS):
                continue
            if record["basis"] != "critical_path":
                problems.append(f"{where}: unexpected basis {record['basis']!r}")
            if record["shards"] > 1 and "speedup_vs_serial" not in record:
                problems.append(f"{where}: multi-shard case lacks speedup_vs_serial")
            fleet = case_name.rsplit("_shards", 1)[0]
            if fleet in digests and digests[fleet] != record["digest"]:
                problems.append(
                    f"{where}: digest differs from {fleet}'s other shard counts"
                )
            digests.setdefault(fleet, record["digest"])
    return problems


def validate_ledger(data: Any) -> list[str]:
    """Ledger suite: reuse the writer's own schema check."""
    from repro.experiments.ledger_sync import validate_bench

    return validate_bench(data)


# The serve suite's cases add the ingestion shape they were measured at.
SERVE_CASE_KEYS = THROUGHPUT_KEYS | {"batch_size", "clients"}


def validate_serve(data: Any) -> list[str]:
    """Serve suite: throughput per batch size, monotone amortisation."""
    problems: list[str] = []
    for config_name, cases in _configs(problems, data, "serve").items():
        if not isinstance(cases, dict) or not cases:
            problems.append(f"{config_name}: empty config")
            continue
        curve: list[tuple[int, int]] = []
        for case_name, record in cases.items():
            where = f"{config_name}/{case_name}"
            if not _check_throughput_case(problems, where, record, SERVE_CASE_KEYS):
                continue
            if not _numeric(record["batch_size"]) or record["batch_size"] < 1:
                problems.append(f"{where}: bad batch_size")
                continue
            curve.append((record["batch_size"], record["events_per_s"]))
        curve.sort()
        for (small, slow_rate), (big, fast_rate) in zip(curve, curve[1:]):
            if fast_rate < slow_rate:
                problems.append(
                    f"{config_name}: batch {big} is slower than batch {small} "
                    f"({fast_rate:,}/s < {slow_rate:,}/s) — batching must amortise"
                )
    return problems


VALIDATORS = {
    "kernel": validate_kernel,
    "fleet": validate_fleet,
    "shard": validate_shard,
    "ledger": validate_ledger,
    "serve": validate_serve,
}


def validate_file(path: Path) -> list[str]:
    """All problems with one artifact file (empty list = valid)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable: {exc}"]
    suite = data.get("suite") if isinstance(data, dict) else None
    validator = VALIDATORS.get(suite)
    if validator is None:
        return [f"unknown suite {suite!r} (expected one of {sorted(VALIDATORS)})"]
    return validator(data)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args:
        paths = [Path(arg) for arg in args]
    else:
        root = Path(__file__).resolve().parent.parent
        paths = sorted(root.glob("BENCH_*.json"))
        if not paths:
            print(f"no BENCH_*.json artifacts under {root}", file=sys.stderr)
            return 1
    failed = False
    for path in paths:
        problems = validate_file(path)
        for problem in problems:
            print(f"INVALID {path}: {problem}")
        print(f"{path}: {'INVALID' if problems else 'ok'}")
        failed = failed or bool(problems)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
