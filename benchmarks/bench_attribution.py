"""A7 — anomalous-device attribution (the §IV "ground truth problem").

The paper leaves identifying *which* device misreports as future work;
this bench exercises the least-squares attribution: accuracy across
attack strengths, and the estimator's cost.
"""

import pytest

from repro.anomaly import ScalingAttack
from repro.experiments.report import render_table
from repro.runtime import build
from repro.workloads.scenarios import paper_testbed_spec


@pytest.mark.parametrize("factor", [0.3, 0.5, 0.8])
def test_attribution_identifies_fraud_strengths(once, factor):
    def run():
        scenario = build(paper_testbed_spec(seed=8))
        scenario.device("device1").tamper_attack = ScalingAttack(factor)
        scenario.run_until(40.0)
        return scenario.aggregator("agg1").attribute_anomaly()

    result = once(run)
    print(
        f"\nscaling x{factor}: alphas "
        f"{ {k: round(v, 2) for k, v in result.alphas.items()} } "
        f"suspects {result.suspects}"
    )
    assert result.suspects == ["device1"]
    # Recovered scale approximates 1/factor.
    assert result.alphas["device1"] == pytest.approx(1.0 / factor, rel=0.25)
    assert result.alphas["device2"] == pytest.approx(1.0, abs=0.12)


def test_attribution_estimator_cost(benchmark):
    scenario = build(paper_testbed_spec(seed=8))
    scenario.device("device1").tamper_attack = ScalingAttack(0.5)
    scenario.run_until(40.0)
    agg1 = scenario.aggregator("agg1")

    result = benchmark(agg1.attribute_anomaly)
    assert result.suspects == ["device1"]


def test_attribution_summary_table(once):
    def sweep():
        rows = []
        for factor in (1.0, 0.5):
            scenario = build(paper_testbed_spec(seed=8))
            if factor != 1.0:
                scenario.device("device1").tamper_attack = ScalingAttack(factor)
            scenario.run_until(35.0)
            result = scenario.aggregator("agg1").attribute_anomaly()
            rows.append(
                [factor, result.alphas["device1"], result.alphas["device2"],
                 ",".join(result.suspects) or "-"]
            )
        return rows

    rows = once(sweep)
    print()
    print(render_table(["report_scale", "alpha_d1", "alpha_d2", "suspects"], rows))
