"""Shared helpers for the standalone benchmark scripts.

The ``bench_*.py`` scripts that run without pytest (``bench_kernel.py``,
``bench_fleet.py --smoke``) emit their measurements as ``BENCH_*.json``
files through this module, so CI can upload the artifacts and compare a
fresh run against the numbers committed in the repository.

File layout (one file per suite)::

    {
      "suite": "kernel",
      "configs": {
        "full":  {"<case>": {"events": N, "wall_s": W, "events_per_s": R,
                              "reference_events_per_s": R0, "speedup": S}},
        "smoke": {...}
      }
    }

``reference_events_per_s`` records the same case measured on the
pre-optimisation kernel (``attach_reference``); ``check_regression``
compares a fresh run against the committed rates of the *same* config
and flags any case that lost more than the threshold.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable


def measure(
    fn: Callable[..., Any], *args: Any, repeats: int = 1, **kwargs: Any
) -> tuple[Any, float]:
    """Run ``fn`` ``repeats`` times; returns (last result, best wall seconds).

    Simulated runs are deterministic, so every repeat produces the same
    result; taking the minimum wall time screens out scheduler noise —
    essential for the sub-second smoke configs CI gates on.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def case(events: int, wall_s: float) -> dict[str, Any]:
    """One case's record from an event count and its wall time."""
    return {
        "events": int(events),
        "wall_s": round(wall_s, 3),
        "events_per_s": int(events / wall_s) if wall_s > 0 else 0,
    }


def attach_reference(
    cases: dict[str, dict[str, Any]], reference_path: str | Path, config: str
) -> None:
    """Fold a reference run's rates (and speedups) into ``cases`` in place.

    ``reference_path`` is a file previously produced by ``write_results``
    from the same script — typically executed against the
    pre-optimisation tree — whose ``config`` section holds the baseline.
    """
    data = json.loads(Path(reference_path).read_text())
    recorded = data.get("configs", {}).get(config, {})
    for name, current in cases.items():
        reference = recorded.get(name)
        if not reference:
            continue
        current["reference_events_per_s"] = reference["events_per_s"]
        if reference["events_per_s"] > 0:
            current["speedup"] = round(
                current["events_per_s"] / reference["events_per_s"], 2
            )


def write_results(
    path: str | Path, suite: str, config: str, cases: dict[str, dict[str, Any]]
) -> None:
    """Write (or update) ``path`` with ``cases`` under ``configs[config]``.

    Other configs already in the file are preserved, so the full and
    smoke variants of a suite share one committed artifact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data: dict[str, Any] = {"suite": suite, "configs": {}}
    if path.exists():
        data = json.loads(path.read_text())
        data.setdefault("configs", {})
    data["suite"] = suite
    data["configs"][config] = cases
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def check_regression(
    cases: dict[str, dict[str, Any]],
    committed_path: str | Path,
    config: str,
    threshold: float = 0.30,
) -> list[str]:
    """Compare fresh ``cases`` against the committed file's same config.

    Returns one message per case whose throughput dropped more than
    ``threshold`` below the committed rate (empty list = pass).  Cases
    present on only one side are ignored — CI machines may not run every
    config.
    """
    data = json.loads(Path(committed_path).read_text())
    recorded = data.get("configs", {}).get(config)
    if not recorded:
        return [f"no committed {config!r} config in {committed_path}"]
    failures = []
    for name, current in cases.items():
        base = recorded.get(name)
        if not base:
            continue
        floor = base["events_per_s"] * (1.0 - threshold)
        if current["events_per_s"] < floor:
            failures.append(
                f"{name}: {current['events_per_s']:,} events/s is more than "
                f"{threshold:.0%} below the committed {base['events_per_s']:,}"
            )
    return failures
