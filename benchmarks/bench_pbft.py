"""A14 — the consensus ladder: trusted aggregator vs PoA vs PBFT.

Three trust models, three costs.  The trusted aggregator (the paper's
design) appends for free; PoA buys decentralization among *honest*
proposers for O(n^2) votes; PBFT additionally survives a *Byzantine*
proposer for two phases of O(n^2) traffic.  This bench measures all
three on the same mesh and proves the Byzantine case behaves.
"""

import pytest

from repro.chain import Blockchain, NetworkedPoaConsensus, NetworkedValidator
from repro.chain.pbft import PbftCluster, PbftReplica
from repro.experiments.report import render_table
from repro.ids import AggregatorId
from repro.net import BackhaulLink, BackhaulMesh
from repro.sim import Simulator

RECORDS = [{"device": "d", "device_uid": "u", "sequence": 0,
            "measured_at": 0.0, "energy_mwh": 0.5}]
FORGED = [{"device": "d", "device_uid": "u", "sequence": 0,
           "measured_at": 0.0, "energy_mwh": 0.0}]


def full_mesh(sim, nodes):
    mesh = BackhaulMesh(sim)
    return mesh


def build_pbft(n=4, seed=0):
    sim = Simulator(seed=seed)
    mesh = BackhaulMesh(sim)
    replicas = [
        PbftReplica(sim, AggregatorId(f"r{i}"), mesh) for i in range(n)
    ]
    for i, a in enumerate(replicas):
        for b in replicas[i + 1:]:
            mesh.connect(BackhaulLink(a.node_id, b.node_id, latency_s=0.001))
    return sim, mesh, PbftCluster(replicas)


def build_poa(n=4, seed=0):
    sim = Simulator(seed=seed)
    mesh = BackhaulMesh(sim)
    chain = Blockchain(authorized=set())
    validators = [
        NetworkedValidator(sim, AggregatorId(f"v{i}"), mesh) for i in range(n)
    ]
    for i, a in enumerate(validators):
        for b in validators[i + 1:]:
            mesh.connect(BackhaulLink(a.node_id, b.node_id, latency_s=0.001))
    return sim, mesh, NetworkedPoaConsensus(sim, validators, chain), chain


@pytest.mark.parametrize("n", [4, 7])
def test_pbft_commit_cost_and_latency(once, n):
    def run():
        sim, mesh, cluster = build_pbft(n)
        start = sim.now
        cluster.propose(RECORDS)
        sim.run()
        return mesh.messages_sent, sim.now - start, cluster

    messages, latency, cluster = once(run)
    print(f"\nPBFT n={n}: {messages} messages, commit in {latency * 1000:.1f} ms")
    assert cluster.converged_tip() is not None
    assert all(r.executed_count == 1 for r in cluster.replicas)
    # Two all-to-all phases dominate: O(n^2) with constant ~2.
    assert messages >= 2 * (n - 1) * (n - 1)


def test_consensus_ladder_table(once):
    def ladder():
        rows = [["trusted aggregator (paper)", 0, 0.0, "crash-stop only"]]
        sim, mesh, poa, chain = build_poa(4)
        t0 = sim.now
        done = []
        poa.propose(RECORDS, lambda ok, lat: done.append(lat))
        sim.run()
        rows.append(["PoA 1-phase", mesh.messages_sent, done[0] * 1000, "honest proposer"])
        sim, mesh, cluster = build_pbft(4)
        t0 = sim.now
        cluster.propose(RECORDS)
        sim.run()
        rows.append(
            ["PBFT 2-phase", mesh.messages_sent, (sim.now - t0) * 1000,
             "Byzantine proposer (f=1)"]
        )
        return rows

    rows = once(ladder)
    print()
    print(render_table(
        ["protocol", "messages_per_block", "latency_ms", "tolerates"], rows
    ))
    # The ladder is strictly ordered in cost.
    assert rows[0][1] < rows[1][1] < rows[2][1]


def test_pbft_survives_equivocation_where_poa_would_not(once):
    def run():
        sim, _, cluster = build_pbft(4)
        cluster.propose_equivocating(RECORDS, FORGED)
        sim.run()
        return cluster

    cluster = once(run)
    # Nobody executed either half; no divergence.
    assert all(r.executed_count == 0 for r in cluster.replicas)
    assert cluster.converged_tip() is not None
    print("\nequivocating primary: 0/4 replicas executed, no divergence")
