"""E4 — inter-aggregator backhaul delay.

Paper: "the data communication between aggregators does not incur much
delay (1 millisecond) as the backhaul network is assumed to have high
bandwidth."
"""

import pytest

from repro.ids import AggregatorId
from repro.net import BackhaulLink, BackhaulMesh
from repro.sim import Simulator


def build_mesh(n=8):
    sim = Simulator()
    mesh = BackhaulMesh(sim)
    ids = [AggregatorId(f"agg{i}") for i in range(n)]
    for agg in ids:
        mesh.add_aggregator(agg, lambda s, p: None)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            mesh.connect(BackhaulLink(a, b, latency_s=0.001))
    return sim, mesh, ids


def test_backhaul_delay_is_one_millisecond(benchmark):
    sim, mesh, ids = build_mesh(2)

    def send():
        return mesh.send(ids[0], ids[1], {"payload": 1})

    latency = benchmark(send)
    print(f"\nbackhaul one-hop latency: {latency * 1000:.3f} ms (paper: ~1 ms)")
    assert latency == pytest.approx(0.001)


def test_backhaul_routing_throughput(benchmark):
    sim, mesh, ids = build_mesh(8)

    def burst():
        for a in ids:
            for b in ids:
                if a != b:
                    mesh.send(a, b, None)
        sim.run()

    benchmark(burst)
    print(f"\nmessages routed: {mesh.messages_sent}")
