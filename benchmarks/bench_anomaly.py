"""A6 — tamper-attack detection across the detector suite.

Runs each attack model against the three detectors (unit level) and one
scaling attack through the full simulation (integration level), where
the paper's complementary measurement must flag the fraudulent network.
"""

from repro.anomaly import ScalingAttack
from repro.experiments.ablations import run_anomaly_ablation
from repro.experiments.report import render_table
from repro.runtime import build
from repro.workloads.scenarios import paper_testbed_spec


def test_detector_matrix(once):
    rows = once(run_anomaly_ablation)
    print()
    print(
        render_table(
            ["attack", "residual", "variation", "entropy", "detected"],
            [[r.attack, r.residual_detected, r.variation_detected,
              r.entropy_detected, r.detected_by_any] for r in rows],
        )
    )
    by_attack = {r.attack: r for r in rows}
    assert not by_attack["none"].detected_by_any
    for attack in ("scaling", "offset", "replay", "drop"):
        assert by_attack[attack].detected_by_any, attack


def test_full_system_fraud_detection(once):
    def run():
        scenario = build(paper_testbed_spec(seed=23))
        scenario.device("device1").tamper_attack = ScalingAttack(0.5)
        scenario.run_until(25.0)
        return scenario

    scenario = once(run)
    fraud_stats = scenario.aggregator("agg1").verifier.stats
    honest_stats = scenario.aggregator("agg2").verifier.stats
    print(
        f"\nfraudulent network: {fraud_stats.network_anomalies}/"
        f"{fraud_stats.network_checks} checks flagged; honest network: "
        f"{honest_stats.network_anomalies}/{honest_stats.network_checks}"
    )
    assert fraud_stats.network_anomalies > 0.5 * fraud_stats.network_checks
    assert honest_stats.network_anomalies == 0
