"""A9 — aggregator-based vs fully decentralized architecture.

The paper's main design keeps a trusted aggregator ("no consensus
required"); §II-A sketches the aggregator-free alternative.  This bench
runs both on equivalent workloads and compares ledger completeness,
mesh traffic and commit latency — the quantitative case for the paper's
design choice.
"""

import numpy as np
import pytest

from repro.chain import Blockchain
from repro.decentral import DecentralizedDevice, DecentralizedNetwork
from repro.ids import DeviceId
from repro.net.backhaul import BackhaulMesh
from repro.runtime import build
from repro.sim import Simulator
from repro.workloads.profiles import SinusoidProfile
from repro.workloads.scenarios import paper_testbed_spec


def run_decentralized(n_devices=4, duration=10.0, seed=0):
    sim = Simulator(seed=seed)
    mesh = BackhaulMesh(sim)
    chain = Blockchain(authorized=set())
    devices = [
        DecentralizedDevice(
            sim, DeviceId(f"node{i}"), mesh,
            SinusoidProfile(mean_ma=60.0 + 5 * i, amplitude_ma=25.0, period_s=9.0 + i),
        )
        for i in range(n_devices)
    ]
    network = DecentralizedNetwork(sim, devices, chain)
    network.start()
    sim.run_until(duration)
    network.drain()
    sim.run_until(duration + 1.0)
    return sim, chain, mesh, network


def test_decentralized_committee_end_to_end(once):
    sim, chain, mesh, network = once(run_decentralized)
    chain.validate()
    records = sum(b.header.record_count for b in chain)
    print(
        f"\ndecentralized: {network.commits} blocks, {records} records, "
        f"{mesh.messages_sent} mesh messages, mean commit latency "
        f"{np.mean(network.commit_latencies) * 1000:.1f} ms"
    )
    assert network.failures == 0
    assert records >= 4 * 10 * 10 * 0.95  # 4 devices x 10 Hz x 10 s


def test_architecture_comparison_table(once):
    def compare():
        # Decentralized committee.
        _, d_chain, d_mesh, d_net = run_decentralized()
        d_records = sum(b.header.record_count for b in d_chain)
        # Aggregator-based testbed (4 devices across 2 networks).
        scenario = build(paper_testbed_spec(seed=0))
        scenario.run_until(10.0)
        a_records = sum(b.header.record_count for b in scenario.chain)
        a_mesh = scenario.mesh.messages_sent
        return [
            ["aggregator (paper)", a_records, a_mesh, 0.0],
            ["decentralized (SIV)", d_records,
             d_mesh.messages_sent, float(np.mean(d_net.commit_latencies)) * 1000],
        ]

    rows = once(compare)
    from repro.experiments.report import render_table

    print()
    print(render_table(
        ["architecture", "records_committed", "mesh_messages", "commit_latency_ms"],
        rows,
    ))
    aggregator_row, decentral_row = rows
    # The trusted-aggregator design uses far less mesh traffic per record.
    agg_ratio = aggregator_row[2] / max(1, aggregator_row[1])
    dec_ratio = decentral_row[2] / max(1, decentral_row[1])
    assert dec_ratio > 2 * agg_ratio
    # And commits with zero consensus latency.
    assert aggregator_row[3] == 0.0
    assert decentral_row[3] > 0.0


@pytest.mark.parametrize("committee", [3, 6, 9])
def test_decentral_latency_scaling(once, committee):
    def run():
        _, _, _, network = run_decentralized(n_devices=committee, duration=5.0)
        return float(np.mean(network.commit_latencies))

    latency = once(run)
    print(f"\n{committee}-device committee: mean commit latency "
          f"{latency * 1000:.1f} ms")
    assert latency > 0
