"""A1 — attribution of the Fig. 5 gap to its modelled error sources.

Sweeps the INA219 offset bound and the wire model independently.  The
ideal corner (no offset, lossless wiring) must show a near-zero gap,
demonstrating the reproduction's gap is explained by exactly the causes
the paper names.
"""

from repro.experiments.ablations import run_sensor_ablation
from repro.experiments.report import render_table


def test_error_source_attribution(once):
    rows = once(
        run_sensor_ablation,
        duration_s=30.0,
        warmup_s=12.0,
        offsets_ma=(0.0, 0.5, 1.0),
        wires=((0.0, 0.0), (0.1, 2.5)),
    )
    print()
    print(
        render_table(
            ["offset_mA", "wire_ohm", "leak_mA", "mean_gap_%", "max_gap_%"],
            [
                [r.offset_max_ma, r.wire_resistance_ohms, r.wire_leakage_ma,
                 r.mean_gap_pct, r.max_gap_pct]
                for r in rows
            ],
        )
    )
    by_key = {(r.offset_max_ma, r.wire_resistance_ohms): r for r in rows}
    ideal = by_key[(0.0, 0.0)]
    nominal = by_key[(0.5, 0.1)]
    assert abs(ideal.mean_gap_pct) < 0.5
    assert nominal.mean_gap_pct > 1.0
    # The wire model, not the sensor offset, carries most of the gap.
    offset_only = by_key[(1.0, 0.0)]
    wire_only = by_key[(0.0, 0.1)]
    assert wire_only.mean_gap_pct > offset_only.mean_gap_pct
