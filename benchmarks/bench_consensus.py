"""A5 — cost of the future-work consensus vs the trusted-aggregator chain.

Paper §II-A: with trusted aggregators "there is no consensus required";
§IV plans device-level consensus.  Quantifies what that would cost:
messages per committed block scale O(n^2) with the validator count,
while the no-consensus append stays O(1).
"""

import pytest

from repro.chain import Blockchain, PoaConsensus, Validator
from repro.experiments.report import render_table

RECORDS = [
    {"device": f"d{i}", "device_uid": f"u{i}", "sequence": i,
     "measured_at": 0.0, "energy_mwh": 0.01}
    for i in range(8)
]


def test_no_consensus_append_message_cost_is_zero(benchmark):
    chain = Blockchain()
    counter = iter(range(10**9))

    def append():
        chain.append("agg1", float(next(counter)), RECORDS)

    benchmark(append)
    print("\ntrusted-aggregator append: 0 consensus messages per block")


@pytest.mark.parametrize("validators", [2, 4, 8, 16])
def test_consensus_message_scaling(benchmark, validators):
    def run_round():
        chain = Blockchain()
        consensus = PoaConsensus([Validator(f"v{i}") for i in range(validators)], chain)
        committed, _ = consensus.propose(0.0, RECORDS)
        assert committed
        return consensus.messages_exchanged

    messages = benchmark(run_round)
    expected = (validators - 1) + validators * (validators - 1)
    print(f"\n{validators} validators: {messages} messages/block "
          f"(expected {expected})")
    assert messages == expected


@pytest.mark.parametrize("validators", [3, 5, 9])
def test_networked_consensus_commit_latency(once, validators):
    """Latency, not just messages: a round over 1 ms mesh links."""
    from repro.chain import NetworkedPoaConsensus, NetworkedValidator
    from repro.ids import AggregatorId
    from repro.net import BackhaulLink, BackhaulMesh
    from repro.sim import Simulator

    def run_round():
        sim = Simulator(seed=0)
        mesh = BackhaulMesh(sim)
        chain = Blockchain(authorized=set())
        committee = [
            NetworkedValidator(sim, AggregatorId(f"v{i}"), mesh)
            for i in range(validators)
        ]
        for i, a in enumerate(committee):
            for b in committee[i + 1:]:
                mesh.connect(BackhaulLink(a.node_id, b.node_id, latency_s=0.001))
        consensus = NetworkedPoaConsensus(sim, committee, chain)
        outcomes = []
        consensus.propose(RECORDS, lambda ok, lat: outcomes.append((ok, lat)))
        sim.run()
        return outcomes[0]

    committed, latency = once(run_round)
    print(f"\n{validators} validators: commit latency {latency * 1000:.2f} ms "
          "(trusted aggregator: 0 ms)")
    assert committed
    # One proposal hop + processing + one vote hop, plus slack.
    assert 0.004 <= latency <= 0.02


def test_consensus_cost_table(once):
    def sweep():
        rows = []
        for n in (2, 4, 8, 16):
            chain = Blockchain()
            consensus = PoaConsensus([Validator(f"v{i}") for i in range(n)], chain)
            consensus.propose(0.0, RECORDS)
            rows.append([n, consensus.messages_exchanged])
        return rows

    rows = once(sweep)
    print()
    print(render_table(["validators", "messages_per_block"], rows))
    # O(n^2) growth: doubling validators roughly quadruples messages.
    assert rows[-1][1] > 3.0 * rows[-2][1]
