"""Chaos benches — delivery ratio and billing error under faults.

Three claims under test, all via :mod:`repro.experiments.faults`:

* a 30 s radio blackout reproduces the Fig. 6 shape as a *fault*: zero
  reports lost below store capacity, the window backfilled with
  ``buffered=True`` records;
* over a broker-loss sweep, the Ack-timeout retry path holds delivery
  at >= 0.99 while the no-retry stack degrades measurably;
* every chaos run is byte-deterministic for a given seed, faults
  included.
"""

from repro.experiments.faults import (
    run_blackout_chaos,
    run_crash_chaos,
    run_fault_sweep,
)
from repro.experiments.report import render_table

SWEEP_INTENSITIES = [0.0, 0.05, 0.1, 0.2]


def test_blackout_buffer_then_backfill(once):
    result = once(run_blackout_chaos, seed=0, blackout_s=30.0)
    print()
    print(
        render_table(
            ["device", "measured", "delivered", "buffered", "dropped"],
            [
                [name, d.measured, d.delivered, d.buffered_delivered, d.store_dropped]
                for name, d in sorted(result.devices.items())
            ],
        )
    )
    # Zero loss below LocalStore capacity: every measured report reaches
    # the ledger, and the blackout window arrives via the buffered path.
    for name, outcome in result.devices.items():
        assert outcome.store_dropped == 0, name
        assert outcome.delivered == outcome.measured, name
        # ~300 samples fall inside the 30 s window at 0.1 s cadence.
        assert outcome.buffered_delivered >= 250, name
    assert result.delivery_ratio == 1.0
    assert result.billing_error < 1e-9
    assert result.fault_counters["radio.blackouts"] == 1


def test_crash_restart_recovers_ledger(once):
    result = once(run_crash_chaos, seed=0, outage_s=15.0)
    assert result.delivery_ratio == 1.0
    assert result.billing_error < 1e-9
    # The crashed network's devices actually exercised the retry path.
    timeouts = sum(
        d.retry_stats["report_timeouts"] for d in result.devices.values()
    )
    assert timeouts > 0


def test_retry_holds_delivery_under_broker_loss(once):
    def both() -> tuple[list, list]:
        with_retry = run_fault_sweep(SWEEP_INTENSITIES, seed=0, retry=True)
        without = run_fault_sweep(SWEEP_INTENSITIES, seed=0, retry=False)
        return with_retry, without

    with_retry, without = once(both)
    print()
    print(
        render_table(
            ["intensity", "delivery(retry)", "delivery(no retry)",
             "billing(retry)", "billing(no retry)"],
            [
                [p.intensity, round(p.delivery_ratio, 4), round(q.delivery_ratio, 4),
                 round(p.billing_error, 5), round(q.billing_error, 5)]
                for p, q in zip(with_retry, without)
            ],
        )
    )
    for p in with_retry:
        assert p.delivery_ratio >= 0.99, p
    # Without retry, loss bites: measurably lower at every faulty point.
    for p, q in zip(with_retry, without):
        if p.intensity > 0:
            assert q.delivery_ratio < p.delivery_ratio - 0.01, (p, q)
            assert q.billing_error > p.billing_error, (p, q)


def test_chaos_runs_are_deterministic(once):
    def twice() -> tuple:
        return run_blackout_chaos(seed=42), run_blackout_chaos(seed=42)

    first, second = once(twice)
    assert first.fault_counters == second.fault_counters
    assert first.fault_plan == second.fault_plan
    for name in first.devices:
        a, b = first.devices[name], second.devices[name]
        assert (a.measured, a.delivered, a.duplicates) == (
            b.measured,
            b.delivered,
            b.duplicates,
        )
        assert a.ledger_mwh == b.ledger_mwh
        assert a.retry_stats == b.retry_stats
