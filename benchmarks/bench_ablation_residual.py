"""A10 — residual-check window size (design decision 1 of the verifier).

The aggregator judges the complementary measurement over a rolling mean
of K windows (single windows straddle sharp load edges).  This ablation
sweeps K on (a) an honest run with *square* duty-cycle loads — worst
case for straddling — and (b) a fraudulent run, verifying that larger K
removes false positives without losing the fraud.
"""

from repro.anomaly import ScalingAttack
from repro.experiments.report import render_table
from repro.experiments.sweeps import grid, sweep
from repro.runtime import build
from repro.workloads.scenarios import scaled_spec


def run_point(windows: int, fraud: bool) -> dict:
    # Square duty-cycle profiles are the scaled spec's default —
    # exactly the straddle-prone workload this ablation needs.
    scenario = build(scaled_spec(n_networks=1, devices_per_network=4, seed=17))
    unit = next(iter(scenario.aggregators.values()))
    # Rebuild the residual deque with the swept size.
    from collections import deque

    unit._residual_window = deque(maxlen=windows)
    if fraud:
        scenario.devices["dev-0-0"].tamper_attack = ScalingAttack(0.4)
    scenario.run_until(25.0)
    stats = unit.verifier.stats
    rate = stats.network_anomalies / max(1, stats.network_checks)
    return {"anomaly_rate": round(rate, 3), "checks": stats.network_checks}


def test_residual_window_tradeoff(once):
    points = grid(windows=[1, 5, 10], fraud=[False, True])
    headers, rows = once(sweep, run_point, points)
    print()
    print(render_table(headers, rows))
    by_point = {(r[0], r[1]): r[2] for r in rows}
    # Honest false-positive rate drops with averaging...
    assert by_point[(5, False)] <= by_point[(1, False)]
    assert by_point[(5, False)] < 0.05
    # ...while a real 2.5x fraud stays detected at every K (it flags
    # whenever the fraud device's high duty phase makes its hidden share
    # exceed tolerance — roughly a third of all checks here).
    for k in (1, 5, 10):
        assert by_point[(k, True)] > 0.25
        assert by_point[(k, True)] > 4 * by_point[(5, False)]
