"""Serve-mode sustained ingestion: HTTP clients against the live service.

Measures the end-to-end serving stack — HTTP parsing, codec validation,
endpoint delivery, aggregator screening, kernel advance, downlink
correlation, JSON response — under concurrent keep-alive clients posting
report batches.  Three batch sizes (1, 8, 64) expose the d3a batch
idiom's amortisation: one kernel advance serves a whole batch, so the
per-report cost of a 64-report batch is a small fraction of 1-report
POSTs.

``python -m benchmarks.bench_serve`` runs the full shape and
``--smoke`` a sub-second one; ``--out``/``--check`` write/gate the
committed ``BENCH_serve.json``.  The "events" of a case are *reports
acknowledged*, so ``events_per_s`` is sustained verified-ingestion
throughput.
"""

import argparse
import dataclasses
import http.client
import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import case, check_regression, write_results
from repro.ids import DeviceId
from repro.protocol.codec import encode_message
from repro.protocol.messages import RegistrationRequest
from repro.runtime.spec import ServeSpec
from repro.serve import AggregatorService, ServeRunner
from repro.workloads.scenarios import paper_testbed_spec


def _report_dict(device: str, sequence: int, measured_at: float) -> dict:
    """A constant-current report that passes every verification screen."""
    return {
        "type": "consumption_report",
        "device": device,
        "master": "agg1/1",
        "temporary": None,
        "sequence": sequence,
        "measured_at": measured_at,
        "interval_s": 0.1,
        "current_ma": 120.0,
        "voltage_v": 5.0,
        "energy_mwh": 120.0 * 5.0 * 0.1 / 3600.0,
        "buffered": False,
    }


def _client_worker(
    host: str,
    port: int,
    device: str,
    batch_size: int,
    batches: int,
    acked: list,
    errors: list,
) -> None:
    """One keep-alive client: register, then post ``batches`` batches."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        body = encode_message(RegistrationRequest(DeviceId(device)))
        conn.request("POST", "/register", body)
        reply = json.loads(conn.getresponse().read())
        if reply.get("status") != "registered":
            errors.append(f"{device}: registration {reply}")
            return
        sequence = 0
        count = 0
        for b in range(batches):
            reports = []
            for _ in range(batch_size):
                sequence += 1
                reports.append(_report_dict(device, sequence, 0.1 * sequence))
            conn.request(
                "POST", "/reports", json.dumps({"reports": reports}).encode()
            )
            verdicts = json.loads(conn.getresponse().read())
            count += verdicts["accepted"]
            if verdicts["rejected"]:
                bad = [
                    r for r in verdicts["results"] if r.get("verdict") != "ack"
                ]
                errors.append(f"{device}: batch {b} rejected {bad[:2]}")
        acked.append(count)
    except Exception as exc:  # noqa: BLE001 - report, don't hang the bench
        errors.append(f"{device}: {type(exc).__name__}: {exc}")
    finally:
        conn.close()


def _run_ingestion(
    batch_size: int, clients: int, batches: int, step_s: float = 0.05
) -> tuple[int, float]:
    """One sustained-ingestion run; returns (reports acked, wall seconds)."""
    spec = paper_testbed_spec(seed=7, enter_devices=False)
    # A small step keeps per-request kernel work low; a deep slot ring
    # absorbs a whole 64-report batch between block flushes.
    spec = dataclasses.replace(spec, serve=ServeSpec(enabled=True, step_s=step_s))
    service = AggregatorService(spec)
    acked: list = []
    errors: list = []
    with ServeRunner(service) as runner:
        host, port = runner.address
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(host, port, f"bench-{i}", batch_size, batches, acked, errors),
            )
            for i in range(clients)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
    if errors:
        raise AssertionError(f"ingestion errors: {errors[:3]}")
    total = sum(acked)
    expected = clients * batches * batch_size
    if total != expected:
        raise AssertionError(f"acked {total} of {expected} reports")
    return total, wall


def main(argv=None):
    """Benchmark entry point; writes/gates BENCH_serve.json."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="sub-second shape (2 clients, few batches) instead of the full one",
    )
    parser.add_argument(
        "--out", metavar="JSON", help="write/update this BENCH_serve.json file"
    )
    parser.add_argument(
        "--check",
        metavar="JSON",
        help="fail when any case drops >30%% below this file's committed rates",
    )
    args = parser.parse_args(argv)
    config = "smoke" if args.smoke else "full"
    clients = 2 if args.smoke else 4
    cases = {}
    for batch_size in (1, 8, 64):
        # Same report budget per case so the curve isolates batching.
        budget = (64 if args.smoke else 512) * clients
        batches = max(1, budget // (clients * batch_size))
        repeats = 2 if args.smoke else 3
        best_total, best_wall = _run_ingestion(batch_size, clients, batches)
        for _ in range(repeats - 1):
            total, wall = _run_ingestion(batch_size, clients, batches)
            if wall < best_wall:
                best_total, best_wall = total, wall
        record = case(best_total, best_wall)
        record["batch_size"] = batch_size
        record["clients"] = clients
        cases[f"batch{batch_size}"] = record
        print(
            f"batch={batch_size:>2} clients={clients} "
            f"reports={best_total:>5} wall={best_wall:.3f}s "
            f"rate={record['events_per_s']:,}/s"
        )
    if args.out:
        write_results(args.out, "serve", config, cases)
        print(f"wrote {args.out} [{config}]")
    if args.check:
        failures = check_regression(cases, args.check, config)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression check OK against {args.check} [{config}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
