"""A11 — metering reliability vs channel quality and QoS.

The paper transfers consumption data over MQTT with per-report Acks and
local buffering of failures.  This sweep (distance x QoS) shows the
division of labour: *completeness is protected by the store-and-forward
data layer regardless of MQTT QoS* (failed publishes re-buffer), while
the QoS level decides the airtime bill — at the cell edge, QoS 0
re-sends the backlog blind and wastes an order of magnitude more
transmissions than QoS 1's bounded retries.
"""

from repro.device.stack import DeviceConfig
from repro.experiments.report import render_table
from repro.experiments.sweeps import grid, sweep
from repro.net.mqtt import QoS
from repro.runtime import build
from repro.workloads.scenarios import paper_testbed_spec


def run_point(distance_m: float, qos: str) -> dict:
    config = DeviceConfig(report_qos=QoS[qos])
    scenario = build(
        paper_testbed_spec(seed=9, enter_devices=False), device_config=config
    )
    scenario.enter_at("device1", "agg1", 0.0, distance_m=distance_m)
    scenario.run_until(25.0)
    device = scenario.device("device1")
    produced = device.meter.sensor.readings_taken
    committed = len(scenario.chain.records_for_device(device.device_id.uid))
    pending = device.store.pending
    completeness = committed / max(1, produced - pending)
    return {
        "produced": produced,
        "committed": committed,
        "completeness": round(completeness, 3),
        "retransmissions": device._client.stats["retransmissions"],
        "dropped": device._client.stats["dropped"],
    }


def test_qos_and_distance_sweep(once):
    # 5 m: strong signal; 110 m: RSSI ~ -86 dBm (PER a few %);
    # 140 m: ~ -89 dBm, past the PER midpoint — the cell edge.
    points = grid(
        distance_m=[5.0, 110.0, 140.0],
        qos=["AT_MOST_ONCE", "AT_LEAST_ONCE"],
    )
    headers, rows = once(
        sweep, run_point, points,
        columns=["completeness", "retransmissions", "dropped"],
    )
    print()
    print(render_table(headers, rows))
    by_point = {(r[0], r[1]): dict(zip(headers[2:], r[2:])) for r in rows}
    # Billing data is never lost at any point of the sweep: failed
    # publishes re-enter the local store (the paper's data layer).
    for point in by_point.values():
        assert point["completeness"] > 0.95
    # At the cell edge the airtime cost differs sharply: QoS 0 burns
    # far more failed transmissions than QoS 1's bounded retry loop.
    edge_q0 = by_point[(140.0, "AT_MOST_ONCE")]
    edge_q1 = by_point[(140.0, "AT_LEAST_ONCE")]
    assert edge_q0["dropped"] > 3 * max(1, edge_q1["dropped"])
    assert edge_q1["retransmissions"] > 0
