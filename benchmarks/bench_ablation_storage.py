"""A3 — store-and-forward integrity across disconnection lengths.

Paper: "if the device is disconnected before the reporting time, the
data is stored locally until the network is restored".  Sweeps the
transit gap and verifies buffered consumption always reaches the ledger.
"""

from repro.experiments.ablations import run_storage_ablation
from repro.experiments.report import render_table


def test_backfill_across_idle_gaps(once):
    rows = once(run_storage_ablation, idle_gaps_s=(2.0, 10.0, 30.0))
    print()
    print(
        render_table(
            ["idle_s", "buffered", "ledger_records", "handshake_s", "backfill_ok"],
            [[r.idle_s, r.buffered_records, r.ledger_records, r.handshake_s,
              r.backfill_worked] for r in rows],
        )
    )
    assert all(r.backfill_worked for r in rows)
    # Buffered volume is set by the handshake time (consumption exists
    # only while attached), so it is roughly constant across idle gaps.
    counts = [r.buffered_records for r in rows]
    assert max(counts) - min(counts) < 40
