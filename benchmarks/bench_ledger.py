"""E6 — tamper-proof storage.

Paper: "by encapsulating the consumption data into a blockchain, data
storage is made tamper-proof", and "creating the hash is not an
expensive operation".  Measures block-append cost and verifies the
detection probability of random mutations is 1.0.
"""

import random

from repro.chain import Block, Blockchain, InMemoryBlockStore, audit_chain


def build_chain(blocks=50, records_per_block=20):
    store = InMemoryBlockStore()
    chain = Blockchain(store)
    for b in range(blocks):
        chain.append(
            "agg1",
            float(b),
            [
                {"device": f"d{i}", "device_uid": f"u{i}", "sequence": b * 100 + i,
                 "measured_at": float(b), "energy_mwh": 0.01 * i}
                for i in range(records_per_block)
            ],
        )
    return store, chain


def test_block_append_is_cheap(benchmark):
    chain = Blockchain()
    records = [
        {"device": f"d{i}", "energy_mwh": 0.01, "sequence": i} for i in range(10)
    ]
    counter = iter(range(10**9))

    def append():
        chain.append("agg1", float(next(counter)), records)

    benchmark(append)
    print(f"\nchain height after benchmark: {chain.height}")


def test_full_chain_audit_cost(benchmark):
    _, chain = build_chain(blocks=100)
    report = benchmark(audit_chain, chain)
    assert report.clean


def test_mutation_detection_probability_is_one(once):
    def trial_sweep():
        rng = random.Random(7)
        detected = 0
        trials = 40
        for _ in range(trials):
            store, chain = build_chain(blocks=12, records_per_block=8)
            height = rng.randrange(chain.height)
            victim = store.get(height)
            forged = [dict(r) for r in victim.records]
            target = rng.randrange(len(forged))
            forged[target]["energy_mwh"] = rng.random()
            store.tamper(
                height, Block(victim.header, tuple(forged), victim.block_hash)
            )
            if not audit_chain(chain).clean:
                detected += 1
        return detected, trials

    detected, trials = once(trial_sweep)
    print(f"\nmutations detected: {detected}/{trials}")
    assert detected == trials
