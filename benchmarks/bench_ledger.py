"""E6 — tamper-proof storage, ledger sync and checkpoint pruning.

Paper: "by encapsulating the consumption data into a blockchain, data
storage is made tamper-proof", and "creating the hash is not an
expensive operation".  Measures block-append cost and verifies the
detection probability of random mutations is 1.0.

Run standalone to (re)generate the committed ``BENCH_ledger.json``::

    PYTHONPATH=src python benchmarks/bench_ledger.py --out BENCH_ledger.json
    PYTHONPATH=src python benchmarks/bench_ledger.py --smoke --out /tmp/b.json
    PYTHONPATH=src python benchmarks/bench_ledger.py --validate BENCH_ledger.json

The artifact holds the Danzi delay-vs-traffic curve (header batch size
sweep, see :mod:`repro.experiments.ledger_sync`) and the pruning bound:
a million-report ledger that retains <= 10% of its blocks in memory
while receipts — including against pruned blocks — still verify.
"""

import argparse
import json
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.chain import Block, Blockchain, InMemoryBlockStore, audit_chain


def build_chain(blocks=50, records_per_block=20):
    store = InMemoryBlockStore()
    chain = Blockchain(store)
    for b in range(blocks):
        chain.append(
            "agg1",
            float(b),
            [
                {"device": f"d{i}", "device_uid": f"u{i}", "sequence": b * 100 + i,
                 "measured_at": float(b), "energy_mwh": 0.01 * i}
                for i in range(records_per_block)
            ],
        )
    return store, chain


def test_block_append_is_cheap(benchmark):
    chain = Blockchain()
    records = [
        {"device": f"d{i}", "energy_mwh": 0.01, "sequence": i} for i in range(10)
    ]
    counter = iter(range(10**9))

    def append():
        chain.append("agg1", float(next(counter)), records)

    benchmark(append)
    print(f"\nchain height after benchmark: {chain.height}")


def test_full_chain_audit_cost(benchmark):
    _, chain = build_chain(blocks=100)
    report = benchmark(audit_chain, chain)
    assert report.clean


def test_mutation_detection_probability_is_one(once):
    def trial_sweep():
        rng = random.Random(7)
        detected = 0
        trials = 40
        for _ in range(trials):
            store, chain = build_chain(blocks=12, records_per_block=8)
            height = rng.randrange(chain.height)
            victim = store.get(height)
            forged = [dict(r) for r in victim.records]
            target = rng.randrange(len(forged))
            forged[target]["energy_mwh"] = rng.random()
            store.tamper(
                height, Block(victim.header, tuple(forged), victim.block_hash)
            )
            if not audit_chain(chain).clean:
                detected += 1
        return detected, trials

    detected, trials = once(trial_sweep)
    print(f"\nmutations detected: {detected}/{trials}")
    assert detected == trials


# -- standalone CLI: BENCH_ledger.json ---------------------------------------


def run_pruning_case(
    blocks: int,
    records_per_block: int,
    checkpoint_interval: int,
    pruning_depth: int,
    receipt_every: int,
) -> dict:
    """Grow a ledger under pruning; prove receipts survive it.

    Receipts are issued while their blocks are still retained (a real
    device asks near the tip), then *all* of them — including those
    whose blocks have since been pruned — are verified two ways at the
    end: against the pruned chain's header view, and fully offline
    against a lightweight client's header chain synced from genesis.
    """
    from repro.chain import HeaderChain
    from repro.chain.receipts import issue_receipt

    chain = Blockchain(
        InMemoryBlockStore(),
        checkpoint_interval=checkpoint_interval,
        pruning_depth=pruning_depth,
    )
    receipts = []
    for b in range(blocks):
        records = [
            {"device": f"d{i % 50}", "device_uid": f"u{i % 50}",
             "sequence": b * records_per_block + i, "measured_at": float(b),
             "energy_mwh": 0.001 * (i % 97)}
            for i in range(records_per_block)
        ]
        chain.append("agg1", float(b), records)
        if b % receipt_every == 0:
            receipts.append(issue_receipt(chain, b, b % records_per_block))

    light = HeaderChain()
    while light.height < chain.height:
        applied = light.extend(chain.headers(light.height, 256))
        if applied == 0:
            raise RuntimeError("header sync stalled")

    verified = sum(
        1
        for r in receipts
        if r.verify(chain) and light.verify_receipt(r)
    )
    pruned_receipts = sum(1 for r in receipts if r.block_height < chain.pruned_below)
    return {
        "reports": blocks * records_per_block,
        "blocks_total": chain.height,
        "blocks_retained": chain.retained_blocks,
        "retained_fraction": round(chain.retained_blocks / chain.height, 4),
        "checkpoints": len(chain.checkpoints),
        "receipts_sampled": len(receipts),
        "receipts_verified": verified,
        "receipts_against_pruned_blocks": pruned_receipts,
    }


def main(argv: list[str] | None = None) -> int:
    from repro.experiments.ledger_sync import run_ledger_sync, validate_bench

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small world and short chain (the CI configuration)",
    )
    parser.add_argument(
        "--out", metavar="JSON", help="write/update this BENCH_ledger.json file"
    )
    parser.add_argument(
        "--validate", metavar="JSON",
        help="schema-check an existing BENCH_ledger.json and exit",
    )
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate_bench(json.loads(Path(args.validate).read_text()))
        for problem in problems:
            print(f"INVALID {problem}", file=sys.stderr)
        print(f"{args.validate}: {'INVALID' if problems else 'ok'}")
        return 1 if problems else 0

    config = "smoke" if args.smoke else "full"
    if args.smoke:
        # Horizon fits two periodic rounds of the largest batch (the
        # bootstrap round usually precedes block production).
        batch_sizes, horizon, world = (1, 4, 16), 40.0, (1, 2)
        pruning_shape = dict(
            blocks=200, records_per_block=100, checkpoint_interval=20,
            pruning_depth=10, receipt_every=10,
        )
    else:
        batch_sizes, horizon, world = (1, 4, 16, 64), 150.0, (2, 3)
        pruning_shape = dict(
            blocks=1000, records_per_block=1000, checkpoint_interval=50,
            pruning_depth=50, receipt_every=25,
        )

    points = run_ledger_sync(
        batch_sizes=batch_sizes, horizon_s=horizon,
        n_networks=world[0], devices_per_network=world[1],
    )
    for p in points:
        print(
            f"batch {p.batch_size:3d}: {p.bytes_per_block_per_device:8.2f} "
            f"bytes/block/device, mean delay {p.mean_delay_s:6.3f}s, "
            f"offline receipts {p.receipts_verified_offline}/{p.receipts_requested}"
        )

    pruning = run_pruning_case(**pruning_shape)
    print(
        f"pruning: {pruning['reports']:,} reports, retained "
        f"{pruning['blocks_retained']}/{pruning['blocks_total']} blocks "
        f"({pruning['retained_fraction']:.1%}), receipts verified "
        f"{pruning['receipts_verified']}/{pruning['receipts_sampled']} "
        f"({pruning['receipts_against_pruned_blocks']} against pruned blocks)"
    )

    cases = {
        "delay_vs_traffic": [p.to_dict() for p in points],
        "pruning": pruning,
    }
    problems = validate_bench({"suite": "ledger", "configs": {config: cases}})
    for problem in problems:
        print(f"INVALID {problem}", file=sys.stderr)

    if args.out:
        path = Path(args.out)
        data = {"suite": "ledger", "configs": {}}
        if path.exists():
            data = json.loads(path.read_text())
            data.setdefault("configs", {})
        data["suite"] = "ledger"
        data["configs"][config] = cases
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.out} [{config}]")

    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
