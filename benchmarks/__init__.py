"""Standalone benchmark scripts and the shared BENCH_*.json validator.

The ``bench_*.py`` scripts are run directly (they put this directory on
``sys.path`` themselves); the package exists so the artifact validator
can run as ``python -m benchmarks.validate``.
"""
