"""Kernel throughput benchmark: raw event loop and the 1k-device fleet.

Measures the discrete-event hot path at four grains:

* ``raw_chain`` — bare schedule/dispatch cycles (parallel callback
  chains, no model code): the kernel's ceiling.
* ``periodic_tasks`` — the :meth:`Simulator.every` re-arm path.
* ``same_instant_burst`` — many events at identical timestamps, the
  batched-execution path (clock written once per instant).
* ``fleet_1k_direct`` — the headline: 1,000 devices across 50 direct-
  transport networks, 20 simulated seconds, tracing off.  This is the
  case the committed ``BENCH_kernel.json`` tracks against the
  pre-optimisation kernel.
* ``fleet_1k_vector`` — the same world with the vectorized fleet actor
  (``vector.enabled``).  Throughput is reported in **device-equivalent
  events/s**: the scalar run's event count divided by the vector wall
  time, since the whole point is executing the same simulated work with
  far fewer kernel events.  ``kernel_events`` records the raw count.
  ``reference_events_per_s``/``speedup`` compare against the scalar
  ``fleet_1k_direct`` measured in the *same* invocation.
* ``fleet_100k_direct`` (full config only) — the shards × vector
  ceiling: ``BENCH_shard.json``'s ``fleet_100k`` world (fast-join
  transport, line mesh, same horizon) run with sharding and the
  vector actor together, raw merged kernel events/s.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke \
        --out BENCH_kernel.json --check BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import attach_reference, case, check_regression, measure, write_results
from repro.runtime import TransportSpec, build
from repro.runtime.context import SimContext
from repro.runtime.spec import VectorSpec
from repro.sim.kernel import Simulator
from repro.workloads.scenarios import scaled_spec


def run_raw_chain(n_events: int, chains: int = 100) -> Simulator:
    """Parallel callback chains: schedule + pop + dispatch, nothing else."""
    sim = Simulator(trace=False)
    per_chain = n_events // chains
    call_later = sim.call_later

    def make_tick() -> object:
        remaining = per_chain

        def tick() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                call_later(0.001, tick)

        return tick

    for i in range(chains):
        call_later(0.001 * (1 + i / chains), make_tick())
    sim.run(max_events=n_events * 2)
    return sim


def run_periodic(n_events: int, tasks: int = 200) -> Simulator:
    """Periodic tasks re-arming through :class:`PeriodicTask`."""
    sim = Simulator(trace=False)
    interval = 0.01
    for i in range(tasks):
        sim.every(interval, lambda: None, first_at=interval + i * 1e-5)
    sim.run_until(interval * (n_events // tasks))
    return sim


def run_same_instant_burst(n_events: int, burst: int = 1000) -> Simulator:
    """Bursts of events at one timestamp (the clock moves once per burst)."""
    sim = Simulator(trace=False)
    for instant in range(max(1, n_events // burst)):
        at = 1.0 + instant * 0.01
        for _ in range(burst):
            sim.schedule(at, lambda: None)
    sim.run()
    return sim


def _fleet_spec(n_networks: int, devices_per_network: int, vector: bool):
    spec = scaled_spec(
        n_networks=n_networks,
        devices_per_network=devices_per_network,
        seed=77,
        transport=TransportSpec(kind="direct"),
    )
    if vector:
        spec = dataclasses.replace(spec, vector=VectorSpec(enabled=True))
    return spec


def run_fleet(
    n_networks: int,
    devices_per_network: int,
    horizon_s: float,
    vector: bool = False,
) -> Simulator:
    """The direct-transport fleet, tracing off (the headline case)."""
    spec = _fleet_spec(n_networks, devices_per_network, vector)
    scenario = build(spec, context=SimContext.create(seed=77, trace=False))
    scenario.simulator.run_until(horizon_s)
    return scenario.simulator


class _ShardedSim:
    """Adapter so :func:`measure` callers see a Simulator-shaped result."""

    def __init__(self, events_executed: int) -> None:
        self.events_executed = events_executed


def run_fleet_sharded(
    n_networks: int, devices_per_network: int, horizon_s: float
) -> _ShardedSim:
    """The shards × vector ceiling: every composition layer engaged.

    Reuses ``bench_shard.fleet_spec`` (fast-join transport, line mesh)
    so the world matches ``BENCH_shard.json``'s ``fleet_100k`` case —
    the only delta is the vector actor.
    """
    from bench_shard import fleet_spec
    from repro.shard import run_sharded

    spec = dataclasses.replace(
        fleet_spec(n_networks, devices_per_network), vector=VectorSpec(enabled=True)
    )
    result = run_sharded(spec, horizon_s, "auto", processes=False, trace=False)
    return _ShardedSim(result.events_executed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small event counts and a tiny fleet (the CI configuration)",
    )
    parser.add_argument(
        "--out", metavar="JSON", help="write/update this BENCH_kernel.json file"
    )
    parser.add_argument(
        "--check",
        metavar="JSON",
        help="fail when any case drops >30%% below this file's committed rates",
    )
    parser.add_argument(
        "--reference",
        metavar="JSON",
        help=(
            "a prior run of this script (e.g. against the pre-optimisation "
            "tree) to record as reference_events_per_s/speedup"
        ),
    )
    args = parser.parse_args(argv)

    config = "smoke" if args.smoke else "full"
    if args.smoke:
        # Repeats + best-of screen out scheduler noise: the smoke cases
        # are sub-second and CI gates on them with a 30% threshold.
        kernel_events, fleet_shape, repeats = 50_000, (4, 5, 10.0), 5
    else:
        kernel_events, fleet_shape, repeats = 500_000, (50, 20, 20.0), 1

    cases = {}
    for name, fn, fn_args in (
        ("raw_chain", run_raw_chain, (kernel_events,)),
        ("periodic_tasks", run_periodic, (kernel_events,)),
        ("same_instant_burst", run_same_instant_burst, (kernel_events,)),
        ("fleet_1k_direct", run_fleet, fleet_shape),
    ):
        sim, wall = measure(fn, *fn_args, repeats=repeats)
        cases[name] = case(sim.events_executed, wall)
        print(
            f"{name}: {cases[name]['events']:,} events in "
            f"{cases[name]['wall_s']:.2f}s = {cases[name]['events_per_s']:,} events/s"
        )

    # The vector curve: same world, device-equivalent throughput (the
    # scalar run's event count over the vector wall time), compared
    # against the scalar fleet measured moments ago on this machine.
    scalar_fleet = cases["fleet_1k_direct"]
    vsim, vwall = measure(run_fleet, *fleet_shape, vector=True, repeats=repeats)
    record = case(scalar_fleet["events"], vwall)
    record["kernel_events"] = vsim.events_executed
    record["reference_events_per_s"] = scalar_fleet["events_per_s"]
    if scalar_fleet["events_per_s"] > 0:
        record["speedup"] = round(
            record["events_per_s"] / scalar_fleet["events_per_s"], 2
        )
    cases["fleet_1k_vector"] = record
    print(
        f"fleet_1k_vector: {record['events']:,} device-equivalent events in "
        f"{record['wall_s']:.2f}s = {record['events_per_s']:,} events/s "
        f"({record.get('speedup', '?')}x scalar, "
        f"{record['kernel_events']:,} kernel events)"
    )

    if not args.smoke:
        # The composition ceiling: 100k devices, shards × vector, in
        # BENCH_shard.json's fleet_100k world (same shape and horizon,
        # so the two artifacts compare directly).  Raw merged kernel
        # events/s.  20 devices/network keeps feeder currents inside
        # the INA219 range (1,000/network saturates the +/-3200 mA
        # feeder sensor).
        ssim, swall = measure(run_fleet_sharded, 5000, 20, 2.0, repeats=1)
        cases["fleet_100k_direct"] = case(ssim.events_executed, swall)
        record = cases["fleet_100k_direct"]
        print(
            f"fleet_100k_direct: {record['events']:,} events in "
            f"{record['wall_s']:.2f}s = {record['events_per_s']:,} events/s"
        )

    if args.reference:
        attach_reference(cases, args.reference, config)
        for name, record in cases.items():
            if "speedup" in record:
                print(
                    f"{name}: {record['speedup']}x vs reference "
                    f"{record['reference_events_per_s']:,} events/s"
                )

    failures = []
    if args.check and Path(args.check).exists():
        failures = check_regression(cases, args.check, config)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)

    if args.out:
        write_results(args.out, "kernel", config, cases)
        print(f"wrote {args.out} [{config}]")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
