"""E1 / Fig. 5 — decentralized vs centralized metering accuracy.

Paper: the aggregator's system-level measurement reads 0.9-8.2 % higher
than the sum of device self-reports, due to ohmic losses plus the
INA219's 0.5 mA offset error.

Regenerates the per-interval comparison and asserts the shape: the gap
is positive on average, single-digit percent, and varies across
intervals.
"""

from repro.experiments.fig5 import run_fig5
from repro.experiments.report import render_fig5


def test_fig5_decentralized_vs_centralized(once):
    result = once(run_fig5, seed=0, duration_s=45.0, warmup_s=15.0)
    print()
    print(render_fig5(result))
    # Shape assertions (see EXPERIMENTS.md for the measured numbers).
    assert result.mean_gap_pct > 0.5
    assert result.max_gap_pct < 12.0
    assert result.max_gap_pct - result.min_gap_pct > 1.0


def test_fig5_gap_positive_across_seeds(once):
    def sweep():
        return [run_fig5(seed=s, duration_s=30.0, warmup_s=12.0).mean_gap_pct
                for s in (1, 2, 3)]

    means = once(sweep)
    print(f"\nmean gap by seed: {[f'{m:.2f}%' for m in means]}")
    assert all(m > 0 for m in means)
