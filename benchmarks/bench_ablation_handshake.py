"""A2 — which stage dominates T_handshake.

Decomposes measured handshakes into scan / association / MQTT connect /
protocol remainder.  On ESP32-class hardware the channel scan dominates;
the ablation verifies the reproduction shows the same structure.
"""

from repro.experiments.ablations import run_handshake_stage_ablation
from repro.experiments.report import render_table


def test_handshake_stage_decomposition(once):
    row = once(run_handshake_stage_ablation, runs=10, base_seed=0)
    print()
    print(
        render_table(
            ["scan_s", "assoc_s", "connect_s", "protocol_s", "total_s", "dominant"],
            [[row.scan_s, row.assoc_s, row.connect_s, row.protocol_s,
              row.total_s, row.dominant_stage]],
        )
    )
    assert row.dominant_stage == "scan"
    assert row.scan_s > 0.5 * row.total_s
    # The registration protocol itself is a small fraction: the paper's
    # 6 s is radio time, not protocol time.
    assert row.protocol_s < 0.1 * row.total_s
    stages_sum = row.scan_s + row.assoc_s + row.connect_s + row.protocol_s
    assert abs(stages_sum - row.total_s) < 0.2
