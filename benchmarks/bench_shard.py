"""E7 — sharded-execution scaling curve.

Runs the same direct-transport fleet serially and partitioned across
kernel shards, and records the scaling curve committed in
``BENCH_shard.json``.

Throughput basis: **critical path**.  Shards are executed in-process,
one at a time per window, and each shard's compute is timed separately;
``events_per_s`` is total events over the *slowest shard's* accumulated
compute time — the wall-clock rate a machine with one core per shard
achieves, measured without multi-process scheduler noise.  ``wall_s``
(this process's real elapsed time) and ``available_cpus`` are recorded
alongside so single-core CI boxes produce honest, comparable artifacts.
Every case also records the merged ledger digest; any digest divergence
between shard counts fails the run — the benchmark doubles as the
determinism gate.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_shard.py --out BENCH_shard.json
    PYTHONPATH=src python benchmarks/bench_shard.py --smoke \
        --out bench-artifacts/BENCH_shard.json --check BENCH_shard.json
    PYTHONPATH=src python benchmarks/bench_shard.py --validate BENCH_shard.json
"""

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import check_regression, write_results
from validate import validate_shard
from repro.parallel import available_cpus
from repro.runtime.spec import MeshSpec, TransportSpec
from repro.shard.runner import run_sharded
from repro.workloads.scenarios import scaled_spec

# Fast-join direct transport: the stock scan/assoc/connect latencies
# (~5.8 s) would spend most of a short horizon joining instead of
# reporting.
FAST_DIRECT = TransportSpec(kind="direct", scan_s=0.05, assoc_s=0.05, connect_s=0.02)

# (fleet name, networks, devices per network, horizon s, shard counts)
# Fleets stay at 20 devices per network: the aggregator feeder's INA219
# model saturates (+/-3200 mA) when many more duty cycles align, so
# scale comes from network count — which is also what sharding splits.
FULL_FLEETS = [
    ("fleet_10k", 500, 20, 10.0, (1, 2, 4)),
    ("fleet_100k", 5000, 20, 2.0, (1, 4)),
]
SMOKE_FLEETS = [
    ("fleet_100", 5, 20, 2.0, (1, 4)),
]

def fleet_spec(n_networks: int, devices_per_network: int):
    # A line mesh keeps the link count linear in the network count (a
    # full mesh over 5,000 networks is 12.5M edges of pure overhead).
    spec = scaled_spec(
        n_networks,
        devices_per_network,
        seed=77,
        transport=FAST_DIRECT,
        mesh_topology="line",
    )
    # A 10 ms mesh keeps the window count proportionate to the horizon
    # (1,000 windows for 10 s) without touching the digest: spec-driven
    # direct fleets generate no backhaul traffic, so the lookahead only
    # sets the barrier cadence.
    return dataclasses.replace(
        spec, mesh=MeshSpec(topology="line", latency_s=0.01)
    )


def run_case(
    n_networks: int, devices_per_network: int, until: float, shards: int
) -> dict:
    spec = fleet_spec(n_networks, devices_per_network)
    start = time.perf_counter()
    run = run_sharded(spec, until, shards=shards, processes=False, trace=False)
    wall = time.perf_counter() - start
    critical_path = max(run.shard_busy_s)
    events = run.events_executed
    return {
        "events": int(events),
        "wall_s": round(wall, 3),
        "critical_path_s": round(critical_path, 3),
        "events_per_s": int(events / critical_path) if critical_path > 0 else 0,
        "shards": shards,
        "basis": "critical_path",
        "available_cpus": available_cpus(),
        "digest": run.ledger_digest,
    }


def run_config(fleets) -> tuple[dict, list[str]]:
    """Run every fleet at every shard count; returns (cases, problems)."""
    cases: dict[str, dict] = {}
    problems: list[str] = []
    for name, n_networks, devices, until, shard_counts in fleets:
        serial_rate = None
        serial_digest = None
        for shards in shard_counts:
            case_name = f"{name}_shards{shards}"
            record = run_case(n_networks, devices, until, shards)
            if shards == 1:
                serial_rate = record["events_per_s"]
                serial_digest = record["digest"]
            else:
                if serial_rate:
                    record["speedup_vs_serial"] = round(
                        record["events_per_s"] / serial_rate, 2
                    )
                if serial_digest is not None and record["digest"] != serial_digest:
                    problems.append(
                        f"{case_name}: digest {record['digest'][:16]}... != "
                        f"serial {serial_digest[:16]}..."
                    )
            cases[case_name] = record
            print(
                f"{case_name}: {record['events']:,} events, "
                f"critical path {record['critical_path_s']}s, "
                f"{record['events_per_s']:,} events/s"
                + (
                    f" ({record['speedup_vs_serial']}x vs serial)"
                    if "speedup_vs_serial" in record
                    else ""
                )
            )
    return cases, problems


def validate_bench(data: dict) -> list[str]:
    """Schema + invariant check for a ``BENCH_shard.json`` payload.

    Delegates to the shared artifact validator
    (``python -m benchmarks.validate``); this alias keeps the script's
    ``--validate`` flag working.
    """
    return validate_shard(data)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny fleet (CI gate), seconds not minutes"
    )
    parser.add_argument("--out", metavar="JSON", help="write results to this file")
    parser.add_argument(
        "--check",
        metavar="JSON",
        help="fail if events/s regressed >30%% vs this committed file",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing artifact's schema and digest invariants, then exit",
    )
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate_bench(json.loads(Path(args.validate).read_text()))
        for problem in problems:
            print(f"INVALID: {problem}")
        print(f"{args.validate}: {'INVALID' if problems else 'ok'}")
        return 1 if problems else 0

    config = "smoke" if args.smoke else "full"
    cases, problems = run_config(SMOKE_FLEETS if args.smoke else FULL_FLEETS)
    for problem in problems:
        print(f"DIGEST MISMATCH: {problem}")

    if args.out:
        write_results(args.out, "shard", config, cases)
        print(f"wrote {args.out}")
    if args.check:
        failures = check_regression(cases, args.check, config)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            return 1
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
