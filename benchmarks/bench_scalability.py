"""A4 — scalability: devices per aggregator and kernel throughput.

Paper §II-A: "with limited time-slots for communication, the number of
devices connected to an aggregator is also limited".  Sweeps the device
count and reports wall-clock per simulated second plus slot occupancy.
"""

import time

import pytest

from repro.errors import SlotAllocationError
from repro.ids import DeviceId
from repro.net.tdma import TdmaSchedule
from repro.runtime import build
from repro.workloads.scenarios import scaled_spec


@pytest.mark.parametrize("devices", [2, 8, 16])
def test_scaling_devices_per_network(once, devices):
    def run():
        scenario = build(
            scaled_spec(n_networks=2, devices_per_network=devices, seed=17)
        )
        start = time.perf_counter()
        scenario.run_until(12.0)
        wall = time.perf_counter() - start
        return scenario, wall

    scenario, wall = once(run)
    scenario.chain.validate()
    registered = sum(
        unit.registry.member_count for unit in scenario.aggregators.values()
    )
    events = scenario.simulator.events_executed
    print(
        f"\n{devices} devices/network: {registered} registered, "
        f"{events} events, {wall:.2f}s wall for 12 simulated s"
    )
    assert registered == 2 * devices


def test_tdma_capacity_is_the_limit(benchmark):
    def fill():
        schedule = TdmaSchedule(superframe_s=0.1, slot_count=16)
        count = 0
        try:
            while True:
                schedule.assign(DeviceId(f"d{count}"))
                count += 1
        except SlotAllocationError:
            return count

    capacity = benchmark(fill)
    print(f"\ndevices admitted before slot exhaustion: {capacity}")
    assert capacity == 16
