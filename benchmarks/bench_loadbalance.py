"""A8 — dynamic load balancing (§IV's "research problem", solved).

Compares greedy-RSSI placement against the min-max-utilisation balancer
on hotspot instances (many mobile devices converging on one popular
grid-location), and measures the balancer's cost as instances grow.
"""

import numpy as np
import pytest

from repro.experiments.report import render_table
from repro.planning import (
    BalanceProblem,
    balance_min_max_utilisation,
    greedy_rssi_assignment,
)


def hotspot_instance(devices=24, aggregators=4, capacity=12, seed=0):
    """Most devices hear the hotspot loudest; others are reachable too."""
    rng = np.random.default_rng(seed)
    names = [f"agg{i}" for i in range(aggregators)]
    reachable = {}
    for d in range(devices):
        candidates = {"agg0": -45.0 - float(rng.uniform(0, 5))}
        for other in names[1:]:
            if rng.random() < 0.7:
                candidates[other] = -60.0 - float(rng.uniform(0, 15))
        reachable[f"dev{d}"] = candidates
    return BalanceProblem(
        capacities={name: capacity for name in names}, reachable=reachable
    )


def test_balancer_beats_greedy_on_hotspots(once):
    def sweep():
        rows = []
        for seed in range(5):
            problem = hotspot_instance(seed=seed)
            greedy = greedy_rssi_assignment(problem)
            balanced = balance_min_max_utilisation(problem)
            rows.append(
                [seed, greedy.max_utilisation(problem),
                 balanced.max_utilisation(problem),
                 len(greedy.unassigned), len(balanced.unassigned)]
            )
        return rows

    rows = once(sweep)
    print()
    print(
        render_table(
            ["seed", "greedy_max_util", "balanced_max_util",
             "greedy_stranded", "balanced_stranded"],
            rows,
        )
    )
    for _, greedy_util, balanced_util, _, balanced_stranded in rows:
        assert balanced_util <= greedy_util + 1e-9
        assert balanced_stranded == 0
    # On hotspot instances the improvement is strict on average.
    assert np.mean([r[2] for r in rows]) < np.mean([r[1] for r in rows])


@pytest.mark.parametrize("devices", [16, 64, 128])
def test_balancer_scaling_cost(benchmark, devices):
    problem = hotspot_instance(
        devices=devices, aggregators=8, capacity=max(4, devices // 4), seed=1
    )
    assignment = benchmark(balance_min_max_utilisation, problem)
    assert assignment.unassigned == []
