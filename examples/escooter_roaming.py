#!/usr/bin/env python3
"""The paper's motivating scenario: an e-scooter charging away from home.

An e-scooter with a CC/CV charge profile starts charging in its home
network, rides to another grid-location (no consumption in transit),
and finishes charging there under a temporary membership.  The host
aggregator forwards its consumption home over the backhaul, and the
home network issues a single consolidated invoice — location-independent
per-device billing, the architecture's headline capability.

Run:  python examples/escooter_roaming.py
"""

from repro import BillingEngine, DeviceId, FlatTariff
from repro.device.stack import DeviceConfig, MeteringDevice
from repro.runtime import build
from repro.workloads.mobility import MobilityTrace
from repro.workloads.profiles import EscooterChargeProfile
from repro.workloads.scenarios import paper_testbed_spec


def main() -> None:
    scenario = build(paper_testbed_spec(seed=42, enter_devices=False))

    # Add the e-scooter: a 50 mAh-scale battery charging at 150 mA.
    escooter = MeteringDevice(
        scenario.simulator,
        DeviceId("escooter"),
        DeviceConfig(),
        scenario.grid,
        scenario.channel,
        EscooterChargeProfile(
            capacity_mah=50.0, initial_soc=0.1, cc_current_ma=150.0
        ),
    )
    scenario.devices["escooter"] = escooter

    # Itinerary: charge at home for 25 s, ride for 12 s, finish at the
    # host network.
    scenario.schedule_mobility(
        "escooter",
        MobilityTrace.single_move(
            home="agg1", destination="agg2",
            enter_home_at=0.0, leave_home_at=25.0, idle_s=12.0,
        ),
    )
    scenario.run_until(70.0)

    handshake = escooter.last_handshake
    print(f"temporary membership at agg2 took {handshake.duration_s:.2f}s "
          "(paper: ~6s)")
    print(f"records buffered while joining: {escooter.reports_buffered}")

    agg1 = scenario.aggregator("agg1")
    print(f"reports forwarded home over the backhaul: "
          f"{agg1.liaison.stats.forwarded_received}")

    engine = BillingEngine(scenario.chain, FlatTariff(rate_per_mwh=0.0002))
    invoice = engine.invoice(DeviceId("escooter"), (0.0, 70.0))
    print()
    print(invoice.render())
    print()
    roaming_share = invoice.roaming_energy_mwh / invoice.total_energy_mwh
    print(f"{roaming_share:.0%} of the e-scooter's energy was consumed in a "
          "foreign network, yet billed on one home invoice.")


if __name__ == "__main__":
    main()
