#!/usr/bin/env python3
"""Export the paper's figures as data + HTML artifacts.

Produces an ``artifacts/`` directory next to this script containing:

* ``fig5.csv`` — the per-interval decentralized-vs-centralized table,
* ``fig6.csv`` — the mobility timeline as received at Aggregator 1,
* ``agg1.html`` / ``agg2.html`` — self-contained dashboard pages with
  SVG charts of every monitored series (the Grafana substitute's
  shareable output),
* ``trace.jsonl`` — the structured simulation trace of the fig6 run.

Run:  python examples/export_figures.py [output_dir]
"""

import csv
import sys
from pathlib import Path

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.monitoring.html import save_dashboard_html
from repro.runtime import build
from repro.workloads.scenarios import paper_testbed_spec


def export_fig5(out: Path) -> Path:
    result = run_fig5(seed=0)
    path = out / "fig5.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["network", "t_start_s", "device_sum_ma", "aggregator_ma", "gap_pct"]
        )
        for row in result.rows:
            writer.writerow(
                [row.network, row.start, f"{row.device_sum_ma:.4f}",
                 f"{row.aggregator_ma:.4f}", f"{row.gap_pct:.4f}"]
            )
    return path


def export_fig6(out: Path) -> list[Path]:
    result = run_fig6(seed=0)
    timeline = out / "fig6.csv"
    with timeline.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["arrival_time_s", "current_ma"])
        for t, v in zip(result.arrival_times, result.arrival_values):
            writer.writerow([f"{t:.4f}", f"{v:.4f}"])
    return [timeline]


def export_dashboards(out: Path) -> list[Path]:
    scenario = build(paper_testbed_spec(seed=0))
    scenario.run_until(30.0)
    written = []
    for name, unit in scenario.aggregators.items():
        written.append(
            save_dashboard_html(
                unit.monitoring, out / f"{name}.html", title=f"{name} monitoring"
            )
        )
    count = scenario.simulator.trace.save_jsonl(out / "trace.jsonl")
    print(f"trace.jsonl: {count} records")
    written.append(out / "trace.jsonl")
    return written


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent / "artifacts"
    out.mkdir(parents=True, exist_ok=True)
    written = [export_fig5(out)]
    written += export_fig6(out)
    written += export_dashboards(out)
    print("wrote:")
    for path in written:
        print(f"  {path}  ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
