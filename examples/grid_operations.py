#!/usr/bin/env python3
"""Grid operations: the paper's §IV research agenda, running.

Three future-work items the paper names, each exercised on live
simulation data:

1. **Ground-truth problem** — a device under-reports by 50 %; the
   least-squares attributor identifies it and recovers its true draw.
2. **Demand estimation** — per-network demand forecasts computed from
   the common ledger.
3. **Dynamic load-balancing** — a hotspot of mobile devices is placed
   across aggregators under slot constraints, compared with the greedy
   strongest-RSSI behaviour.

Run:  python examples/grid_operations.py
"""

import numpy as np

from repro.anomaly import ScalingAttack
from repro.planning import (
    BalanceProblem,
    NetworkDemandEstimator,
    balance_min_max_utilisation,
    greedy_rssi_assignment,
)
from repro.runtime import build
from repro.workloads.scenarios import paper_testbed_spec


def demo_attribution() -> None:
    print("=== 1. who is lying? (ground-truth attribution) ===")
    scenario = build(paper_testbed_spec(seed=8))
    scenario.device("device1").tamper_attack = ScalingAttack(0.5)
    scenario.run_until(40.0)
    result = scenario.aggregator("agg1").attribute_anomaly()
    for device, alpha in sorted(result.alphas.items()):
        tag = "  <-- under-reporting" if device in result.suspects else ""
        print(f"  {device}: reported x{alpha:.2f} below truth{tag}")
    print(f"  fit residual: {result.residual_rms_ma:.2f} mA over "
          f"{result.windows_used} windows")
    print(f"  a 50 mA report from device1 really means "
          f"{result.recovered_true_ma('device1', 50.0):.0f} mA\n")


def demo_demand() -> None:
    print("=== 2. per-network demand forecast from the ledger ===")
    scenario = build(paper_testbed_spec(seed=12))
    scenario.run_until(30.0)
    estimator = NetworkDemandEstimator(scenario.chain, interval_s=1.0)
    for network, forecast in estimator.forecast_all(["agg1", "agg2"]).items():
        print(f"  {network}: next-second demand ~ {forecast:.3f} mWh")
    print()


def demo_load_balancing() -> None:
    print("=== 3. hotspot load balancing ===")
    rng = np.random.default_rng(3)
    reachable = {}
    for d in range(20):
        candidates = {"plaza": -45.0 - float(rng.uniform(0, 5))}
        for other in ("north", "south", "east"):
            if rng.random() < 0.7:
                candidates[other] = -62.0 - float(rng.uniform(0, 12))
        reachable[f"scooter{d}"] = candidates
    problem = BalanceProblem(
        capacities={"plaza": 16, "north": 16, "south": 16, "east": 16},
        reachable=reachable,
    )
    greedy = greedy_rssi_assignment(problem)
    balanced = balance_min_max_utilisation(problem)
    print(f"  greedy RSSI:  max utilisation "
          f"{greedy.max_utilisation(problem):.0%}, "
          f"loads { {a: greedy.load(a) for a in problem.capacities} }")
    print(f"  balanced:     max utilisation "
          f"{balanced.max_utilisation(problem):.0%}, "
          f"loads { {a: balanced.load(a) for a in problem.capacities} }")


def main() -> None:
    demo_attribution()
    demo_demand()
    demo_load_balancing()


if __name__ == "__main__":
    main()
