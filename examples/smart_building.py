#!/usr/bin/env python3
"""A smart building: many devices, time-of-use billing, load scheduling.

Exercises the scalable side of the architecture: three grid-locations
with six devices each (the paper's "smart buildings" vertical), a
time-of-use tariff, per-device invoices from the common ledger, and the
application layer's demand prediction + schedule optimization planning a
deferrable load into the cheap window.

Run:  python examples/smart_building.py
"""

from repro import BillingEngine, DeviceId, TimeOfUseTariff
from repro.device.app import DemandPredictor, ScheduleOptimizer, TariffWindow
from repro.runtime import build
from repro.workloads.scenarios import scaled_spec


def main() -> None:
    scenario = build(scaled_spec(n_networks=3, devices_per_network=6, seed=99))
    scenario.run_until(25.0)
    scenario.chain.validate()

    # A short synthetic day: 60 s period, peak from t=20 to t=40.
    tariff = TimeOfUseTariff(
        period_s=60.0, peak_start_s=20.0, peak_end_s=40.0,
        peak_rate=0.0006, offpeak_rate=0.0001,
    )
    engine = BillingEngine(scenario.chain, tariff)

    print("=== per-device invoices (time-of-use tariff) ===")
    total_cost = 0.0
    for name in sorted(scenario.devices)[:6]:
        invoice = engine.invoice(DeviceId(name), (0.0, 25.0), include_lines=False)
        total_cost += invoice.total_cost
        print(
            f"{name}: {invoice.total_energy_mwh:8.3f} mWh  "
            f"cost {invoice.total_cost:.6f}"
        )
    print(f"(first six of {len(scenario.devices)} devices, "
          f"cost so far {total_cost:.6f})")

    # Demand prediction from one device's ledger history.
    device = scenario.devices["dev-0-0"]
    records = scenario.chain.records_for_device(device.device_id.uid)
    records.sort(key=lambda r: r["measured_at"])
    predictor = DemandPredictor()
    for record in records:
        predictor.observe(float(record["energy_mwh"]))
    print(f"\npredicted next-window energy for dev-0-0: "
          f"{predictor.predict():.6f} mWh "
          f"(mean abs error so far {predictor.mean_abs_error:.6f})")

    # Schedule a deferrable 30-second load into the cheap windows.
    optimizer = ScheduleOptimizer(
        [
            TariffWindow(0.0, 20.0, 0.0001),
            TariffWindow(20.0, 40.0, 0.0006),
            TariffWindow(40.0, 60.0, 0.0001),
        ]
    )
    slots = optimizer.plan(required_s=30.0)
    print("\n=== optimized schedule for a 30s deferrable load ===")
    for slot in slots:
        print(f"run [{slot.start_s:5.1f}s, {slot.end_s:5.1f}s] "
              f"at price {slot.price_per_mwh}")
    cost = optimizer.plan_cost(slots, power_mw=500.0)
    naive_cost = optimizer.plan_cost(
        [type(slot)(20.0, 50.0, 0.0006) for slot in slots[:1]], power_mw=500.0
    )
    print(f"scheduled cost {cost:.6f} (vs {naive_cost:.6f} if run at peak)")


if __name__ == "__main__":
    main()
