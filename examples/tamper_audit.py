#!/usr/bin/env python3
"""Fraud and tampering: what the architecture catches that a plain log misses.

Two attacks from the paper's threat model:

1. **In-device fraud** — a device under-reports its consumption by 50 %.
   Its per-report stream looks plausible, but the aggregator's
   system-level complementary measurement (the feeder meter) exposes the
   shortfall.
2. **Storage tampering** — an attacker with database access rewrites a
   stored record.  The naive mutable log accepts it silently; the
   blockchain audit pinpoints the forged block.

Run:  python examples/tamper_audit.py
"""

from repro import audit_chain, build, paper_testbed_spec
from repro.anomaly import ScalingAttack
from repro.baselines import NaiveDeviceLog
from repro.chain import Block


def demo_in_device_fraud() -> None:
    print("=== attack 1: in-device under-reporting (50% scaling) ===")
    scenario = build(paper_testbed_spec(seed=13))
    scenario.device("device1").tamper_attack = ScalingAttack(0.5)
    scenario.run_until(30.0)
    stats = scenario.aggregator("agg1").verifier.stats
    print(f"network-level checks run:   {stats.network_checks}")
    print(f"anomalies flagged:          {stats.network_anomalies}")
    honest = scenario.aggregator("agg2").verifier.stats
    print(f"(honest network 2 flagged:  {honest.network_anomalies})")
    print()


def demo_storage_tampering() -> None:
    print("=== attack 2: rewriting stored consumption data ===")
    scenario = build(paper_testbed_spec(seed=14))
    scenario.run_until(15.0)
    chain = scenario.chain

    # Mirror every record into the unprotected baseline log.
    naive = NaiveDeviceLog()
    for block in chain:
        for record in block.records:
            naive.append(record)

    # The attacker zeroes one stored record in both stores.
    store = chain._store
    victim = store.get(3)
    forged = [dict(r) for r in victim.records]
    forged[0]["energy_mwh"] = 0.0
    store.tamper(3, Block(victim.header, tuple(forged), victim.block_hash))
    naive.tamper(0, energy_mwh=0.0)

    print(f"naive log audit says clean: {naive.audit()}")
    report = audit_chain(chain)
    print(f"blockchain audit clean:     {report.clean}")
    print(f"forged block detected at height: {report.first_bad_height}")


def main() -> None:
    demo_in_device_fraud()
    demo_storage_tampering()


if __name__ == "__main__":
    main()
