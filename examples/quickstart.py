#!/usr/bin/env python3
"""Quickstart: the paper's testbed in ~30 lines.

Builds the DATE-2020 experimental setup (two networks, two devices
each), runs 30 simulated seconds, and shows what the architecture
produced: a validated blockchain of consumption records, the
aggregators' live monitoring, and each device's registration handshake.

Run:  python examples/quickstart.py
"""

from repro import build, paper_testbed_spec
from repro.monitoring import render_dashboard


def main() -> None:
    scenario = build(paper_testbed_spec(seed=7))
    scenario.run_until(30.0)

    print("=== ledger ===")
    print(f"blocks: {scenario.chain.height}")
    print(f"total stored energy: {scenario.chain.total_energy_mwh():.3f} mWh")
    scenario.chain.validate()
    print("chain validation: OK")

    print("\n=== devices ===")
    for name, device in scenario.devices.items():
        handshake = device.last_handshake
        print(
            f"{name}: registered in {handshake.duration_s:.2f}s, "
            f"{device.reports_sent} reports sent, "
            f"{device.acked_count} acked, "
            f"{device.meter.total_energy_mwh:.3f} mWh measured"
        )

    print("\n=== aggregator 1 monitoring (Grafana substitute) ===")
    print(render_dashboard(scenario.aggregator("agg1").monitoring))


if __name__ == "__main__":
    main()
