#!/usr/bin/env python3
"""Future work made runnable: consensus among devices, no aggregator.

§IV of the paper plans "addition of consensus among devices to realize a
completely decentralized [architecture] without any reliance on the
aggregator".  This demo runs that extension: devices form a validator
set, each independently checks proposed record batches against its own
observation predicate, and blocks commit only past a 2/3 quorum — so a
single fraudulent proposer cannot write fabricated data.

Run:  python examples/consensus_demo.py
"""

from repro.chain import Blockchain, PoaConsensus, Validator, audit_chain


def honest_batch(timestamp: float) -> list[dict]:
    return [
        {"device": f"d{i}", "device_uid": f"uid{i}", "sequence": int(timestamp),
         "measured_at": timestamp, "energy_mwh": 0.01 + 0.001 * i}
        for i in range(4)
    ]


def main() -> None:
    chain = Blockchain()

    # Each device-validator refuses batches with implausible energy.
    def plausible(records: list[dict]) -> bool:
        return all(0.0 <= float(r["energy_mwh"]) < 1.0 for r in records)

    validators = [Validator(f"device-{i}", check=plausible) for i in range(5)]
    consensus = PoaConsensus(validators, chain)

    print("=== honest rounds ===")
    for t in range(5):
        committed, votes = consensus.propose(float(t), honest_batch(float(t)))
        accepts = sum(v.accept for v in votes)
        proposer = consensus.proposer_for_round(t).name
        print(f"round {t}: proposer {proposer}, {accepts}/5 accept -> "
              f"{'committed' if committed else 'rejected'}")

    print("\n=== a fraudulent proposal ===")
    forged = honest_batch(99.0)
    forged[0]["energy_mwh"] = 1e6  # fabricated consumption
    committed, votes = consensus.propose(99.0, forged)
    accepts = sum(v.accept for v in votes)
    print(f"fraud round: {accepts}/5 accept -> "
          f"{'committed' if committed else 'REJECTED by quorum'}")

    print(f"\nchain height: {chain.height} (fraud never stored)")
    print(f"audit clean: {audit_chain(chain).clean}")
    print(f"messages exchanged across {consensus.round} rounds: "
          f"{consensus.messages_exchanged}")
    print("\ncost comparison: the trusted-aggregator chain of the main "
          "architecture needs 0 consensus messages per block; full "
          "decentralization pays O(n^2) votes per round "
          "(benchmarks/bench_consensus.py quantifies the scaling).")


if __name__ == "__main__":
    main()
