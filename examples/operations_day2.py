#!/usr/bin/env python3
"""Day-2 operations: outages, disputes, remote maintenance.

A tour of the operational surface a deployed metering fleet needs —
all running on the paper's testbed:

1. A Wi-Fi outage hits a device: sampling continues, data buffers, and
   reconnection backfills every window.
2. The owner disputes a bill: the aggregator issues a Merkle inclusion
   receipt the owner verifies without trusting anyone.
3. The operator retunes a device's measurement interval remotely over
   MQTT, and watches its reporting rate change.

Run:  python examples/operations_day2.py
"""

from repro.ids import DeviceId
from repro.runtime import build
from repro.workloads.scenarios import paper_testbed_spec


def main() -> None:
    scenario = build(paper_testbed_spec(seed=2024))
    scenario.run_until(12.0)
    device = scenario.device("device1")
    agg1 = scenario.aggregator("agg1")

    print("=== 1. communication outage ===")
    device.drop_connection()
    scenario.run_until(20.0)
    print(f"outage 12s-20s: {device.store.pending} windows buffered locally")
    device.reconnect()
    scenario.run_until(26.0)
    records = scenario.chain.records_for_device(device.device_id.uid)
    outage = [r for r in records if 12.5 < float(r["measured_at"]) < 19.5]
    print(f"after reconnect: {len(outage)} outage windows in the ledger, "
          f"{device.store.pending} still pending\n")

    print("=== 2. billing dispute ===")
    sequence = int(outage[0]["sequence"])
    device.request_receipt(sequence)
    scenario.run_until(27.0)
    receipt = device.receipts[sequence]
    print(f"receipt for sequence {sequence}: block {receipt.block_height}, "
          f"{len(receipt.proof)}-step Merkle proof")
    print(f"verifies standalone: {receipt.verify()}")
    print(f"verifies against live chain: {receipt.verify(scenario.chain)}\n")

    print("=== 3. remote maintenance ===")
    request = agg1.manage_device(DeviceId("device1"), "status")
    scenario.run_until(28.0)
    status = agg1.mgmt_responses[request].payload
    print(f"status: phase={status['phase']}, "
          f"energy={status['total_energy_mwh']:.3f} mWh")
    samples_before = device.firmware.samples_taken
    request = agg1.manage_device(DeviceId("device1"), "set-interval", argument=1.0)
    scenario.run_until(38.0)
    rate = (device.firmware.samples_taken - samples_before) / 10.0
    print(f"set-interval to 1s acknowledged: {agg1.mgmt_responses[request].ok}")
    print(f"measured sampling rate over the next 10s: {rate:.1f} Hz "
          "(was 10 Hz)")


if __name__ == "__main__":
    main()
