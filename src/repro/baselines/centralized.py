"""Centralized (location-based) metering baseline.

The incumbent: a single meter per feeder/building.  It sees the true
total (plus its own sensor error) but cannot attribute consumption to
devices, and bills whoever owns the *location* — a visiting e-scooter's
charge lands on the host's bill.  The Fig. 5 experiment compares its
network-level reading with the decentralized per-device sums; the
mobility experiments show the attribution failure that motivates the
paper.
"""

from __future__ import annotations

from repro.grid.meter import FeederMeter
from repro.monitoring.timeseries import TimeSeries
from repro.sim.kernel import PeriodicTask, Simulator
from repro.units import energy_mwh


class CentralizedMeteringBaseline:
    """Periodic feeder sampling with location-level energy accounting.

    Args:
        simulator: The kernel.
        meter: The feeder meter of the instrumented location.
        sample_interval_s: Sampling cadence.
        voltage_v: Feeder voltage for the energy computation.
    """

    def __init__(
        self,
        simulator: Simulator,
        meter: FeederMeter,
        sample_interval_s: float = 0.1,
        voltage_v: float = 5.0,
    ) -> None:
        self._sim = simulator
        self._meter = meter
        self._interval_s = sample_interval_s
        self._voltage_v = voltage_v
        self._series = TimeSeries(
            f"centralized:{meter.network.network_id.name}", "mA"
        )
        self._energy_mwh = 0.0
        self._task: PeriodicTask | None = None

    @property
    def series(self) -> TimeSeries:
        """Sampled feeder current over time."""
        return self._series

    @property
    def energy_mwh(self) -> float:
        """Location-level energy accounted so far."""
        return self._energy_mwh

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._task is None:
            self._task = self._sim.every(self._interval_s, self._tick, label="centralized")

    def stop(self) -> None:
        """Halt sampling."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        measured = self._meter.measure_ma(self._sim.now)
        self._series.append(self._sim.now, measured)
        self._energy_mwh += energy_mwh(measured, self._voltage_v, self._interval_s)

    def attribute_to_device(self, device_name: str) -> None:
        """Per-device attribution — impossible by construction.

        Raises ``NotImplementedError`` deliberately: the baseline's
        defining limitation, kept as an executable statement so tests
        document it.
        """
        raise NotImplementedError(
            "centralized metering cannot attribute consumption to "
            f"individual devices such as {device_name!r}; this is the "
            "limitation the decentralized architecture removes"
        )
