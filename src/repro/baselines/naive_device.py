"""Naive in-device metering baseline (no verification, mutable log).

Devices self-report into a plain list.  Nothing validates the reports
against a ground truth and nothing protects the stored data — an
attacker with storage access can rewrite history undetected.  The E6
experiment contrasts this with the blockchain's audit.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StorageError


class NaiveDeviceLog:
    """A mutable consumption log with no integrity protection."""

    def __init__(self) -> None:
        self._records: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: dict[str, Any]) -> None:
        """Store one self-reported record, unverified."""
        self._records.append(dict(record))

    def records(self) -> list[dict[str, Any]]:
        """All stored records (shallow copies)."""
        return [dict(r) for r in self._records]

    def total_energy_mwh(self, device: str | None = None) -> float:
        """Sum of stored energy, optionally for one device."""
        return sum(
            float(r.get("energy_mwh", 0.0))
            for r in self._records
            if device is None or r.get("device") == device
        )

    def tamper(self, index: int, **changes: Any) -> None:
        """Mutate a stored record in place — succeeds silently.

        The whole point of the baseline: this operation leaves no trace,
        whereas the same mutation on the blockchain trips the audit.
        """
        if not 0 <= index < len(self._records):
            raise StorageError(f"no record at index {index}")
        self._records[index].update(changes)

    def audit(self) -> bool:
        """A 'no-op audit' that always reports clean.

        There is no redundancy to check against; returns True whatever
        happened.  Kept executable so the E6 comparison reads directly
        from code.
        """
        return True
