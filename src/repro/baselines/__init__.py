"""Comparison baselines.

* :mod:`repro.baselines.centralized` — state-of-the-art location-based
  metering: one meter per building/feeder, no per-device attribution,
  blind to devices that consume elsewhere (the paper's motivation).
* :mod:`repro.baselines.naive_device` — in-device metering *without*
  the aggregator's verification or the blockchain: what you get if you
  trust device reports and a mutable log (the paper's threat model).
"""

from repro.baselines.centralized import CentralizedMeteringBaseline
from repro.baselines.naive_device import NaiveDeviceLog

__all__ = ["CentralizedMeteringBaseline", "NaiveDeviceLog"]
