"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the *shape* of a simulation world as plain
data: which networks exist, which devices live in them and under what
load profile, how the backhaul mesh is wired, and which faults strike
when.  Specs round-trip losslessly through JSON (``to_dict`` /
``from_dict``), so a scenario can live in a file, travel in an
experiment report, or be generated programmatically for sweeps —
protocol-parameter studies demand that scenario shape be data, not
code.

:func:`repro.runtime.build.build` compiles a spec into a fully wired
:class:`~repro.runtime.scenario.Scenario`; the canonical shapes (the
paper's 2x2 testbed, the scaled N x M worlds, the chaos variants) are
produced by the thin factories in :mod:`repro.workloads.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError

PROFILE_KINDS = ("constant", "duty_cycle", "sinusoid")
MESH_TOPOLOGIES = ("full", "line", "star", "explicit")
TRANSPORT_KINDS = ("mqtt", "direct", "serve")
FAULT_KINDS = (
    "channel_blackout",
    "channel_noise",
    "broker_noise",
    "aggregator_crash",
    "backhaul_partition",
)


def _require_keys(data: dict, allowed: set[str], what: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise ConfigError(f"unknown {what} keys: {sorted(unknown)}")


@dataclass(frozen=True)
class ProfileSpec:
    """A load-current profile as data.

    Attributes:
        kind: One of ``constant`` / ``duty_cycle`` / ``sinusoid``.
        params: Keyword arguments of the profile class (e.g.
            ``{"mean_ma": 120.0, "amplitude_ma": 100.0}``).
    """

    kind: str
    params: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise ConfigError(
                f"profile kind must be one of {PROFILE_KINDS}, got {self.kind!r}"
            )

    def build(self) -> Callable[[float], float]:
        """Instantiate the deterministic ``t -> mA`` callable."""
        # Imported lazily: repro.workloads.* imports repro.runtime at
        # module level, so the reverse edge must resolve at call time.
        from repro.workloads.profiles import (
            ConstantProfile,
            DutyCycleProfile,
            SinusoidProfile,
        )

        classes = {
            "constant": ConstantProfile,
            "duty_cycle": DutyCycleProfile,
            "sinusoid": SinusoidProfile,
        }
        try:
            return classes[self.kind](**self.params)
        except TypeError as exc:
            raise ConfigError(f"bad {self.kind} profile params {self.params}: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProfileSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(data, {"kind", "params"}, "profile")
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


@dataclass(frozen=True)
class NetworkSpec:
    """One grid network and its aggregator.

    Attributes:
        name: Aggregator / network name (``agg1``, ``net-0``, ...).
        supply_voltage_v: Grid-side supply voltage of the network.
        wire_resistance_ohms: Default feeder wire resistance.
        wire_leakage_ma: Default feeder leakage current.
        slot_count: TDMA slots (None: the aggregator default, or the
            builder's devices-derived choice).
    """

    name: str
    supply_voltage_v: float = 5.0
    wire_resistance_ohms: float = 0.1
    wire_leakage_ma: float = 2.5
    slot_count: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("network name must be non-empty")
        if self.supply_voltage_v <= 0:
            raise ConfigError(
                f"supply voltage must be positive, got {self.supply_voltage_v}"
            )
        if self.slot_count is not None and self.slot_count < 1:
            raise ConfigError(f"slot count must be >= 1, got {self.slot_count}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "name": self.name,
            "supply_voltage_v": self.supply_voltage_v,
            "wire_resistance_ohms": self.wire_resistance_ohms,
            "wire_leakage_ma": self.wire_leakage_ma,
            "slot_count": self.slot_count,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NetworkSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data,
            {"name", "supply_voltage_v", "wire_resistance_ohms", "wire_leakage_ma",
             "slot_count"},
            "network",
        )
        return cls(
            name=data["name"],
            supply_voltage_v=data.get("supply_voltage_v", 5.0),
            wire_resistance_ohms=data.get("wire_resistance_ohms", 0.1),
            wire_leakage_ma=data.get("wire_leakage_ma", 2.5),
            slot_count=data.get("slot_count"),
        )


@dataclass(frozen=True)
class DeviceSpec:
    """One metering device.

    Attributes:
        name: Device name.
        network: Home network it is scheduled to enter.
        profile: Load profile specification.
        enter_at: When the device enters its home network (None: never —
            a mobility itinerary or manual :meth:`Scenario.enter_at`
            drives it instead).
        distance_m: Radio distance to the home AP on entry.
    """

    name: str
    network: str
    profile: ProfileSpec
    enter_at: float | None = 0.0
    distance_m: float = 5.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("device name must be non-empty")
        if self.enter_at is not None and self.enter_at < 0:
            raise ConfigError(f"enter_at must be >= 0, got {self.enter_at}")
        if self.distance_m <= 0:
            raise ConfigError(f"distance must be positive, got {self.distance_m}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "name": self.name,
            "network": self.network,
            "profile": self.profile.to_dict(),
            "enter_at": self.enter_at,
            "distance_m": self.distance_m,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DeviceSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data, {"name", "network", "profile", "enter_at", "distance_m"}, "device"
        )
        return cls(
            name=data["name"],
            network=data["network"],
            profile=ProfileSpec.from_dict(data["profile"]),
            enter_at=data.get("enter_at", 0.0),
            distance_m=data.get("distance_m", 5.0),
        )


@dataclass(frozen=True)
class MeshSpec:
    """Backhaul mesh shape.

    Attributes:
        topology: ``full`` (every pair linked), ``line`` (a chain in
            network order), ``star`` (everyone through the first
            network), or ``explicit`` (exactly :attr:`links`).
        latency_s: Latency of every link.
        links: Explicit ``(a, b)`` name pairs (``explicit`` only).
    """

    topology: str = "full"
    latency_s: float = 0.001
    links: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.topology not in MESH_TOPOLOGIES:
            raise ConfigError(
                f"mesh topology must be one of {MESH_TOPOLOGIES}, got {self.topology!r}"
            )
        if self.latency_s <= 0:
            raise ConfigError(f"mesh latency must be positive, got {self.latency_s}")
        if self.links and self.topology != "explicit":
            raise ConfigError("explicit links require topology='explicit'")

    def resolve_links(self, names: list[str]) -> list[tuple[str, str]]:
        """The concrete link list for networks ``names`` (in order)."""
        if self.topology == "full":
            return [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        if self.topology == "line":
            return list(zip(names, names[1:]))
        if self.topology == "star":
            return [(names[0], other) for other in names[1:]]
        return [tuple(pair) for pair in self.links]

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "topology": self.topology,
            "latency_s": self.latency_s,
            "links": [list(pair) for pair in self.links],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MeshSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(data, {"topology", "latency_s", "links"}, "mesh")
        return cls(
            topology=data.get("topology", "full"),
            latency_s=data.get("latency_s", 0.001),
            links=tuple(tuple(pair) for pair in data.get("links", [])),
        )


@dataclass(frozen=True)
class TransportSpec:
    """Which wire backend carries device-to-aggregator traffic.

    Attributes:
        kind: ``mqtt`` (full radio fidelity — airtime, RSSI loss,
            connect jitter; the default, and the backend the pinned
            determinism digest is taken on) or ``direct`` (in-process
            topic router with fixed latency/loss, for large fleets).
        latency_s: Per-attempt link latency (``direct`` only).
        loss_p: Per-attempt loss probability (``direct`` only; 0
            disables the loss draw entirely).
        connect_s: Session connect latency (``direct`` only; the MQTT
            backend models its own connect jitter).
        scan_s: Fixed network-scan latency (``direct`` only).
        assoc_s: Fixed association latency (``direct`` only).
    """

    kind: str = "mqtt"
    latency_s: float = 0.0005
    loss_p: float = 0.0
    connect_s: float = 0.35
    scan_s: float = 4.29
    assoc_s: float = 1.2

    # The ``serve`` kind is the direct router with a real wire boundary
    # (every payload is codec-encoded bytes); it shares the direct
    # backend's latency/loss/entry parameters.

    def __post_init__(self) -> None:
        if self.kind not in TRANSPORT_KINDS:
            raise ConfigError(
                f"transport kind must be one of {TRANSPORT_KINDS}, got {self.kind!r}"
            )
        if self.latency_s < 0:
            raise ConfigError(f"transport latency must be >= 0, got {self.latency_s}")
        if not 0.0 <= self.loss_p < 1.0:
            raise ConfigError(f"transport loss must be in [0, 1), got {self.loss_p}")
        if self.connect_s <= 0:
            raise ConfigError(
                f"transport connect latency must be positive, got {self.connect_s}"
            )
        if self.scan_s < 0 or self.assoc_s < 0:
            raise ConfigError(
                f"scan/assoc latencies must be >= 0, got {self.scan_s}/{self.assoc_s}"
            )

    def build(self, channel: Any = None) -> Any:
        """Instantiate the :class:`~repro.transport.base.Transport`.

        Args:
            channel: The scenario's wireless channel (``mqtt`` only).
        """
        # Imported lazily, matching ProfileSpec.build: keep the spec
        # layer importable without pulling in every backend.
        if self.kind == "mqtt":
            from repro.transport.mqtt import MqttTransport

            return MqttTransport(channel)
        if self.kind == "serve":
            from repro.transport.serve import ServeTransport

            return ServeTransport(
                latency_s=self.latency_s,
                loss_p=self.loss_p,
                connect_s=self.connect_s,
                scan_s=self.scan_s,
                assoc_s=self.assoc_s,
            )
        from repro.transport.direct import DirectTransport

        return DirectTransport(
            latency_s=self.latency_s,
            loss_p=self.loss_p,
            connect_s=self.connect_s,
            scan_s=self.scan_s,
            assoc_s=self.assoc_s,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "kind": self.kind,
            "latency_s": self.latency_s,
            "loss_p": self.loss_p,
            "connect_s": self.connect_s,
            "scan_s": self.scan_s,
            "assoc_s": self.assoc_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TransportSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data,
            {"kind", "latency_s", "loss_p", "connect_s", "scan_s", "assoc_s"},
            "transport",
        )
        return cls(
            kind=data.get("kind", "mqtt"),
            latency_s=data.get("latency_s", 0.0005),
            loss_p=data.get("loss_p", 0.0),
            connect_s=data.get("connect_s", 0.35),
            scan_s=data.get("scan_s", 4.29),
            assoc_s=data.get("assoc_s", 1.2),
        )


@dataclass(frozen=True)
class ObsSpec:
    """Observability configuration for a run.

    Default **off**: a spec without an ``obs`` block builds the exact
    same world as before this layer existed (the pinned determinism
    digest depends on it — span recording never perturbs the event
    order, but the default keeps old spec files byte-identical on
    round-trip).

    Attributes:
        enabled: Master switch; off means no spans and no profiler.
        spans: Record protocol-conversation spans (when enabled).
        profile: Install the kernel wall-clock profiler (when enabled).
        sample_every: Events between profiler events/sec samples.
    """

    enabled: bool = False
    spans: bool = True
    profile: bool = True
    sample_every: int = 10_000

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ConfigError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "enabled": self.enabled,
            "spans": self.spans,
            "profile": self.profile,
            "sample_every": self.sample_every,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ObsSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data, {"enabled", "spans", "profile", "sample_every"}, "obs"
        )
        return cls(
            enabled=data.get("enabled", False),
            spans=data.get("spans", True),
            profile=data.get("profile", True),
            sample_every=data.get("sample_every", 10_000),
        )


@dataclass(frozen=True)
class LedgerSpec:
    """Ledger sync, checkpointing and pruning configuration.

    Default **off** on every axis: a spec without a ``ledger`` block
    builds the exact world that existed before this layer (the pinned
    determinism digest depends on it).

    Attributes:
        sync_enabled: Devices run the lightweight-client header sync
            (Danzi et al., arXiv:1807.07422): periodic header-batch
            requests over the control topic, offline receipt
            verification against the local header chain.
        header_batch_size: Headers requested per batch — the
            delay-vs-traffic knob of the Danzi study.
        sync_interval_s: Fixed sync period (None: derived from the
            batch size so a client keeps up with block production).
        checkpoint_interval_blocks: Commit a checkpoint every N blocks
            (0: no checkpoints).
        pruning_depth_blocks: Blocks kept behind the latest checkpoint
            (0: never prune; > 0 requires checkpointing).
    """

    sync_enabled: bool = False
    header_batch_size: int = 16
    sync_interval_s: float | None = None
    checkpoint_interval_blocks: int = 0
    pruning_depth_blocks: int = 0

    def __post_init__(self) -> None:
        if self.header_batch_size < 1:
            raise ConfigError(
                f"header batch size must be >= 1, got {self.header_batch_size}"
            )
        if self.sync_interval_s is not None and self.sync_interval_s <= 0:
            raise ConfigError(
                f"sync interval must be positive, got {self.sync_interval_s}"
            )
        if self.checkpoint_interval_blocks < 0:
            raise ConfigError(
                f"checkpoint interval must be >= 0, got {self.checkpoint_interval_blocks}"
            )
        if self.pruning_depth_blocks < 0:
            raise ConfigError(
                f"pruning depth must be >= 0, got {self.pruning_depth_blocks}"
            )
        if self.pruning_depth_blocks > 0 and self.checkpoint_interval_blocks == 0:
            raise ConfigError(
                "pruning requires checkpointing (set checkpoint_interval_blocks)"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "sync_enabled": self.sync_enabled,
            "header_batch_size": self.header_batch_size,
            "sync_interval_s": self.sync_interval_s,
            "checkpoint_interval_blocks": self.checkpoint_interval_blocks,
            "pruning_depth_blocks": self.pruning_depth_blocks,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LedgerSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data,
            {"sync_enabled", "header_batch_size", "sync_interval_s",
             "checkpoint_interval_blocks", "pruning_depth_blocks"},
            "ledger",
        )
        return cls(
            sync_enabled=data.get("sync_enabled", False),
            header_batch_size=data.get("header_batch_size", 16),
            sync_interval_s=data.get("sync_interval_s"),
            checkpoint_interval_blocks=data.get("checkpoint_interval_blocks", 0),
            pruning_depth_blocks=data.get("pruning_depth_blocks", 0),
        )


@dataclass(frozen=True)
class ShardSpec:
    """Sharded-execution configuration.

    Default **serial** (``shards=1``): a spec without a ``sharding``
    block builds and runs exactly as before this layer existed.

    Attributes:
        shards: Number of kernel shards the fleet is partitioned into.
            Each shard owns a subset of the networks (aggregator +
            devices + shard-local transport); the backhaul mesh is the
            only cross-shard boundary.
        window_s: Optional synchronization-window override.  The
            effective window is always clamped to the conservative
            lookahead (the minimum cross-shard backhaul latency), so
            this can only *shorten* windows, never break causality.
        assignment: Explicit per-shard network groups, in shard order
            (e.g. ``(("net-0", "net-2"), ("net-1",))``).  Empty means
            round-robin over the declaration order.
    """

    shards: int = 1
    window_s: float | None = None
    assignment: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigError(
                f"shard window must be positive, got {self.window_s}"
            )
        if self.assignment and len(self.assignment) != self.shards:
            raise ConfigError(
                f"assignment has {len(self.assignment)} groups for "
                f"{self.shards} shards"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "shards": self.shards,
            "window_s": self.window_s,
            "assignment": [list(group) for group in self.assignment],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(data, {"shards", "window_s", "assignment"}, "sharding")
        return cls(
            shards=data.get("shards", 1),
            window_s=data.get("window_s"),
            assignment=tuple(
                tuple(group) for group in data.get("assignment", [])
            ),
        )


@dataclass(frozen=True)
class VectorSpec:
    """Vectorized (array-backed cohort) execution configuration.

    Default **off**: a spec without a ``vector`` block builds and runs
    exactly as before this layer existed.  When on, steady-state devices
    fold into per-aggregator cohort actors (:mod:`repro.vector`) that
    execute one kernel event per tick for the whole cohort; the digest,
    counters, summaries and monitoring exports stay bit-identical to the
    scalar path on steady-state runs.  Only the ``direct`` transport is
    vectorizable — on ``mqtt`` the flag is accepted but inert.

    Attributes:
        enabled: Master switch.
        scan_interval_s: How often the fleet scans for quiescent devices
            to vectorize (and re-vectorize after a de-vectorization).
        min_cohort: Smallest device group worth folding into arrays.
        backend: ``auto`` (numpy when available), ``python`` (force the
            ``array``-module fallback — mainly for tests).
    """

    enabled: bool = False
    scan_interval_s: float = 1.0
    min_cohort: int = 2
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.scan_interval_s <= 0:
            raise ConfigError(
                f"scan interval must be positive, got {self.scan_interval_s}"
            )
        if self.min_cohort < 1:
            raise ConfigError(f"min cohort must be >= 1, got {self.min_cohort}")
        if self.backend not in ("auto", "python"):
            raise ConfigError(
                f"vector backend must be 'auto' or 'python', got {self.backend!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "enabled": self.enabled,
            "scan_interval_s": self.scan_interval_s,
            "min_cohort": self.min_cohort,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "VectorSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data, {"enabled", "scan_interval_s", "min_cohort", "backend"}, "vector"
        )
        return cls(
            enabled=data.get("enabled", False),
            scan_interval_s=data.get("scan_interval_s", 1.0),
            min_cohort=data.get("min_cohort", 2),
            backend=data.get("backend", "auto"),
        )


@dataclass(frozen=True)
class ServeSpec:
    """Serve-mode configuration: the aggregator as a networked service.

    Default **off**: a spec without a ``serve`` block builds and runs
    exactly as before this layer existed (the pinned determinism digest
    depends on it).  When enabled, ``repro.cli serve`` (or
    :class:`repro.serve.AggregatorService` directly) hosts the world
    behind a threaded HTTP server: external clients register, ingest
    batched reports, poll alerts and fetch ledger proofs over a real
    socket while the simulation kernel advances on demand.

    Attributes:
        enabled: Master switch (the CLI refuses to serve a spec whose
            block is off unless ``--force`` is given).
        host: Bind address of the HTTP server.
        port: Bind port (0: an ephemeral port, reported at startup).
        network: Name of the served network/aggregator (None: the
            spec's first network).
        step_s: Simulated seconds the kernel advances per ingestion
            step — one full aggregator duty cycle (processing latency,
            downlink, feeder tick, block flush) per batch.
        poll_timeout_s: Default long-poll timeout of ``GET /alerts``.
    """

    enabled: bool = False
    host: str = "127.0.0.1"
    port: int = 0
    network: str | None = None
    step_s: float = 1.0
    poll_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigError("serve host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"serve port must be in [0, 65535], got {self.port}")
        if self.step_s <= 0:
            raise ConfigError(f"serve step must be positive, got {self.step_s}")
        if self.poll_timeout_s < 0:
            raise ConfigError(
                f"serve poll timeout must be >= 0, got {self.poll_timeout_s}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "enabled": self.enabled,
            "host": self.host,
            "port": self.port,
            "network": self.network,
            "step_s": self.step_s,
            "poll_timeout_s": self.poll_timeout_s,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data,
            {"enabled", "host", "port", "network", "step_s", "poll_timeout_s"},
            "serve",
        )
        return cls(
            enabled=data.get("enabled", False),
            host=data.get("host", "127.0.0.1"),
            port=data.get("port", 0),
            network=data.get("network"),
            step_s=data.get("step_s", 1.0),
            poll_timeout_s=data.get("poll_timeout_s", 5.0),
        )


@dataclass(frozen=True)
class FaultSpec:
    """One named fault window.

    Attributes:
        kind: ``channel_blackout`` / ``channel_noise`` / ``broker_noise``
            / ``aggregator_crash`` / ``backhaul_partition``.
        name: Unique fault name (counters appear as
            ``fault.<name>.activations``).
        start_at: When the fault strikes.
        duration_s: Window length (None: open-ended noise).
        target: The struck component — the injector name for channel
            faults, the network name for broker/aggregator faults.
        groups: Partition groups of network names
            (``backhaul_partition`` only).
        params: Noise probabilities (``drop_p``, ``duplicate_p``,
            ``delay_p``, ``delay_s``, ``corrupt_p``) for noise kinds.
    """

    kind: str
    name: str
    start_at: float
    duration_s: float | None = None
    target: str | None = None
    groups: tuple[tuple[str, ...], ...] = ()
    params: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not self.name:
            raise ConfigError("fault name must be non-empty")
        if self.start_at < 0:
            raise ConfigError(f"fault start must be >= 0, got {self.start_at}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigError(
                f"fault duration must be positive, got {self.duration_s}"
            )
        if self.kind in ("channel_blackout", "aggregator_crash") and self.duration_s is None:
            raise ConfigError(f"{self.kind} fault {self.name!r} needs a duration")
        if self.kind == "backhaul_partition":
            if self.duration_s is None:
                raise ConfigError(f"partition fault {self.name!r} needs a duration")
            if len(self.groups) < 2:
                raise ConfigError(f"partition fault {self.name!r} needs >= 2 groups")
        if self.kind in ("broker_noise", "aggregator_crash") and not self.target:
            raise ConfigError(f"{self.kind} fault {self.name!r} needs a target")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return {
            "kind": self.kind,
            "name": self.name,
            "start_at": self.start_at,
            "duration_s": self.duration_s,
            "target": self.target,
            "groups": [list(group) for group in self.groups],
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data,
            {"kind", "name", "start_at", "duration_s", "target", "groups", "params"},
            "fault",
        )
        return cls(
            kind=data["kind"],
            name=data["name"],
            start_at=data["start_at"],
            duration_s=data.get("duration_s"),
            target=data.get("target"),
            groups=tuple(tuple(group) for group in data.get("groups", [])),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete simulation world as data.

    Attributes:
        name: Human-readable scenario name (provenance only).
        seed: Master seed for every random stream.
        t_measure_s: Reporting interval shared by devices/aggregators.
        device_retry: Whether devices run the Ack-timeout retry path.
        networks: The grid networks (one aggregator each).
        devices: The metering devices.
        mesh: Backhaul shape over the networks.
        transport: Wire backend between devices and aggregators
            (default: full-fidelity ``mqtt``, so existing specs are
            unchanged).
        faults: Deterministic fault schedule (empty: a clean world).
        obs: Observability configuration (default off — see
            :class:`ObsSpec`).
        ledger: Ledger sync / checkpoint / pruning configuration
            (default off — see :class:`LedgerSpec`).
        sharding: Sharded-execution configuration (default serial —
            see :class:`ShardSpec`).
        vector: Vectorized-execution configuration (default off — see
            :class:`VectorSpec`).
        serve: Serve-mode configuration (default off — see
            :class:`ServeSpec`).
    """

    networks: tuple[NetworkSpec, ...]
    devices: tuple[DeviceSpec, ...] = ()
    name: str = "scenario"
    seed: int = 0
    t_measure_s: float = 0.1
    device_retry: bool = True
    mesh: MeshSpec = field(default_factory=MeshSpec)
    transport: TransportSpec = field(default_factory=TransportSpec)
    faults: tuple[FaultSpec, ...] = ()
    obs: ObsSpec = field(default_factory=ObsSpec)
    ledger: LedgerSpec = field(default_factory=LedgerSpec)
    sharding: ShardSpec = field(default_factory=ShardSpec)
    vector: VectorSpec = field(default_factory=VectorSpec)
    serve: ServeSpec = field(default_factory=ServeSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigError(f"seed must be a non-negative int, got {self.seed!r}")
        if self.t_measure_s <= 0:
            raise ConfigError(f"t_measure must be positive, got {self.t_measure_s}")
        if not self.networks:
            raise ConfigError("a scenario needs at least one network")
        network_names = [n.name for n in self.networks]
        if len(set(network_names)) != len(network_names):
            raise ConfigError(f"duplicate network names in {network_names}")
        device_names = [d.name for d in self.devices]
        if len(set(device_names)) != len(device_names):
            raise ConfigError(f"duplicate device names in {device_names}")
        known = set(network_names)
        for device in self.devices:
            if device.network not in known:
                raise ConfigError(
                    f"device {device.name!r} references unknown network "
                    f"{device.network!r} (have {sorted(known)})"
                )
        for a, b in self.mesh.resolve_links(network_names):
            if a not in known or b not in known:
                raise ConfigError(f"mesh link ({a!r}, {b!r}) references unknown network")
        if self.sharding.shards > len(self.networks):
            raise ConfigError(
                f"spec has {len(self.networks)} aggregators but "
                f"{self.sharding.shards} shards requested; a shard "
                "without an aggregator would run empty"
            )
        assigned = [m for group in self.sharding.assignment for m in group]
        if len(set(assigned)) != len(assigned):
            raise ConfigError(
                f"duplicate networks in shard assignment: {assigned}"
            )
        for member in assigned:
            if member not in known:
                raise ConfigError(
                    f"shard assignment references unknown network {member!r}"
                )
        if assigned and set(assigned) != known:
            raise ConfigError(
                "shard assignment must cover every network; missing "
                f"{sorted(known - set(assigned))}"
            )
        if self.serve.network is not None and self.serve.network not in known:
            raise ConfigError(
                f"serve block references unknown network {self.serve.network!r} "
                f"(have {sorted(known)})"
            )
        fault_names = [f.name for f in self.faults]
        if len(set(fault_names)) != len(fault_names):
            raise ConfigError(f"duplicate fault names in {fault_names}")
        for fault in self.faults:
            if fault.kind in ("broker_noise", "aggregator_crash") and fault.target not in known:
                raise ConfigError(
                    f"fault {fault.name!r} targets unknown network {fault.target!r}"
                )
            for group in fault.groups:
                for member in group:
                    if member not in known:
                        raise ConfigError(
                            f"fault {fault.name!r} partitions unknown network {member!r}"
                        )

    @property
    def network_names(self) -> list[str]:
        """Network names in declaration order."""
        return [n.name for n in self.networks]

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form; :meth:`from_dict` inverts it exactly."""
        return {
            "name": self.name,
            "seed": self.seed,
            "t_measure_s": self.t_measure_s,
            "device_retry": self.device_retry,
            "networks": [n.to_dict() for n in self.networks],
            "devices": [d.to_dict() for d in self.devices],
            "mesh": self.mesh.to_dict(),
            "transport": self.transport.to_dict(),
            "faults": [f.to_dict() for f in self.faults],
            "obs": self.obs.to_dict(),
            "ledger": self.ledger.to_dict(),
            "sharding": self.sharding.to_dict(),
            "vector": self.vector.to_dict(),
            "serve": self.serve.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        _require_keys(
            data,
            {"name", "seed", "t_measure_s", "device_retry", "networks", "devices",
             "mesh", "transport", "faults", "obs", "ledger", "sharding", "vector",
             "serve"},
            "scenario",
        )
        return cls(
            name=data.get("name", "scenario"),
            seed=data.get("seed", 0),
            t_measure_s=data.get("t_measure_s", 0.1),
            device_retry=data.get("device_retry", True),
            networks=tuple(NetworkSpec.from_dict(n) for n in data.get("networks", [])),
            devices=tuple(DeviceSpec.from_dict(d) for d in data.get("devices", [])),
            mesh=MeshSpec.from_dict(data["mesh"]) if "mesh" in data else MeshSpec(),
            transport=(
                TransportSpec.from_dict(data["transport"])
                if "transport" in data
                else TransportSpec()
            ),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", [])),
            obs=ObsSpec.from_dict(data["obs"]) if "obs" in data else ObsSpec(),
            ledger=(
                LedgerSpec.from_dict(data["ledger"])
                if "ledger" in data
                else LedgerSpec()
            ),
            sharding=(
                ShardSpec.from_dict(data["sharding"])
                if "sharding" in data
                else ShardSpec()
            ),
            vector=(
                VectorSpec.from_dict(data["vector"])
                if "vector" in data
                else VectorSpec()
            ),
            serve=(
                ServeSpec.from_dict(data["serve"])
                if "serve" in data
                else ServeSpec()
            ),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a JSON document."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))
