"""Compile a :class:`~repro.runtime.spec.ScenarioSpec` into a world.

One :func:`build` function replaces the five hand-rolled scenario
builders' duplicated wiring: it creates the shared
:class:`~repro.runtime.context.SimContext`, wires grid, chain, mesh and
channel from it (so every layer emits into the same counter bank and
trace stream), adds the networks and devices the spec declares, shapes
the backhaul, and arms the spec's fault schedule on a plan that records
into the same counters.

The compilation is deterministic: the same spec yields a bit-identical
world — same ledger digest, same snapshot — every time.
"""

from __future__ import annotations

from typing import Callable

from repro.aggregator.unit import AggregatorConfig, AggregatorUnit
from repro.chain.ledger import Blockchain
from repro.chain.sync import SyncPolicy
from repro.device.stack import DeviceConfig, MeteringDevice
from repro.errors import ConfigError
from repro.faults.injectors import LinkFaultInjector, LinkFaultSpec
from repro.faults.retry import RetryPolicy
from repro.grid.topology import GridNetwork, GridTopology
from repro.hw.powerline import WireSegment
from repro.ids import AggregatorId, DeviceId
from repro.net.backhaul import BackhaulLink, BackhaulMesh
from repro.net.channel import ChannelParams, WirelessChannel
from repro.obs.session import active as _active_obs_session
from repro.runtime.context import SimContext
from repro.runtime.scenario import Scenario
from repro.runtime.spec import FaultSpec, NetworkSpec, ScenarioSpec


def _aggregator_config(spec: ScenarioSpec, network: NetworkSpec) -> AggregatorConfig:
    if network.slot_count is None:
        return AggregatorConfig(t_measure_s=spec.t_measure_s)
    return AggregatorConfig(t_measure_s=spec.t_measure_s, slot_count=network.slot_count)


def _device_config(spec: ScenarioSpec, context: SimContext) -> DeviceConfig:
    ledger_sync = (
        SyncPolicy(
            batch_size=spec.ledger.header_batch_size,
            interval_s=spec.ledger.sync_interval_s,
        )
        if spec.ledger.sync_enabled
        else None
    )
    if not spec.device_retry:
        return DeviceConfig(
            t_measure_s=spec.t_measure_s, retry=None, ledger_sync=ledger_sync
        )
    retry = context.default_retry if context.default_retry is not None else RetryPolicy()
    return DeviceConfig(
        t_measure_s=spec.t_measure_s, retry=retry, ledger_sync=ledger_sync
    )


def _channel_injector(
    scenario: Scenario, cache: dict[str, LinkFaultInjector], target: str
) -> LinkFaultInjector:
    # Environment-scale faults (a jammer, an AP power loss) install on
    # the transport so chaos schedules work on every backend.
    injector = cache.get(target)
    if injector is None:
        injector = scenario.fault_plan.make_injector(target)
        scenario.transport.set_fault_injector(injector)
        cache[target] = injector
    return injector


def _broker_injector(
    scenario: Scenario, cache: dict[str, LinkFaultInjector], target: str
) -> LinkFaultInjector:
    key = f"broker:{target}"
    injector = cache.get(key)
    if injector is None:
        injector = scenario.fault_plan.make_injector(key)
        scenario.aggregator(target).endpoint.set_fault_injector(injector)
        cache[key] = injector
    return injector


def _arm_fault(
    scenario: Scenario, fault: FaultSpec, injectors: dict[str, LinkFaultInjector]
) -> None:
    plan = scenario.fault_plan
    if fault.kind == "channel_blackout":
        injector = _channel_injector(scenario, injectors, fault.target or "radio")
        plan.link_blackout(fault.name, injector, fault.start_at, fault.duration_s)
    elif fault.kind == "channel_noise":
        injector = _channel_injector(scenario, injectors, fault.target or "radio")
        plan.link_noise(
            fault.name, injector, LinkFaultSpec(**fault.params), fault.start_at,
            fault.duration_s,
        )
    elif fault.kind == "broker_noise":
        injector = _broker_injector(scenario, injectors, fault.target)
        plan.link_noise(
            fault.name, injector, LinkFaultSpec(**fault.params), fault.start_at,
            fault.duration_s,
        )
    elif fault.kind == "aggregator_crash":
        plan.aggregator_crash(
            fault.name, scenario.aggregator(fault.target), fault.start_at,
            fault.duration_s,
        )
    elif fault.kind == "backhaul_partition":
        groups = [{AggregatorId(member) for member in group} for group in fault.groups]
        plan.backhaul_partition(
            fault.name, scenario.mesh, groups, fault.start_at, fault.duration_s
        )
    else:  # pragma: no cover - spec validation rejects unknown kinds
        raise ConfigError(f"unknown fault kind {fault.kind!r}")


def add_network(
    scenario: Scenario,
    name: str,
    aggregator_config: AggregatorConfig,
    supply_voltage_v: float,
    segment: WireSegment,
) -> AggregatorUnit:
    """Wire one grid network + aggregator into ``scenario`` and start it."""
    aggregator_id = AggregatorId(name)
    network = GridNetwork(
        aggregator_id,
        supply_voltage_v=supply_voltage_v,
        default_segment=segment,
    )
    scenario.grid.add_network(network)
    unit = AggregatorUnit(
        scenario.context if scenario.context is not None else scenario.simulator,
        aggregator_id,
        scenario.chain,
        scenario.mesh,
        network,
        aggregator_config,
        transport=scenario.transport,
    )
    scenario.aggregators[name] = unit
    unit.start()
    return unit


def add_device(
    scenario: Scenario,
    name: str,
    profile,
    device_config: DeviceConfig,
) -> MeteringDevice:
    """Wire one metering device into ``scenario`` (no network entry)."""
    device = MeteringDevice(
        scenario.context if scenario.context is not None else scenario.simulator,
        DeviceId(name),
        device_config,
        scenario.grid,
        scenario.transport if scenario.transport is not None else scenario.channel,
        profile,
    )
    scenario.devices[name] = device
    return device


def build_partial(
    spec: ScenarioSpec,
    *,
    context: SimContext,
    mesh: BackhaulMesh | None = None,
    chain: Blockchain | None = None,
    networks: set[str] | None = None,
    fault_filter: "Callable[[FaultSpec], bool] | None" = None,
    device_config: DeviceConfig | None = None,
    aggregator_config: AggregatorConfig | None = None,
    segment: WireSegment | None = None,
) -> Scenario:
    """Wire ``spec`` (or a network subset of it) into a :class:`Scenario`.

    The partitioning workhorse behind both :func:`build` (full world,
    default mesh/chain) and the shard engine (one shard's networks and
    devices on a per-shard kernel, a
    :class:`~repro.shard.proxy.ShardBackhaulProxy` as the mesh and a
    recording chain).

    Args:
        spec: The declarative world description.
        context: The context whose kernel/counters everything hangs off.
        mesh: Backhaul to wire instead of a fresh :class:`BackhaulMesh`.
            When ``networks`` is a strict subset, the mesh must accept
            links to the off-subset aggregators (the shard proxy does —
            the full topology graph lives on every shard so latency
            lookups see the same paths as the serial mesh).
        chain: Ledger to use instead of a fresh :class:`Blockchain`
            configured from ``spec.ledger``.
        networks: Subset of network names to instantiate (declaration
            order is preserved); devices follow their home network, and
            mesh links are wired for the *full* spec topology.  ``None``
            wires everything.
        fault_filter: Predicate selecting which spec faults to arm
            (``None`` arms all); the shard engine keeps environment and
            partition faults everywhere but crash/broker faults only on
            the shard owning their target.
        device_config / aggregator_config / segment: Per-object config
            overrides, as on :func:`build`.
    """
    ctx = context
    channel = (
        WirelessChannel(ChannelParams(), ctx.stream("channel"), counters=ctx.counters)
        if spec.transport.kind == "mqtt"
        else None
    )
    if chain is None:
        chain = Blockchain(
            authorized=set(),
            counters=ctx.counters,
            checkpoint_interval=spec.ledger.checkpoint_interval_blocks or None,
            pruning_depth=(
                spec.ledger.pruning_depth_blocks
                if spec.ledger.pruning_depth_blocks > 0
                else None
            ),
        )
    scenario = Scenario(
        simulator=ctx.simulator,
        grid=GridTopology(),
        chain=chain,
        mesh=mesh if mesh is not None else BackhaulMesh(ctx),
        channel=channel,
        transport=spec.transport.build(channel),
        context=ctx,
        spec=spec,
        master_seed=ctx.master_seed,
    )
    dev_config = device_config if device_config is not None else _device_config(spec, ctx)
    local = set(spec.network_names) if networks is None else set(networks)

    for network in spec.networks:
        if network.name not in local:
            continue
        agg_config = (
            aggregator_config
            if aggregator_config is not None
            else _aggregator_config(spec, network)
        )
        wire = (
            segment
            if segment is not None
            else WireSegment(
                resistance_ohms=network.wire_resistance_ohms,
                leakage_ma=network.wire_leakage_ma,
            )
        )
        add_network(scenario, network.name, agg_config, network.supply_voltage_v, wire)

    for a, b in spec.mesh.resolve_links(spec.network_names):
        scenario.mesh.connect(
            BackhaulLink(AggregatorId(a), AggregatorId(b), latency_s=spec.mesh.latency_s)
        )

    for device in spec.devices:
        if device.network not in local:
            continue
        add_device(scenario, device.name, device.profile.build(), dev_config)
        if device.enter_at is not None:
            scenario.enter_at(device.name, device.network, device.enter_at, device.distance_m)

    armed = [
        fault
        for fault in spec.faults
        if fault_filter is None or fault_filter(fault)
    ]
    if armed:
        scenario.fault_plan = ctx.new_fault_plan()
        injectors: dict[str, LinkFaultInjector] = {}
        for fault in armed:
            _arm_fault(scenario, fault, injectors)
    if spec.vector.enabled and spec.transport.kind == "direct":
        # Imported lazily so worlds that never vectorize don't pay for
        # the numpy probe at import time.
        from repro.vector.fleet import VectorFleet

        scenario.vector_fleets.append(VectorFleet(scenario, spec.vector))
    return scenario


def build(
    spec: ScenarioSpec,
    *,
    device_config: DeviceConfig | None = None,
    aggregator_config: AggregatorConfig | None = None,
    segment: WireSegment | None = None,
    context: SimContext | None = None,
) -> Scenario:
    """Compile ``spec`` into a fully wired :class:`Scenario`.

    Args:
        spec: The declarative world description.
        device_config: Override every device's config (ablations pass
            non-serializable configs here; the spec still records the
            world shape).
        aggregator_config: Override every aggregator's config.
        segment: Override every network's default wire segment.
        context: Run inside an existing context (sharing its kernel and
            counter bank) instead of creating one from ``spec.seed``.

    Returns:
        The wired scenario, carrying the context, the originating spec
        and the master seed as provenance; when the spec schedules
        faults, ``scenario.fault_plan`` is armed and records into the
        shared counter bank.
    """
    session = _active_obs_session()
    if context is not None:
        ctx = context
    else:
        # The spec's own obs block wins; otherwise an active capture
        # session (the CLI's --obs-dir, sweep workers) force-enables
        # observability without rewriting every spec in flight.
        obs = spec.obs
        if not obs.enabled and session is not None:
            obs = session.obs
        ctx = SimContext.create(seed=spec.seed, obs=obs)
    scenario = build_partial(
        spec,
        context=ctx,
        device_config=device_config,
        aggregator_config=aggregator_config,
        segment=segment,
    )
    if session is not None:
        session.register(scenario)
    return scenario
