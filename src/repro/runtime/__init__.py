"""Runtime layer: the shared simulation context and declarative specs.

* :mod:`repro.runtime.context` — :class:`SimContext`, the one object
  bundling kernel, clock, random streams, trace recorder, a shared
  counter bank and fault/retry hooks that every layer constructs from,
* :mod:`repro.runtime.spec` — :class:`ScenarioSpec` and friends: a
  simulation world as JSON-round-trippable data,
* :mod:`repro.runtime.build` — the single :func:`build` compiler from
  spec to wired world,
* :mod:`repro.runtime.scenario` — :class:`Scenario`, the wired world
  the experiment harnesses drive.
"""

from repro.runtime.build import add_device, add_network, build, build_partial
from repro.runtime.context import SimContext, coerce_context
from repro.runtime.scenario import Scenario
from repro.runtime.spec import (
    DeviceSpec,
    FaultSpec,
    LedgerSpec,
    MeshSpec,
    NetworkSpec,
    ObsSpec,
    ProfileSpec,
    ScenarioSpec,
    ServeSpec,
    ShardSpec,
    TransportSpec,
)

__all__ = [
    "SimContext",
    "coerce_context",
    "Scenario",
    "ScenarioSpec",
    "NetworkSpec",
    "DeviceSpec",
    "ProfileSpec",
    "MeshSpec",
    "FaultSpec",
    "LedgerSpec",
    "TransportSpec",
    "ObsSpec",
    "ShardSpec",
    "ServeSpec",
    "build",
    "build_partial",
    "add_network",
    "add_device",
]
