"""The shared simulation runtime context.

A :class:`SimContext` is the one object every layer of a wired world
hangs off: the discrete-event :class:`~repro.sim.kernel.Simulator`
(which owns the clock, the named random streams and the trace
recorder), a shared :class:`~repro.monitoring.counters.CounterBank`
that all layers emit into, and optional fault/retry hooks.

Before the context existed, each component took a bare ``Simulator``
and grew its own private counters; a chaos run then had to stitch four
observability surfaces together by hand.  Constructing components from
one context instead means a single ``counters.snapshot()`` shows the
whole world — device retries next to mesh drops next to fault
activations — and a single trace stream orders them.

Every :class:`~repro.sim.process.Process` accepts either a bare
``Simulator`` (it wraps one in a private context — the legacy path) or
a ``SimContext`` (shared observability — what
:func:`repro.runtime.build.build` does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.monitoring.counters import CounterBank
from repro.obs.profiler import KernelProfiler
from repro.runtime.spec import ObsSpec
from repro.sim.kernel import PeriodicTask, Simulator

if TYPE_CHECKING:
    from repro.sim.clock import SimClock
    from repro.sim.events import Event
    from repro.sim.rng import RngStreams
    from repro.sim.tracing import TraceRecorder


@dataclass
class SimContext:
    """Bundle of kernel, shared counters and fault/retry hooks.

    Attributes:
        simulator: The discrete-event kernel (clock, rng, tracing).
        counters: Counter bank shared by every layer built from this
            context; fault plans attached via :meth:`new_fault_plan`
            record into it too.
        fault_plan: The chaos schedule driving this world, when one is
            attached (:meth:`new_fault_plan` sets it).
        default_retry: Retry/backoff policy components may fall back to
            when their own config leaves it unspecified.
    """

    simulator: Simulator
    counters: CounterBank = field(default_factory=CounterBank)
    fault_plan: FaultPlan | None = None
    default_retry: RetryPolicy | None = None

    @classmethod
    def create(
        cls,
        seed: int = 0,
        trace: bool = True,
        trace_categories: list[str] | None = None,
        obs: ObsSpec | None = None,
    ) -> "SimContext":
        """Fresh context on a fresh kernel seeded with ``seed``.

        ``obs`` (when enabled) turns on span recording and installs the
        kernel profiler; ``None`` or a disabled spec costs nothing.
        """
        enabled = obs is not None and obs.enabled
        simulator = Simulator(
            seed=seed,
            trace=trace,
            trace_categories=trace_categories,
            spans=enabled and obs.spans,
        )
        if enabled and obs.profile:
            simulator.set_profiler(KernelProfiler(sample_every=obs.sample_every))
        return cls(simulator)

    # -- kernel passthrough ----------------------------------------------

    @property
    def clock(self) -> "SimClock":
        """The kernel's clock."""
        return self.simulator.clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.simulator.now

    @property
    def rng(self) -> "RngStreams":
        """The kernel's named random streams."""
        return self.simulator.rng

    @property
    def tracer(self) -> "TraceRecorder":
        """The kernel's trace recorder (one stream for every layer)."""
        return self.simulator.trace

    @property
    def master_seed(self) -> int:
        """The seed every random stream derives from."""
        return self.simulator.rng.master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Named random stream from the kernel."""
        return self.simulator.rng.stream(name)

    def schedule(
        self, at: float, callback: Callable[[], Any], priority: int = 0, label: str = ""
    ) -> "Event":
        """Schedule ``callback`` at absolute time ``at``."""
        return self.simulator.schedule(at, callback, priority=priority, label=label)

    def call_later(
        self, delay: float, callback: Callable[[], Any], priority: int = 0, label: str = ""
    ) -> "Event":
        """Schedule ``callback`` at ``now + delay``."""
        return self.simulator.call_later(delay, callback, priority=priority, label=label)

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        first_at: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> PeriodicTask:
        """Create and start a periodic task on the kernel."""
        return self.simulator.every(
            interval, callback, first_at=first_at, priority=priority, label=label
        )

    def run_until(self, end_time: float) -> None:
        """Advance the world to ``end_time``."""
        self.simulator.run_until(end_time)

    # -- fault hooks -----------------------------------------------------

    def new_fault_plan(self) -> FaultPlan:
        """Attach (and return) a fault plan recording into this context.

        The plan shares this context's counter bank, so fault
        activations land in the same snapshot as the retry/drop
        counters of the layers they perturb.  Subsequent calls return
        the already-attached plan.
        """
        if self.fault_plan is None:
            self.fault_plan = FaultPlan(self.simulator, counters=self.counters)
        return self.fault_plan


def coerce_context(runtime: "Simulator | SimContext") -> SimContext:
    """Normalize a ``Simulator | SimContext`` argument to a context.

    A bare simulator gets a private context (own counter bank) — the
    legacy construction path used by unit tests and ad-hoc rigs.
    """
    if isinstance(runtime, SimContext):
        return runtime
    if isinstance(runtime, Simulator):
        return SimContext(runtime)
    raise TypeError(
        f"expected Simulator or SimContext, got {type(runtime).__name__}"
    )
