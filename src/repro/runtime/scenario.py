"""The fully wired simulation world.

:class:`Scenario` is what the experiment harnesses talk to: the kernel,
the grid, the chain, the mesh, the channel, and the named aggregators
and devices — plus provenance (the master seed and, when built from a
:class:`~repro.runtime.spec.ScenarioSpec`, the originating spec) so any
run can be reproduced from its own :meth:`snapshot`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.aggregator.unit import AggregatorUnit
from repro.chain.ledger import Blockchain
from repro.device.stack import MeteringDevice
from repro.errors import ConfigError
from repro.grid.topology import GridTopology
from repro.monitoring.export import series_to_csv
from repro.net.backhaul import BackhaulMesh
from repro.net.channel import WirelessChannel
from repro.runtime.context import SimContext
from repro.runtime.spec import ScenarioSpec
from repro.sim.kernel import Simulator
from repro.transport.base import Transport

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.monitoring.counters import CounterBank
    from repro.workloads.mobility import MobilityTrace

# Series names become file names on export; everything outside this set
# is replaced so exports work on any filesystem.
_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]")


@dataclass
class Scenario:
    """A fully wired simulation world.

    Attributes map one-to-one onto the architecture of Fig. 1; the
    experiment harnesses only ever talk to a Scenario.  ``channel`` is
    ``None`` when the world runs on a radio-less transport backend
    (``transport: direct``); ``transport`` carries the wire backend the
    devices and aggregators were wired with.
    """

    simulator: Simulator
    grid: GridTopology
    chain: Blockchain
    mesh: BackhaulMesh
    channel: WirelessChannel | None
    aggregators: dict[str, AggregatorUnit] = field(default_factory=dict)
    devices: dict[str, MeteringDevice] = field(default_factory=dict)
    transport: Transport | None = None
    context: SimContext | None = None
    spec: ScenarioSpec | None = None
    master_seed: int = 0
    fault_plan: "FaultPlan | None" = None
    # VectorFleet instances when vectorized execution is enabled (one
    # per scenario today; a list so shard engines can iterate blindly).
    vector_fleets: list = field(default_factory=list)

    @property
    def counters(self) -> "CounterBank | None":
        """The shared counter bank every layer emits into (via context)."""
        return self.context.counters if self.context is not None else None

    def aggregator(self, name: str) -> AggregatorUnit:
        """Aggregator by name, with a helpful error."""
        unit = self.aggregators.get(name)
        if unit is None:
            raise ConfigError(f"no aggregator named {name!r} (have {list(self.aggregators)})")
        return unit

    def device(self, name: str) -> MeteringDevice:
        """Device by name, with a helpful error."""
        dev = self.devices.get(name)
        if dev is None:
            raise ConfigError(f"no device named {name!r} (have {list(self.devices)})")
        return dev

    def schedule_mobility(self, device_name: str, trace: "MobilityTrace") -> None:
        """Arm a mobility itinerary for one device."""
        # Imported lazily: repro.workloads imports repro.runtime at
        # module level, so the reverse edge must resolve at call time.
        from repro.workloads.mobility import MobilityDriver

        driver = MobilityDriver(self.simulator, self.device(device_name), self.aggregators)
        driver.schedule(trace)

    def enter_at(self, device_name: str, network: str, at_time: float, distance_m: float = 5.0) -> None:
        """Schedule a single network entry."""
        device = self.device(device_name)
        unit = self.aggregator(network)
        self.simulator.schedule(
            at_time,
            lambda: device.enter_network(unit, distance_m),
            label=f"{device_name}:enter:{network}",
        )

    def run_until(self, end_time: float) -> None:
        """Advance the world to ``end_time``."""
        self.simulator.run_until(end_time)

    def summary(self) -> dict:
        """Quick run snapshot: ledger, per-device and per-network counters."""
        return {
            "time": self.simulator.now,
            "chain_height": self.chain.height,
            "total_energy_mwh": self.chain.total_energy_mwh(),
            "devices": {
                name: {
                    "phase": device.fsm.phase.value,
                    "reports_sent": device.reports_sent,
                    "acked": device.acked_count,
                    "buffered_pending": device.store.pending,
                    "energy_mwh": device.meter.total_energy_mwh,
                }
                for name, device in self.devices.items()
            },
            "aggregators": {
                name: {
                    "members": unit.registry.member_count,
                    "acks": unit.acks_sent,
                    "nacks": unit.nacks_sent,
                    "blocks": unit.writer.blocks_written,
                    "network_anomalies": unit.verifier.stats.network_anomalies,
                }
                for name, unit in self.aggregators.items()
            },
        }

    def snapshot(self) -> dict:
        """The :meth:`summary` plus full reproducibility provenance.

        Includes the master seed, the originating spec (when the world
        was compiled from one), the ledger digest, the shared counter
        bank and the fault schedule — everything needed to replay or
        compare this run.
        """
        return {
            "master_seed": self.master_seed,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "ledger_digest": self.chain.tip_hash,
            "counters": self.counters.snapshot() if self.counters is not None else {},
            "faults": self.fault_plan.describe() if self.fault_plan is not None else [],
            **self.summary(),
        }

    def write_obs_artifacts(self, directory) -> dict[str, Path]:
        """Write this run's observability artifacts to ``directory``.

        Emits the self-contained ``repro-obs/1`` layout (``spans.jsonl``,
        ``metrics.prom``, ``metrics.jsonl``, ``profile.json``,
        ``manifest.json``) and returns the written paths by file name;
        works whether or not the run had obs enabled — a disabled run
        just yields empty spans and a disabled profile.
        """
        from repro.obs.artifacts import collect_scenario, write_artifacts

        return write_artifacts(directory, [collect_scenario(self)])

    def export_monitoring(self, directory) -> list:
        """Write every aggregator's recorded series as CSV files.

        Returns the written paths; files are named
        ``<aggregator>__<series>.csv`` with filesystem-unsafe
        characters in the series name replaced by ``_``.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written = []
        for name, unit in self.aggregators.items():
            for series_name in unit.monitoring.names:
                safe = _UNSAFE_CHARS.sub("_", series_name)
                path = target / f"{name}__{safe}.csv"
                path.write_text(series_to_csv(unit.monitoring[series_name]))
                written.append(path)
        return written
