"""Drive one scenario as N kernel shards.

:func:`run_sharded` is the entry point behind the CLI's ``--shards``:
it partitions the spec (:mod:`repro.shard.partition`), builds one
:class:`~repro.shard.engine.ShardEngine` per shard, runs them in
conservative lockstep windows exchanging backhaul outboxes at each
barrier, and merges the per-shard results back into the serial view
(:mod:`repro.shard.merge`).

Execution modes:

* ``shards == 1`` — *the* serial path: one :func:`~repro.runtime.build`
  world on one kernel, no windows, no proxies.
* in-process — every engine lives in this process and windows run
  round-robin.  Deterministic, zero IPC, and the mode that measures
  per-shard compute cleanly on any machine; the default on a single
  CPU.
* multi-process — one worker process per shard, window batches crossing
  :class:`multiprocessing.Pipe`, the parent acting as the barrier and
  router.  The default when the machine has CPUs to spare.

All modes produce byte-identical merged output for the same plan; the
mode only decides where the compute happens.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.chain.ledger import Blockchain
from repro.errors import ConfigError, ExperimentError
from repro.monitoring.export import series_to_csv
from repro.monitoring.timeseries import SeriesBank
from repro.parallel import available_cpus
from repro.runtime.build import build
from repro.runtime.context import SimContext
from repro.runtime.scenario import _UNSAFE_CHARS
from repro.runtime.spec import ObsSpec, ScenarioSpec
from repro.shard.engine import ShardEngine, ShardResult
from repro.shard.merge import (
    merge_aggregator_series,
    merge_chain_ops,
    merge_counter_snapshots,
    merge_summaries,
)
from repro.shard.partition import ShardPlan, partition
from repro.shard.plane import RemoteMessage


def _boundaries(window_s: float | None, until: float) -> Iterator[float]:
    """Window right edges up to and including ``until``.

    Boundary ``k`` is computed as ``k * window_s`` (never accumulated),
    so every shard — and the parent router — sees bit-identical floats.
    """
    if window_s is None or window_s >= until:
        yield until
        return
    k = 1
    while True:
        boundary = k * window_s
        if boundary >= until:
            yield until
            return
        yield boundary
        k += 1


def _route(
    outboxes: list[list[RemoteMessage]], plan: ShardPlan
) -> list[list[RemoteMessage]]:
    """Sort one window's outboxes into per-destination-shard inboxes."""
    inbound: list[list[RemoteMessage]] = [[] for _ in plan.groups]
    for outbox in outboxes:
        for message in outbox:
            inbound[plan.shard_of(message.destination.name)].append(message)
    return inbound


@dataclass
class ShardedRun:
    """The merged result of a sharded (or serial) run.

    Mirrors the read API experiment code uses on
    :class:`~repro.runtime.scenario.Scenario` — ``summary()``,
    ``snapshot()``, ``export_monitoring()``, ``ledger_digest`` — plus
    the sharding provenance (plan, per-shard event counts and busy
    times) the benchmark reads.
    """

    spec: ScenarioSpec
    until: float
    mode: str
    groups: tuple[tuple[str, ...], ...]
    window_s: float | None
    chain: Blockchain
    counters: dict[str, int]
    monitoring: dict[str, SeriesBank]
    devices: dict[str, dict[str, Any]]
    aggregators: dict[str, dict[str, Any]]
    shard_events: list[int]
    shard_busy_s: list[float]
    wall_s: float
    faults: list[dict[str, Any]]

    @property
    def shards(self) -> int:
        """Number of shards the run used."""
        return len(self.groups)

    @property
    def master_seed(self) -> int:
        """The seed every shard derived its streams from."""
        return self.spec.seed

    @property
    def ledger_digest(self) -> str:
        """Tip hash of the merged chain — the determinism fingerprint."""
        return self.chain.tip_hash

    @property
    def events_executed(self) -> int:
        """Total kernel events across all shards."""
        return sum(self.shard_events)

    def summary(self) -> dict[str, Any]:
        """Same shape as :meth:`Scenario.summary`."""
        return {
            "time": self.until,
            "chain_height": self.chain.height,
            "total_energy_mwh": self.chain.total_energy_mwh(),
            "devices": dict(self.devices),
            "aggregators": dict(self.aggregators),
        }

    def snapshot(self) -> dict[str, Any]:
        """Same shape as :meth:`Scenario.snapshot`, plus a ``sharding`` block."""
        return {
            "master_seed": self.master_seed,
            "spec": self.spec.to_dict(),
            "ledger_digest": self.ledger_digest,
            "counters": dict(self.counters),
            "faults": list(self.faults),
            **self.summary(),
            "sharding": {
                "mode": self.mode,
                "shards": self.shards,
                "window_s": self.window_s,
                "groups": [list(group) for group in self.groups],
                "events_per_shard": list(self.shard_events),
                "busy_s_per_shard": [round(b, 6) for b in self.shard_busy_s],
                "wall_s": round(self.wall_s, 6),
            },
        }

    def export_monitoring(self, directory) -> list[Path]:
        """Write per-aggregator series CSVs, byte-identical to
        :meth:`Scenario.export_monitoring` on the serial run."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written = []
        for name, bank in self.monitoring.items():
            for series_name in bank.names:
                safe = _UNSAFE_CHARS.sub("_", series_name)
                path = target / f"{name}__{safe}.csv"
                path.write_text(series_to_csv(bank[series_name]))
                written.append(path)
        return written


def _resolve_obs(spec: ScenarioSpec, obs_dir) -> ObsSpec:
    # Mirrors the CLI capture-session behavior: an --obs-dir request
    # force-enables observability without rewriting the spec.
    if obs_dir is not None and not spec.obs.enabled:
        return ObsSpec(enabled=True)
    return spec.obs


def _run_serial(
    spec: ScenarioSpec, until: float, trace: bool, obs_dir
) -> ShardedRun:
    """``--shards 1``: exactly today's serial path, wrapped."""
    ctx = SimContext.create(seed=spec.seed, trace=trace, obs=_resolve_obs(spec, obs_dir))
    scenario = build(spec, context=ctx)
    start = time.perf_counter()
    scenario.run_until(until)
    elapsed = time.perf_counter() - start
    if obs_dir is not None:
        scenario.write_obs_artifacts(obs_dir)
    summary = scenario.summary()
    return ShardedRun(
        spec=spec,
        until=until,
        mode="serial",
        groups=(tuple(spec.network_names),),
        window_s=None,
        chain=scenario.chain,
        counters=(
            dict(scenario.counters.snapshot())
            if scenario.counters is not None
            else {}
        ),
        monitoring={
            name: unit.monitoring for name, unit in scenario.aggregators.items()
        },
        devices=summary["devices"],
        aggregators=summary["aggregators"],
        shard_events=[scenario.simulator.events_executed],
        shard_busy_s=[elapsed],
        wall_s=elapsed,
        faults=(
            scenario.fault_plan.describe() if scenario.fault_plan is not None else []
        ),
    )


def _merge_results(
    spec: ScenarioSpec,
    until: float,
    mode: str,
    plan: ShardPlan,
    results: list[ShardResult],
    wall_s: float,
) -> ShardedRun:
    chain = merge_chain_ops(
        [result.chain_ops for result in results],
        spec.network_names,
        ledger=spec.ledger,
    )
    counters = merge_counter_snapshots(result.counters for result in results)
    monitoring = merge_aggregator_series([result.series for result in results])
    devices = merge_summaries(result.devices_summary for result in results)
    aggregators = merge_summaries(result.aggregators_summary for result in results)
    # Spec declaration order, matching the serial world's dict order.
    return ShardedRun(
        spec=spec,
        until=until,
        mode=mode,
        groups=plan.groups,
        window_s=plan.window_s,
        chain=chain,
        counters=counters,
        monitoring={
            name: monitoring[name] for name in spec.network_names if name in monitoring
        },
        devices={d.name: devices[d.name] for d in spec.devices if d.name in devices},
        aggregators={
            name: aggregators[name]
            for name in spec.network_names
            if name in aggregators
        },
        shard_events=[result.events_executed for result in results],
        shard_busy_s=[result.busy_s for result in results],
        wall_s=wall_s,
        faults=[],
    )


def _run_in_process(
    spec: ScenarioSpec,
    until: float,
    plan: ShardPlan,
    trace: bool,
    obs_dir,
) -> ShardedRun:
    obs_spec = _resolve_obs(spec, obs_dir)
    engines = [
        ShardEngine(spec, plan, index, trace=trace, obs=obs_spec)
        for index in range(plan.shards)
    ]
    busy = [0.0] * plan.shards
    start = time.perf_counter()
    for boundary in _boundaries(plan.window_s, until):
        outboxes = []
        for index, engine in enumerate(engines):
            t0 = time.perf_counter()
            outboxes.append(engine.run_window(boundary))
            busy[index] += time.perf_counter() - t0
        for index, inbox in enumerate(_route(outboxes, plan)):
            if inbox:
                t0 = time.perf_counter()
                engines[index].absorb(inbox)
                busy[index] += time.perf_counter() - t0
    for index, engine in enumerate(engines):
        t0 = time.perf_counter()
        engine.finish(until)
        busy[index] += time.perf_counter() - t0
    wall = time.perf_counter() - start
    if obs_dir is not None:
        shard_dirs = []
        for index, engine in enumerate(engines):
            shard_dir = Path(obs_dir) / f"shard-{index:04d}"
            engine.write_obs_artifacts(shard_dir)
            shard_dirs.append(shard_dir)
        _merge_obs(shard_dirs, obs_dir)
    results = [engine.result(busy[index]) for index, engine in enumerate(engines)]
    return _merge_results(spec, until, "in-process", plan, results, wall)


def _merge_obs(shard_dirs: list[Path], out_dir) -> None:
    from repro.obs.artifacts import merge_artifact_dirs

    merge_artifact_dirs([str(path) for path in shard_dirs], str(out_dir))


def _shard_worker(
    conn,
    spec_data: dict,
    groups: tuple[tuple[str, ...], ...],
    window_s: float | None,
    index: int,
    until: float,
    trace: bool,
    obs_spec_data: dict | None,
    obs_dir: str | None,
) -> None:
    """Run one shard in a worker process (module-level for picklability).

    Protocol, in lockstep with the parent's router loop: for every
    window boundary send the drained outbox, receive the routed inbox;
    after the final window, send the :class:`ShardResult`.
    """
    try:
        spec = ScenarioSpec.from_dict(spec_data)
        plan = ShardPlan(
            groups=tuple(tuple(group) for group in groups), window_s=window_s
        )
        obs_spec = (
            ObsSpec.from_dict(obs_spec_data) if obs_spec_data is not None else None
        )
        engine = ShardEngine(spec, plan, index, trace=trace, obs=obs_spec)
        busy = 0.0
        for boundary in _boundaries(window_s, until):
            # process_time: this worker's own CPU, immune to the other
            # shards' time-slicing on an oversubscribed machine.
            t0 = time.process_time()
            outbox = engine.run_window(boundary)
            busy += time.process_time() - t0
            conn.send(outbox)
            inbox = conn.recv()
            if inbox:
                t0 = time.process_time()
                engine.absorb(inbox)
                busy += time.process_time() - t0
        t0 = time.process_time()
        engine.finish(until)
        busy += time.process_time() - t0
        if obs_dir is not None:
            engine.write_obs_artifacts(obs_dir)
        conn.send(engine.result(busy))
    except BaseException as exc:  # surface the failure to the parent
        conn.send(ExperimentError(f"shard {index} failed: {exc!r}"))
        raise
    finally:
        conn.close()


def _run_processes(
    spec: ScenarioSpec,
    until: float,
    plan: ShardPlan,
    trace: bool,
    obs_dir,
) -> ShardedRun:
    obs_spec = _resolve_obs(spec, obs_dir)
    obs_spec_data = obs_spec.to_dict() if obs_spec.enabled else None
    spec_data = spec.to_dict()
    mp = multiprocessing.get_context()
    connections = []
    workers = []
    shard_dirs: list[Path] = []
    start = time.perf_counter()
    try:
        for index in range(plan.shards):
            shard_dir = (
                Path(obs_dir) / f"shard-{index:04d}" if obs_dir is not None else None
            )
            if shard_dir is not None:
                shard_dirs.append(shard_dir)
            parent_conn, child_conn = mp.Pipe()
            worker = mp.Process(
                target=_shard_worker,
                args=(
                    child_conn,
                    spec_data,
                    plan.groups,
                    plan.window_s,
                    index,
                    until,
                    trace,
                    obs_spec_data,
                    str(shard_dir) if shard_dir is not None else None,
                ),
                name=f"repro-shard-{index}",
            )
            worker.start()
            child_conn.close()
            connections.append(parent_conn)
            workers.append(worker)

        def receive(index: int) -> Any:
            try:
                payload = connections[index].recv()
            except EOFError as exc:
                raise ExperimentError(
                    f"shard {index} worker died without a result"
                ) from exc
            if isinstance(payload, Exception):
                raise payload
            return payload

        for _boundary in _boundaries(plan.window_s, until):
            outboxes = [receive(index) for index in range(plan.shards)]
            for index, inbox in enumerate(_route(outboxes, plan)):
                connections[index].send(inbox)
        results = [receive(index) for index in range(plan.shards)]
    finally:
        for connection in connections:
            connection.close()
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()
                worker.join()
    wall = time.perf_counter() - start
    if obs_dir is not None:
        _merge_obs(shard_dirs, obs_dir)
    return _merge_results(spec, until, "processes", plan, results, wall)


def run_sharded(
    spec: ScenarioSpec,
    until: float,
    shards: int | str | None = None,
    *,
    assignment: tuple[tuple[str, ...], ...] | None = None,
    window_s: float | None = None,
    processes: bool | None = None,
    trace: bool = True,
    obs_dir=None,
) -> ShardedRun:
    """Run ``spec`` to ``until`` across ``shards`` kernel shards.

    Args:
        spec: The world to run.
        until: End time (inclusive, serial ``run_until`` semantics).
        shards: Shard count; ``None`` takes ``spec.sharding.shards``,
            ``"auto"`` takes ``min(available CPUs, aggregator count)``.
        assignment: Explicit per-shard network groups (defaults to the
            spec's, else round-robin).
        window_s: Requested sync window (clamped to the conservative
            lookahead).
        processes: Run shards in worker processes.  ``None`` decides by
            CPU budget — workers when more than one CPU is available,
            in-process otherwise.  Output is identical either way.
        trace: Whether shard kernels record traces.
        obs_dir: Write (merged) observability artifacts here.

    The ``direct`` transport is required for ``shards > 1``: the mqtt
    backend's shared wireless channel draws shadowing/loss from one
    global random stream in event order, which no partitioning can
    reproduce; the direct backend uses per-device streams.
    """
    if shards == "auto":
        shards = min(available_cpus(), len(spec.network_names))
    if shards is None:
        shards = spec.sharding.shards
    if shards == 1:
        return _run_serial(spec, until, trace, obs_dir)
    if spec.transport.kind != "direct":
        raise ConfigError(
            f"sharded execution requires transport 'direct', got "
            f"{spec.transport.kind!r}: the shared wireless channel stream "
            "cannot be partitioned deterministically"
        )
    plan = partition(spec, shards, assignment=assignment, window_s=window_s)
    if processes is None:
        processes = available_cpus() > 1
    if processes:
        return _run_processes(spec, until, plan, trace, obs_dir)
    return _run_in_process(spec, until, plan, trace, obs_dir)
