"""Sharded multi-process simulation.

Partitions a :class:`~repro.runtime.spec.ScenarioSpec`'s fleet across
kernel shards — each shard owns a subset of the networks (aggregator,
its devices, a shard-local transport) on its own
:class:`~repro.sim.kernel.Simulator` — and synchronizes them with a
conservative time-window barrier derived from the minimum cross-shard
backhaul latency.  The backhaul mesh is the only cross-shard boundary.

* :mod:`repro.shard.partition` — :func:`partition` and the resulting
  :class:`ShardPlan` (network groups + conservative window),
* :mod:`repro.shard.plane` — the picklable cross-shard message records,
* :mod:`repro.shard.proxy` — :class:`ShardBackhaulProxy`, the per-shard
  mesh that routes remote traffic into an outbox,
* :mod:`repro.shard.engine` — :class:`ShardEngine`, one shard's wired
  world plus its window/absorb/finish drive API,
* :mod:`repro.shard.merge` — deterministic merge of per-shard chains,
  counters and monitoring series back into the serial view,
* :mod:`repro.shard.runner` — :func:`run_sharded`, the in-process and
  multi-process orchestrators behind the CLI's ``--shards``.

Determinism contract: for any shard count, noise-free fault set and the
``direct`` transport, the merged ledger digest, counters and monitoring
exports are byte-identical to the serial run (``--shards 1`` *is* the
serial path).
"""

from repro.shard.engine import ShardEngine, ShardResult
from repro.shard.merge import (
    merge_aggregator_series,
    merge_chain_ops,
    merge_counter_snapshots,
    merge_series_parts,
)
from repro.shard.partition import ShardPlan, partition
from repro.shard.plane import RemoteMessage
from repro.shard.proxy import ShardBackhaulProxy
from repro.shard.runner import ShardedRun, run_sharded

__all__ = [
    "ShardPlan",
    "partition",
    "RemoteMessage",
    "ShardBackhaulProxy",
    "ShardEngine",
    "ShardResult",
    "merge_chain_ops",
    "merge_counter_snapshots",
    "merge_series_parts",
    "merge_aggregator_series",
    "ShardedRun",
    "run_sharded",
]
