"""Deterministic merges from per-shard snapshots to the serial view.

Each merge here is a pure function of the shard results (taken in shard
index order), so the output is independent of how the shards were
scheduled — the foundation of the byte-identical digest contract.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Sequence

from repro.chain.ledger import Blockchain
from repro.errors import ConfigError
from repro.monitoring.timeseries import SeriesBank
from repro.runtime.spec import LedgerSpec

# One shard's recorded series for one aggregator:
# (name, unit, times, values) per series, bank creation order.
SeriesPart = Sequence[tuple[str, str, Sequence[float], Sequence[float]]]


def merge_chain_ops(
    ops_by_shard: Sequence[Sequence[tuple[float, int, list]]],
    aggregator_names: Sequence[str],
    *,
    ledger: LedgerSpec | None = None,
) -> Blockchain:
    """Rebuild the serial chain from per-shard append logs.

    A stable k-way merge by ``(timestamp, declaration_index)`` recovers
    the serial append order: same-instant flushes happen in declaration
    order on the serial kernel (aggregator duties are armed in build
    order and re-arm immediately after firing), and one aggregator's
    ops live on exactly one shard, already in its local time order.
    Replaying the merged log through a fresh :class:`Blockchain`
    reproduces every height / previous-hash link, so the tip hash is
    the serial digest.
    """
    merged = heapq.merge(*ops_by_shard, key=lambda op: (op[0], op[1]))
    if ledger is None:
        ledger = LedgerSpec()
    chain = Blockchain(
        checkpoint_interval=ledger.checkpoint_interval_blocks or None,
        pruning_depth=(
            ledger.pruning_depth_blocks if ledger.pruning_depth_blocks > 0 else None
        ),
    )
    for timestamp, declaration_index, records in merged:
        chain.append(aggregator_names[declaration_index], timestamp, records)
    return chain


def merge_counter_snapshots(snapshots: Iterable[dict[str, int]]) -> dict[str, int]:
    """Sum per-shard counter snapshots; keys sorted like
    :meth:`~repro.monitoring.counters.CounterBank.snapshot`."""
    totals: dict[str, int] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def merge_series_parts(parts: Sequence[SeriesPart]) -> SeriesBank:
    """Merge several shards' recordings of (possibly) the same series.

    Series names keep first-seen order across the parts; a name
    appearing in several parts has its samples interleaved by
    ``(time, part_index, position)`` — deterministic, and stable for
    the common disjoint-time case.  Conflicting concrete units raise
    :class:`~repro.errors.ConfigError` (via
    :meth:`~repro.monitoring.timeseries.SeriesBank.series`).
    """
    bank = SeriesBank()
    points: dict[str, list[tuple[float, int, int, float]]] = {}
    for part_index, part in enumerate(parts):
        for name, unit, times, values in part:
            bank.series(name, unit)
            bucket = points.setdefault(name, [])
            for position, (time, value) in enumerate(zip(times, values)):
                bucket.append((time, part_index, position, value))
    for name in bank.names:
        series = bank[name]
        for time, _part, _pos, value in sorted(points.get(name, ())):
            series.append(time, value)
    return bank


def merge_aggregator_series(
    maps: Sequence[dict[str, SeriesPart]],
) -> dict[str, SeriesBank]:
    """Combine per-shard ``{aggregator: series part}`` maps.

    Aggregators are disjoint across shards by construction; the same
    name appearing twice means two shards both claim to own it, which
    is a partitioning bug worth failing loudly on.  Output keys follow
    shard order then each shard's own order — for a round-robin plan of
    a declaration-ordered spec this is *not* declaration order, so
    consumers needing that (monitoring export) sort by spec order.
    """
    merged: dict[str, SeriesBank] = {}
    for shard_index, part_map in enumerate(maps):
        for name, part in part_map.items():
            if name in merged:
                raise ConfigError(
                    f"aggregator {name!r} reported by two shards "
                    f"(second: shard {shard_index})"
                )
            merged[name] = merge_series_parts([part])
    return merged


def merge_summaries(summaries: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Union per-shard ``{name: stats}`` maps (devices or aggregators).

    Keys are disjoint across shards; collisions raise.
    """
    merged: dict[str, Any] = {}
    for summary in summaries:
        for name, stats in summary.items():
            if name in merged:
                raise ConfigError(f"{name!r} reported by two shards")
            merged[name] = stats
    return merged
