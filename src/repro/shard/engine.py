"""One shard's wired world and its window-drive API.

A :class:`ShardEngine` builds the shard's networks, devices and faults
on a private kernel via :func:`~repro.runtime.build.build_partial`,
with a :class:`~repro.shard.proxy.ShardBackhaulProxy` as the mesh and a
:class:`RecordingChain` as the ledger.  The runner drives it window by
window: :meth:`run_window` executes ``[now, boundary)`` and drains the
proxy's outbox, :meth:`absorb` injects the inbound batch at the
boundary, :meth:`finish` runs the final inclusive step, and
:meth:`result` packages everything the parent needs to rebuild the
serial view — as plain picklable data, because in multi-process mode it
crosses a pipe.

Determinism notes:

* Every random stream is derived from ``sha256(master_seed:name)``, so
  a shard reproduces its actors' randomness exactly regardless of which
  other streams exist elsewhere.
* The shard chain records *append operations* keyed by the aggregator's
  declaration index in the full spec; the parent stable-merges the logs
  by ``(timestamp, declaration index)`` and replays them, recovering
  the serial chain hash-for-hash (serial same-instant flushes happen in
  declaration order because aggregator duties are armed in build
  order).
"""

from __future__ import annotations

import math
from typing import Any

from repro.chain.ledger import Blockchain
from repro.ids import AggregatorId
from repro.runtime.build import build_partial
from repro.runtime.context import SimContext
from repro.runtime.scenario import Scenario
from repro.runtime.spec import FaultSpec, ObsSpec, ScenarioSpec
from repro.shard.partition import ShardPlan
from repro.shard.plane import RemoteMessage, delivery_order
from repro.shard.proxy import ShardBackhaulProxy

# Environment-scale fault kinds every shard arms (their injectors hang
# off shard-local transports, and a partition must sever send paths on
# whichever shard originates the traffic).  Aggregator-targeted kinds
# arm only on the owning shard — their wiring touches the local unit.
_GLOBAL_FAULT_KINDS = frozenset(
    {"channel_blackout", "channel_noise", "backhaul_partition"}
)


class RecordingChain(Blockchain):
    """A :class:`Blockchain` that also logs its append operations.

    The log entries ``(timestamp, declaration_index, records)`` are what
    the cross-shard merge consumes; the chain itself still behaves like
    the serial ledger for everything reading it locally (the writer, the
    device header sync), just over this shard's blocks only.
    """

    def __init__(self, declaration_index: dict[str, int], **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self._declaration_index = declaration_index
        self.ops: list[tuple[float, int, list[dict[str, Any]]]] = []

    def append(self, aggregator: str, timestamp: float, records: list) -> Any:
        block = super().append(aggregator, timestamp, records)
        self.ops.append(
            (timestamp, self._declaration_index[aggregator], list(records))
        )
        return block


class ShardResult:
    """Picklable end-of-run snapshot of one shard."""

    __slots__ = (
        "index",
        "networks",
        "events_executed",
        "busy_s",
        "chain_ops",
        "counters",
        "series",
        "devices_summary",
        "aggregators_summary",
        "messages_sent",
        "messages_dropped",
    )

    def __init__(
        self,
        index: int,
        networks: tuple[str, ...],
        events_executed: int,
        busy_s: float,
        chain_ops: list,
        counters: dict[str, int],
        series: dict[str, list[tuple[str, str, list[float], list[float]]]],
        devices_summary: dict,
        aggregators_summary: dict,
        messages_sent: int,
        messages_dropped: int,
    ) -> None:
        self.index = index
        self.networks = networks
        self.events_executed = events_executed
        self.busy_s = busy_s
        self.chain_ops = chain_ops
        self.counters = counters
        self.series = series
        self.devices_summary = devices_summary
        self.aggregators_summary = aggregators_summary
        self.messages_sent = messages_sent
        self.messages_dropped = messages_dropped


class ShardEngine:
    """One shard: a private kernel running a subset of the fleet."""

    def __init__(
        self,
        spec: ScenarioSpec,
        plan: ShardPlan,
        index: int,
        *,
        trace: bool = True,
        obs: ObsSpec | None = None,
    ) -> None:
        self.spec = spec
        self.plan = plan
        self.index = index
        self.networks = plan.groups[index]
        local = set(self.networks)
        self.context = SimContext.create(
            seed=spec.seed, trace=trace, obs=obs if obs is not None else spec.obs
        )
        order = tuple(AggregatorId(name) for name in spec.network_names)
        remote = frozenset(agg for agg in order if agg.name not in local)
        self.proxy = ShardBackhaulProxy(self.context, index, order, remote)
        self.chain = RecordingChain(
            {name: i for i, name in enumerate(spec.network_names)},
            authorized=set(),
            counters=self.context.counters,
            checkpoint_interval=spec.ledger.checkpoint_interval_blocks or None,
            pruning_depth=(
                spec.ledger.pruning_depth_blocks
                if spec.ledger.pruning_depth_blocks > 0
                else None
            ),
        )

        def keep(fault: FaultSpec) -> bool:
            if fault.kind in _GLOBAL_FAULT_KINDS:
                return True
            return fault.target in local

        self.scenario: Scenario = build_partial(
            spec,
            context=self.context,
            mesh=self.proxy,
            chain=self.chain,
            networks=local,
            fault_filter=keep,
        )

    @property
    def simulator(self):
        """The shard's kernel."""
        return self.context.simulator

    # -- window drive ---------------------------------------------------

    def run_window(self, boundary: float) -> list[RemoteMessage]:
        """Execute ``[now, boundary)``, park on the boundary, drain outbox."""
        # The vector fleet's deliver pass processes reports inline only
        # up to the earliest pending kernel event; inside a window it
        # must also stop at the boundary — the next window can absorb
        # cross-shard messages that schedule work before those arrivals.
        for fleet in self.scenario.vector_fleets:
            fleet.window_horizon = boundary
        self.simulator.run_window(boundary)
        return self.proxy.drain_outbox()

    def absorb(self, messages: list[RemoteMessage]) -> None:
        """Schedule an inbound cross-shard batch (at a window boundary).

        Messages are ordered by the deterministic
        :func:`~repro.shard.plane.delivery_order` key before scheduling,
        so the kernel's same-instant sequence order is independent of
        shard execution interleaving.  Arrival times are clamped to
        ``now`` against float rounding at the boundary (the conservative
        window guarantees ``deliver_at >= boundary`` analytically, but
        ``(k-1)*W + latency`` can round a half-ulp below ``k*W``).
        """
        sim = self.simulator
        now = sim.now
        for message in sorted(messages, key=delivery_order):
            at = message.deliver_at if message.deliver_at > now else now
            sim.schedule(
                at,
                lambda m=message: self.proxy.deliver_remote(m),
                label=f"shard:recv:{message.destination}",
            )

    def finish(self, until: float) -> None:
        """Run the final *inclusive* step to ``until`` (serial semantics)."""
        for fleet in self.scenario.vector_fleets:
            fleet.window_horizon = math.inf
        self.simulator.run_until(until)

    # -- results --------------------------------------------------------

    def result(self, busy_s: float = 0.0) -> ShardResult:
        """Package this shard's run for the cross-shard merge."""
        summary = self.scenario.summary()
        series: dict[str, list[tuple[str, str, list[float], list[float]]]] = {}
        for name, unit in self.scenario.aggregators.items():
            bank = unit.monitoring
            series[name] = [
                (
                    series_name,
                    bank[series_name].unit,
                    bank[series_name].times,
                    bank[series_name].values,
                )
                for series_name in bank.names
            ]
        counters = (
            self.context.counters.snapshot()
            if self.context.counters is not None
            else {}
        )
        return ShardResult(
            index=self.index,
            networks=self.networks,
            events_executed=self.simulator.events_executed,
            busy_s=busy_s,
            chain_ops=list(self.chain.ops),
            counters=dict(counters),
            series=series,
            devices_summary=summary["devices"],
            aggregators_summary=summary["aggregators"],
            messages_sent=self.proxy.messages_sent,
            messages_dropped=self.proxy.messages_dropped,
        )

    def write_obs_artifacts(self, directory) -> None:
        """Write this shard's observability artifacts to ``directory``."""
        self.scenario.write_obs_artifacts(directory)
