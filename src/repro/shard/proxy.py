"""The per-shard backhaul mesh.

:class:`ShardBackhaulProxy` subclasses the serial
:class:`~repro.net.backhaul.BackhaulMesh` and keeps the *full* spec
topology in its routing graph, so latency lookups, partitions and link
injectors behave exactly as on the serial mesh.  Only delivery differs:
a message whose destination lives on another shard is appended to an
outbox (with its absolute arrival time) instead of being scheduled
locally; the runner drains outboxes at each window barrier and the
owning shard injects them via :meth:`ShardBackhaulProxy.deliver_remote`.

Counter discipline: ``messages_sent``/``messages_dropped`` follow the
serial mesh's send-side semantics on the *source* shard; the receiving
shard only ever counts in-flight-crash drops (mirroring the serial
``_arrive`` recheck), never a second send.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import BackhaulError
from repro.ids import AggregatorId
from repro.net.backhaul import BackhaulHandler, BackhaulMesh
from repro.shard.plane import RemoteMessage

if TYPE_CHECKING:
    from repro.runtime.context import SimContext
    from repro.sim.kernel import Simulator


class ShardBackhaulProxy(BackhaulMesh):
    """One shard's view of the global backhaul mesh.

    Args:
        runtime: The shard's kernel or shared context.
        shard_index: This shard's index (stamped on outbox messages).
        order: Every aggregator in the *full* spec, declaration order —
            broadcasts must fan out in exactly the serial iteration
            order, locals and remotes interleaved.
        remote: The subset of ``order`` owned by other shards.
        per_hop_cost_s: As on :class:`BackhaulMesh`.
    """

    def __init__(
        self,
        runtime: "Simulator | SimContext",
        shard_index: int,
        order: tuple[AggregatorId, ...],
        remote: frozenset[AggregatorId],
        per_hop_cost_s: float = 0.0002,
    ) -> None:
        super().__init__(runtime, per_hop_cost_s)
        unknown = set(remote) - set(order)
        if unknown:
            raise BackhaulError(
                f"remote aggregators not in the global order: "
                f"{sorted(a.name for a in unknown)}"
            )
        self._shard_index = shard_index
        self._order = tuple(order)
        self._remote = frozenset(remote)
        # Remote nodes join the routing graph up front: links touching
        # them must wire, and latency paths must match the serial mesh.
        for aggregator_id in self._order:
            if aggregator_id in self._remote:
                self._graph.add_node(aggregator_id)
        self._outbox: list[RemoteMessage] = []
        self._outbox_seq = 0

    @property
    def shard_index(self) -> int:
        """This shard's index."""
        return self._shard_index

    @property
    def remote(self) -> frozenset[AggregatorId]:
        """Aggregators owned by other shards."""
        return self._remote

    def _knows(self, aggregator_id: AggregatorId) -> bool:
        return aggregator_id in self._handlers or aggregator_id in self._remote

    def add_aggregator(self, aggregator_id: AggregatorId, handler: BackhaulHandler) -> None:
        if aggregator_id in self._remote:
            raise BackhaulError(
                f"{aggregator_id} is owned by another shard; cannot attach locally"
            )
        super().add_aggregator(aggregator_id, handler)

    def send(self, source: AggregatorId, destination: AggregatorId, payload: Any) -> float:
        if destination not in self._remote:
            return super().send(source, destination, payload)
        if source in self._remote:
            raise BackhaulError(
                f"{source} is not local to shard {self._shard_index}; "
                "only the owning shard may originate its traffic"
            )
        span = None
        if self._spans.enabled:
            span = self._spans.begin(
                "backhaul.forward",
                self.name,
                source=source.name,
                destination=destination.name,
            )
        latency, copies = self._admit(source, destination, span)
        if copies == 0:
            return latency
        self._messages_sent += 1
        self.count("messages_sent")
        self.trace("backhaul.send", source=str(source), destination=str(destination))
        now = self.sim.now
        for _ in range(copies):
            self._outbox.append(
                RemoteMessage(
                    deliver_at=now + latency,
                    sent_at=now,
                    source_shard=self._shard_index,
                    seq=self._outbox_seq,
                    source=source,
                    destination=destination,
                    payload=payload,
                )
            )
            self._outbox_seq += 1
        if span is not None:
            # The source shard cannot observe the remote arrival; the
            # span closes at hand-off and the destination shard's trace
            # records the delivery.
            self._spans.finish(span, "forwarded", remote_shard=True)
        return latency

    def broadcast(self, source: AggregatorId, payload: Any) -> int:
        # Global declaration order, locals and remotes interleaved —
        # bit-identical side-effect order to the serial mesh's fan-out.
        others = [agg for agg in self._order if agg != source]
        for destination in others:
            self.send(source, destination, payload)
        return len(others)

    def drain_outbox(self) -> list[RemoteMessage]:
        """Take (and clear) the messages queued for other shards."""
        out = self._outbox
        self._outbox = []
        return out

    def deliver_remote(self, message: RemoteMessage) -> None:
        """Hand one inbound cross-shard message to its local handler.

        Runs *inside* the shard kernel at ``message.deliver_at`` —
        :meth:`ShardEngine.absorb` schedules it — and replays the serial
        ``_arrive`` closure: a destination that crashed while the
        message was in flight drops it (counted), otherwise the handler
        fires.
        """
        destination = message.destination
        if destination in self._down:
            self._messages_dropped += 1
            self.count("messages_dropped")
            self.trace("backhaul.drop_down", destination=str(destination))
            return
        handler = self._handlers.get(destination)
        if handler is None:
            raise BackhaulError(
                f"{destination} is not local to shard {self._shard_index}"
            )
        self.trace(
            "backhaul.remote_deliver",
            source=str(message.source),
            destination=str(destination),
            source_shard=message.source_shard,
        )
        handler(message.source, message.payload)
