"""The cross-shard message plane's wire records.

Everything here must pickle: the multi-process runner ships these
objects over :class:`multiprocessing.Pipe` between the parent router and
the shard workers.  Protocol payloads are plain frozen dataclasses and
:class:`~repro.ids.AggregatorId`/:class:`~repro.ids.DeviceId` are
name-derived value types, so the default pickling is both cheap and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ids import AggregatorId

# Sort key for absorbing a window's inbound batch: primary the arrival
# time, then the send time, then (source shard, per-shard sequence) as a
# total deterministic tiebreak that no interleaving of shard execution
# can perturb.
def delivery_order(message: "RemoteMessage") -> tuple[float, float, int, int]:
    """Deterministic absorb order for one window's inbound messages."""
    return (message.deliver_at, message.sent_at, message.source_shard, message.seq)


@dataclass(frozen=True, slots=True)
class RemoteMessage:
    """One backhaul message crossing a shard boundary.

    Attributes:
        deliver_at: Absolute arrival time (send time + mesh latency);
            always lands in a *later* window than the send thanks to the
            conservative lookahead.
        sent_at: Absolute send time on the source shard.
        source_shard: Index of the sending shard.
        seq: Per-source-shard monotonic sequence number.
        source: Sending aggregator.
        destination: Receiving aggregator (owned by another shard).
        payload: The protocol message, verbatim.
    """

    deliver_at: float
    sent_at: float
    source_shard: int
    seq: int
    source: AggregatorId
    destination: AggregatorId
    payload: Any
