"""Fleet partitioning and the conservative lookahead window.

A shard owns whole networks: an aggregator, every device homed on it,
and a shard-local transport.  Only backhaul messages cross shards, so
the minimum latency over cross-shard mesh links is a safe lookahead —
a message sent inside window ``[kW, (k+1)W)`` with ``W <= min latency``
cannot arrive before ``(k+1)W``, and exchanging outboxes at each window
boundary preserves causality exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.spec import ScenarioSpec


@dataclass(frozen=True)
class ShardPlan:
    """The partitioning decision :func:`partition` produces.

    Attributes:
        groups: Per-shard network-name groups, shard order; within each
            group the spec's declaration order is preserved.
        window_s: Conservative synchronization window, or ``None`` when
            no mesh link crosses a shard boundary (the shards never
            exchange messages, so one window spans the whole run).
    """

    groups: tuple[tuple[str, ...], ...]
    window_s: float | None

    @property
    def shards(self) -> int:
        """Number of shards."""
        return len(self.groups)

    def shard_of(self, network: str) -> int:
        """Shard index owning ``network``."""
        for index, group in enumerate(self.groups):
            if network in group:
                return index
        raise ConfigError(f"network {network!r} is not in the shard plan")


def _cross_shard_lookahead(
    spec: ScenarioSpec, groups: tuple[tuple[str, ...], ...]
) -> float | None:
    """Minimum latency over mesh links whose ends live on different shards."""
    owner = {name: index for index, group in enumerate(groups) for name in group}
    lookahead: float | None = None
    for a, b in spec.mesh.resolve_links(spec.network_names):
        if owner[a] == owner[b]:
            continue
        # Every spec link shares spec.mesh.latency_s today, but routed
        # paths can only be >= the direct link, so min over direct
        # cross-shard links stays conservative even for multi-hop routes.
        if lookahead is None or spec.mesh.latency_s < lookahead:
            lookahead = spec.mesh.latency_s
    return lookahead


def partition(
    spec: ScenarioSpec,
    shards: int | None = None,
    *,
    assignment: tuple[tuple[str, ...], ...] | None = None,
    window_s: float | None = None,
) -> ShardPlan:
    """Assign every network (and thereby its devices) to a shard.

    Args:
        spec: The world to partition.
        shards: Shard count; defaults to ``spec.sharding.shards``.
        assignment: Explicit per-shard groups; defaults to
            ``spec.sharding.assignment`` or round-robin over the
            declaration order.
        window_s: Requested window; defaults to
            ``spec.sharding.window_s``.  Always clamped to the
            conservative lookahead — a request can shorten windows but
            never break causality.
    """
    names = spec.network_names
    if shards is None:
        shards = spec.sharding.shards
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if shards > len(names):
        raise ConfigError(
            f"spec has {len(names)} aggregators but {shards} shards "
            "requested; a shard without an aggregator would run empty"
        )
    if assignment is None:
        assignment = spec.sharding.assignment or None
    if assignment is None:
        groups = tuple(
            tuple(names[i] for i in range(index, len(names), shards))
            for index in range(shards)
        )
    else:
        if len(assignment) != shards:
            raise ConfigError(
                f"assignment has {len(assignment)} groups for {shards} shards"
            )
        known = set(names)
        seen: set[str] = set()
        for index, group in enumerate(assignment):
            if not group:
                raise ConfigError(f"shard {index} owns no aggregators")
            for member in group:
                if member not in known:
                    raise ConfigError(
                        f"shard assignment references unknown network {member!r}"
                    )
                if member in seen:
                    raise ConfigError(
                        f"network {member!r} assigned to two shards"
                    )
                seen.add(member)
        missing = known - seen
        if missing:
            raise ConfigError(
                f"shard assignment misses networks: {sorted(missing)}"
            )
        groups = tuple(tuple(group) for group in assignment)

    lookahead = _cross_shard_lookahead(spec, groups)
    if window_s is None:
        window_s = spec.sharding.window_s
    if window_s is not None and window_s <= 0:
        raise ConfigError(f"shard window must be positive, got {window_s}")
    if lookahead is None:
        effective = None if window_s is None else window_s
    elif window_s is None:
        effective = lookahead
    else:
        effective = min(window_s, lookahead)
    return ShardPlan(groups=groups, window_s=effective)
