"""Stdlib HTTP front for :class:`~repro.serve.service.AggregatorService`.

One :class:`~http.server.ThreadingHTTPServer` hosts the seven routes of
serve mode; each connection gets a handler thread, and all of them call
into one shared :class:`AggregatorService`, which serializes kernel
access internally.  HTTP/1.1 with explicit ``Content-Length`` on every
response, so clients can keep connections alive across a whole
benchmark run.

Routes
======

==========================  ======  =========================================
path                        method  behaviour
==========================  ======  =========================================
``/register``               POST    membership handshake (wire-encoded
                                    ``registration_request`` body)
``/reports``                POST    batched report ingestion, per-report
                                    verdicts in the response (d3a batch idiom)
``/alerts``                 GET     long-poll alert stream
                                    (``?since=&timeout_s=``)
``/ledger/headers``         GET     header-chain batch with checkpoint
                                    fast-forward (``?from_height=&count=``)
``/proofs/<device>/<seq>``  GET     Merkle inclusion receipt, offline
                                    verifiable
``/metrics``                GET     Prometheus text exposition
``/healthz``                GET     liveness + world snapshot
==========================  ======  =========================================

Error mapping: :class:`~repro.errors.CodecError` and bad parameters are
400, a missing proof (:class:`~repro.errors.ChainError`) is 404, unknown
paths are 404, wrong methods are 405, anything unexpected is 500 —
always as a JSON body ``{"error": ...}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import ChainError, CodecError, ConfigError, NetworkError
from repro.serve.service import AggregatorService

# Largest request body accepted; protects the decoder from a client
# streaming an unbounded batch into memory.
_MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests into the shared service."""

    protocol_version = "HTTP/1.1"
    server: "ServeHTTPServer"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        self._send(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > _MAX_BODY_BYTES:
            raise CodecError(f"request body of {length} bytes refused")
        return self.rfile.read(length) if length else b""

    def _dispatch(self, method: str) -> None:
        parts = urlsplit(self.path)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        try:
            self._route(method, parts.path.rstrip("/") or "/", query)
        except (CodecError, ConfigError, ValueError) as exc:
            self._send_error_json(400, str(exc))
        except NetworkError as exc:
            # Bad device names in paths/payloads parse as AddressError.
            self._send_error_json(400, str(exc))
        except ChainError as exc:
            self._send_error_json(404, str(exc))
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    # -- routing ---------------------------------------------------------

    def _route(self, method: str, path: str, query: dict[str, str]) -> None:
        service = self.server.service
        if path == "/register":
            if method != "POST":
                return self._send_error_json(405, "POST only")
            return self._send_json(200, service.register(self._read_body()))
        if path == "/reports":
            if method != "POST":
                return self._send_error_json(405, "POST only")
            return self._send_json(200, service.ingest(self._read_body()))
        if path == "/alerts":
            if method != "GET":
                return self._send_error_json(405, "GET only")
            since = int(query.get("since", "0"))
            timeout_s = float(query["timeout_s"]) if "timeout_s" in query else None
            return self._send_json(200, service.alerts(since, timeout_s))
        if path == "/ledger/headers":
            if method != "GET":
                return self._send_error_json(405, "GET only")
            return self._send_json(
                200,
                service.ledger_headers(
                    int(query.get("from_height", "0")),
                    int(query.get("count", "64")),
                ),
            )
        if path.startswith("/proofs/"):
            if method != "GET":
                return self._send_error_json(405, "GET only")
            tail = path[len("/proofs/") :].split("/")
            if len(tail) != 2 or not tail[0]:
                return self._send_error_json(
                    404, "proof path is /proofs/<device>/<sequence>"
                )
            return self._send_json(200, service.proof(tail[0], int(tail[1])))
        if path == "/metrics":
            if method != "GET":
                return self._send_error_json(405, "GET only")
            return self._send(
                200,
                service.metrics().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/healthz":
            if method != "GET":
                return self._send_error_json(405, "GET only")
            return self._send_json(200, service.healthz())
        self._send_error_json(404, f"no route for {path}")

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")


class ServeHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`AggregatorService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: AggregatorService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose


class ServeRunner:
    """Owns a server's lifecycle: bind, serve on a thread, shut down.

    Usable as a context manager in tests and benchmarks::

        with ServeRunner(service, port=0) as runner:
            ...  # http requests against runner.address

    Port 0 binds an ephemeral port; :attr:`address` reports the real one.
    """

    def __init__(
        self,
        service: AggregatorService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self._server = ServeHTTPServer((host, port), service, verbose=verbose)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def server(self) -> ServeHTTPServer:
        """The underlying server (for ``serve_forever`` in the CLI)."""
        return self._server

    def start(self) -> "ServeRunner":
        """Start serving on a background thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drain handler threads, close the socket."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "ServeRunner":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
