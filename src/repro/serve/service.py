"""The aggregator as a long-running service: world + wire boundary.

:class:`AggregatorService` wraps a spec-built world behind a
thread-safe facade that external clients drive over a real network
boundary.  The simulation kernel still owns every aggregator duty
(feeder sampling, block flushes, membership expiry, fault schedules),
but time no longer belongs to an experiment harness: the service
advances the kernel one :attr:`~repro.runtime.spec.ServeSpec.step_s`
window per ingestion step, so the world is always quiescent between
requests and every request observes a consistent state.

The wire boundary is the PR-3 transport seam: the world is built on the
``serve`` transport backend (:mod:`repro.transport.serve`), whose
endpoints carry encoded wire bytes.  An HTTP body is validated by the
codec, re-encoded, and *delivered into the aggregator's own endpoint* —
the exact path a radio frame takes — and the aggregator's downlink
replies come back out of the endpoint as wire bytes the service decodes
and correlates.  Nothing in :mod:`repro.aggregator` knows it is being
served.

Batched ingestion follows the d3a ``batch_command`` idiom: one request
carries many device reports, the service injects them all, advances one
step, and returns one blocking response with a per-report verdict.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Any

from repro.chain.receipts import find_and_issue, receipt_to_dict
from repro.errors import ChainError, CodecError, ConfigError
from repro.ids import DeviceId
from repro.obs.metrics import MetricsRegistry
from repro.protocol.codec import as_message, encode_message
from repro.protocol.messages import (
    Ack,
    ConsumptionReport,
    Nack,
    RegistrationRequest,
    RegistrationResponse,
)
from repro.runtime.build import build
from repro.runtime.spec import ScenarioSpec, TransportSpec

# Alerts kept in the ring before the oldest are dropped; cursors stay
# valid because they are absolute sequence numbers, not list indices.
_MAX_ALERTS = 10_000


class AggregatorService:
    """Thread-safe serving facade over one spec-built world.

    Args:
        spec: The world to serve.  The transport is forced to the
            ``serve`` backend (wire bytes through the endpoint) — any
            simulated devices in the spec keep running inside the world
            and cross the same codec boundary as external clients.
        network: Name of the served aggregator; overrides
            ``spec.serve.network`` (None: the spec's choice, falling
            back to the first network).

    All public methods are safe to call from concurrent HTTP handler
    threads; kernel access is serialized under one lock.
    """

    def __init__(self, spec: ScenarioSpec, network: str | None = None) -> None:
        if spec.transport.kind != "serve":
            spec = dataclasses.replace(
                spec,
                transport=TransportSpec(
                    kind="serve",
                    latency_s=spec.transport.latency_s,
                    loss_p=spec.transport.loss_p,
                    connect_s=spec.transport.connect_s,
                    scan_s=spec.transport.scan_s,
                    assoc_s=spec.transport.assoc_s,
                ),
            )
        self._spec = spec
        self._serve = spec.serve
        self._scenario = build(spec)
        self._network = network or spec.serve.network or spec.networks[0].name
        self._unit = self._scenario.aggregator(self._network)
        self._lock = threading.RLock()
        self._alert_cond = threading.Condition(self._lock)
        self._started_wall = time.monotonic()
        # External clients registered through the API; only their
        # downlink traffic is correlated into verdicts/inboxes (the
        # simulated fleet's Acks would otherwise accumulate forever).
        self._external: set[str] = set()
        self._verdicts: dict[tuple[str, int], dict[str, Any]] = {}
        self._registrations: dict[str, dict[str, Any]] = {}
        self._alerts: list[dict[str, Any]] = []
        self._alerts_base = 0
        self._anomalies_seen = 0
        # Downlink tap: every aggregator's control-plane replies cross
        # the wire boundary; tap them all so alerts cover roaming too.
        for unit in self._scenario.aggregators.values():
            unit.endpoint.subscribe("device/+/ctrl", self._on_downlink)

    # -- introspection ---------------------------------------------------

    @property
    def scenario(self):
        """The served world (tests and the CLI reach through here)."""
        return self._scenario

    @property
    def unit(self):
        """The served aggregator unit."""
        return self._unit

    @property
    def sim_now(self) -> float:
        """Current simulated time."""
        with self._lock:
            return self._scenario.simulator.now

    def _count(self, name: str, by: int = 1) -> None:
        counters = self._scenario.counters
        if counters is not None:
            counters.increment(f"serve.{name}", by)

    # -- time ------------------------------------------------------------

    def advance(self, dt: float | None = None) -> float:
        """Advance the kernel by ``dt`` (default: the spec's step).

        Returns the new simulated time.  Every duty scheduled in the
        window runs — feeder ticks, block flushes, membership expiry,
        simulated-device reporting, armed faults.
        """
        with self._lock:
            sim = self._scenario.simulator
            sim.run_until(sim.now + (self._serve.step_s if dt is None else dt))
            self._collect_anomalies()
            return sim.now

    def _collect_anomalies(self) -> None:
        # Network-level residual anomalies are flagged (traced and
        # counted), never Nack'd — surface them on the alert stream.
        total = sum(
            unit.verifier.stats.network_anomalies
            for unit in self._scenario.aggregators.values()
        )
        if total > self._anomalies_seen:
            for _ in range(total - self._anomalies_seen):
                self._push_alert(
                    {"kind": "network_anomaly", "aggregator": self._network}
                )
            self._anomalies_seen = total

    # -- downlink capture ------------------------------------------------

    def _on_downlink(self, topic: str, payload: Any) -> None:
        try:
            message = as_message(payload)
        except CodecError:
            return
        if isinstance(message, Nack):
            self._push_alert(
                {
                    "kind": "nack",
                    "device": message.device_id.name,
                    "reason": message.reason.value,
                    "sequence": message.sequence,
                }
            )
        device = message.device_id.name if hasattr(message, "device_id") else None
        if device not in self._external:
            return
        if isinstance(message, Ack):
            self._verdicts[(device, message.sequence)] = {"verdict": "ack"}
        elif isinstance(message, Nack):
            if message.sequence is None:
                self._registrations[device] = {
                    "status": "rejected",
                    "reason": message.reason.value,
                }
            else:
                self._verdicts[(device, message.sequence)] = {
                    "verdict": "nack",
                    "reason": message.reason.value,
                }
        elif isinstance(message, RegistrationResponse):
            self._registrations[device] = {
                "status": "registered",
                "address": str(message.address),
                "temporary": message.temporary,
            }

    def _push_alert(self, alert: dict[str, Any]) -> None:
        alert = {"seq": self._alerts_base + len(self._alerts), **alert}
        self._alerts.append(alert)
        if len(self._alerts) > _MAX_ALERTS:
            drop = len(self._alerts) - _MAX_ALERTS
            del self._alerts[:drop]
            self._alerts_base += drop
        self._alert_cond.notify_all()

    # -- membership handshake -------------------------------------------

    def register(self, payload: bytes | str) -> dict[str, Any]:
        """Run the Fig. 3 membership handshake for one wire payload.

        ``payload`` is the HTTP body: an encoded
        ``registration_request``.  The request is validated by the
        codec, delivered into the aggregator's endpoint, and the kernel
        advanced one step so the handshake (processing latency,
        registry, downlink response) completes before this returns.
        """
        message = as_message(payload)
        if not isinstance(message, RegistrationRequest):
            raise CodecError(
                f"expected a registration_request, got {type(message).__name__}"
            )
        device = message.device_id.name
        with self._lock:
            self._count("register_requests")
            self._external.add(device)
            self._registrations.pop(device, None)
            self._unit.endpoint.deliver(
                f"meter/{device}/register", encode_message(message)
            )
            self.advance()
            outcome = self._registrations.pop(device, None)
        if outcome is None:
            return {"device": device, "status": "pending"}
        return {"device": device, **outcome}

    # -- batched report ingestion ---------------------------------------

    def ingest(self, payload: bytes | str) -> dict[str, Any]:
        """Ingest one batch of consumption reports (d3a batch idiom).

        ``payload`` is the HTTP body: either a JSON array of
        ``consumption_report`` objects or ``{"reports": [...]}``.  All
        reports are injected into the endpoint, the kernel advances one
        step, and the response carries one verdict per report in order:
        ``ack``, ``nack`` (with the aggregator's reason), ``error``
        (the entry never reached the wire), or ``pending``.
        """
        if isinstance(payload, (bytes, bytearray)):
            payload = bytes(payload).decode("utf-8", errors="replace")
        try:
            body = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise CodecError(f"malformed batch body: {exc}") from exc
        entries = body.get("reports") if isinstance(body, dict) else body
        if not isinstance(entries, list):
            raise CodecError("batch body must be a JSON array or {'reports': [...]}")
        reports: list[tuple[int, ConsumptionReport]] = []
        results: list[dict[str, Any] | None] = [None] * len(entries)
        for i, entry in enumerate(entries):
            try:
                message = as_message(json.dumps(entry))
            except (CodecError, TypeError) as exc:
                results[i] = {"verdict": "error", "error": str(exc)}
                continue
            if not isinstance(message, ConsumptionReport):
                results[i] = {
                    "verdict": "error",
                    "error": f"expected a consumption_report, got {type(message).__name__}",
                }
                continue
            reports.append((i, message))
        with self._lock:
            self._count("report_batches")
            self._count("reports_ingested", len(reports))
            for _, report in reports:
                self._external.add(report.device_id.name)
                self._unit.endpoint.deliver(
                    f"meter/{report.device_id.name}/report", encode_message(report)
                )
            self.advance()
            for i, report in reports:
                verdict = self._verdicts.pop(
                    (report.device_id.name, report.sequence), None
                )
                results[i] = {
                    "device": report.device_id.name,
                    "sequence": report.sequence,
                    **(verdict if verdict is not None else {"verdict": "pending"}),
                }
        accepted = sum(1 for r in results if r and r.get("verdict") == "ack")
        return {
            "results": results,
            "accepted": accepted,
            "rejected": len(results) - accepted,
        }

    # -- alert stream ----------------------------------------------------

    def alerts(
        self, since: int = 0, timeout_s: float | None = None
    ) -> dict[str, Any]:
        """Alerts with ``seq >= since``, long-polling when none exist.

        Blocks up to ``timeout_s`` (default: the spec's poll timeout)
        for a new alert before returning an empty batch; ``next`` is
        the cursor to pass as ``since`` on the next poll.
        """
        deadline = time.monotonic() + (
            self._serve.poll_timeout_s if timeout_s is None else timeout_s
        )
        with self._alert_cond:
            while self._alerts_base + len(self._alerts) <= since:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._alert_cond.wait(remaining):
                    break
            start = max(0, since - self._alerts_base)
            batch = list(self._alerts[start:])
            return {
                "alerts": batch,
                "next": self._alerts_base + len(self._alerts),
            }

    # -- ledger plane ----------------------------------------------------

    def ledger_headers(self, from_height: int = 0, count: int = 64) -> dict[str, Any]:
        """Header-chain batch, with checkpoint fast-forward at genesis.

        Mirrors the in-band ``meter/+/chainsync`` answer: a fresh client
        asking from height 0 against a long chain is anchored at the
        latest committed checkpoint instead of replaying from genesis.
        """
        if from_height < 0 or count < 1:
            raise ConfigError(
                f"need from_height >= 0 and count >= 1, got {from_height}/{count}"
            )
        with self._lock:
            chain = self._scenario.chain
            start = from_height
            checkpoint: dict[str, Any] | None = None
            if start == 0:
                latest = chain.latest_checkpoint
                if latest is not None and latest.height > count:
                    checkpoint = latest.to_dict()
                    start = latest.height
            headers = [hr.to_dict() for hr in chain.headers(start, count)]
            return {
                "from_height": start,
                "tip_height": chain.height,
                "headers": headers,
                "checkpoint": checkpoint,
            }

    def proof(self, device: str, sequence: int) -> dict[str, Any]:
        """Merkle inclusion receipt for one committed record.

        Raises :class:`~repro.errors.ChainError` when no such record is
        in the retained chain (the HTTP layer maps it to 404).  The
        returned receipt verifies offline against the header chain.
        """
        uid = DeviceId(device).uid
        with self._lock:
            receipt = find_and_issue(self._scenario.chain, uid, sequence)
            if not receipt.verify(self._scenario.chain):
                raise ChainError(
                    f"issued receipt for {device}/{sequence} failed self-verification"
                )
        return receipt_to_dict(receipt)

    # -- observability plane --------------------------------------------

    def metrics(self) -> str:
        """Prometheus text exposition of the whole served world."""
        with self._lock:
            registry = MetricsRegistry()
            counters = self._scenario.counters
            if counters is not None:
                registry.add_counters(counters)
            for name, unit in self._scenario.aggregators.items():
                registry.add_series(unit.monitoring, prefix=f"{name}.")
            return registry.to_prometheus()

    def healthz(self) -> dict[str, Any]:
        """Liveness and a cheap world snapshot."""
        with self._lock:
            return {
                "status": "down" if self._unit.down else "ok",
                "network": self._network,
                "uptime_s": round(time.monotonic() - self._started_wall, 3),
                "sim_time_s": self._scenario.simulator.now,
                "members": self._unit.registry.member_count,
                "chain_height": self._scenario.chain.height,
                "external_clients": len(self._external),
            }
