"""Serve mode: the aggregator as a long-running networked service.

Everything below the wire boundary is the simulated world — the same
:func:`~repro.runtime.build.build` output the experiment harnesses
drive — but here the kernel advances on demand as external clients
register, ingest report batches, poll alerts, and sync the ledger over
HTTP.  See :mod:`repro.serve.service` for the facade and
:mod:`repro.serve.http` for the stdlib server.
"""

from repro.serve.http import ServeHTTPServer, ServeRunner
from repro.serve.service import AggregatorService

__all__ = ["AggregatorService", "ServeHTTPServer", "ServeRunner"]
