"""Ablation experiments (A1, A2, A3, A6 of DESIGN.md §4).

Each ablation isolates one design decision DESIGN.md calls out:

* A1 — where does the Fig. 5 gap come from? Sweep sensor offset and
  wire model independently.
* A2 — which stage dominates ``T_handshake``? Decompose measured
  handshakes into scan / association / connect / protocol remainder.
* A3 — does store-and-forward preserve billing across disconnections?
  Sweep the idle gap and count delivered records.
* A6 — which detectors catch which tampering attacks?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomaly.detectors import (
    EntropyDetector,
    GroundTruthResidualDetector,
    RelativeVariationDetector,
)
from repro.anomaly.tamper import (
    DropAttack,
    OffsetAttack,
    ReplayAttack,
    ScalingAttack,
    TamperAttack,
)
from repro.device.stack import DeviceConfig
from repro.errors import ExperimentError
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6, run_handshake_distribution
from repro.hw.ina219 import Ina219Config
from repro.hw.powerline import WireSegment
from repro.runtime import build
from repro.workloads.profiles import DutyCycleProfile
from repro.workloads.scenarios import paper_testbed_spec


# -- A1: error-source attribution -------------------------------------------


@dataclass(frozen=True)
class SensorAblationRow:
    """Mean Fig. 5 gap under one error configuration."""

    offset_max_ma: float
    wire_resistance_ohms: float
    wire_leakage_ma: float
    mean_gap_pct: float
    max_gap_pct: float


def run_sensor_ablation(
    seed: int = 0,
    duration_s: float = 35.0,
    warmup_s: float = 15.0,
    offsets_ma: tuple[float, ...] = (0.0, 0.5, 1.0),
    wires: tuple[tuple[float, float], ...] = ((0.0, 0.0), (0.1, 2.5)),
) -> list[SensorAblationRow]:
    """Sweep sensor offset x wire model; returns one row per combo.

    The ideal corner (offset 0, wire 0/0) should show a near-zero gap —
    evidence the reproduction's Fig. 5 gap comes from the modelled error
    sources and nothing else.
    """
    rows: list[SensorAblationRow] = []
    for offset in offsets_ma:
        for resistance, leakage in wires:
            sensor = Ina219Config(offset_max_ma=offset)
            scenario = build(
                paper_testbed_spec(seed=seed),
                device_config=DeviceConfig(sensor=sensor),
                segment=WireSegment(resistance_ohms=resistance, leakage_ma=leakage),
            )
            result = run_fig5(
                duration_s=duration_s, warmup_s=warmup_s, scenario=scenario
            )
            rows.append(
                SensorAblationRow(
                    offset_max_ma=offset,
                    wire_resistance_ohms=resistance,
                    wire_leakage_ma=leakage,
                    mean_gap_pct=result.mean_gap_pct,
                    max_gap_pct=result.max_gap_pct,
                )
            )
    return rows


# -- A2: handshake stage decomposition ---------------------------------------


@dataclass(frozen=True)
class HandshakeStageRow:
    """Mean stage durations across handshakes."""

    scan_s: float
    assoc_s: float
    connect_s: float
    protocol_s: float
    total_s: float

    @property
    def dominant_stage(self) -> str:
        """Name of the longest stage."""
        stages = {
            "scan": self.scan_s,
            "assoc": self.assoc_s,
            "connect": self.connect_s,
            "protocol": self.protocol_s,
        }
        return max(stages, key=stages.get)


def run_handshake_stage_ablation(runs: int = 10, base_seed: int = 0) -> HandshakeStageRow:
    """Decompose ``T_handshake`` into its protocol stages (means)."""
    scans, assocs, connects, protocols, totals = [], [], [], [], []
    stats_runs = run_handshake_distribution(runs=runs, base_seed=base_seed)
    # Re-run each world to pull the per-stage breakdown (the distribution
    # helper discards the scenario); seeds match so stages correspond.
    for index in range(runs):
        scenario = build(
            paper_testbed_spec(seed=base_seed + 1000 * index, enter_devices=False)
        )
        from repro.workloads.mobility import MobilityTrace

        scenario.schedule_mobility(
            "device1",
            MobilityTrace.single_move(
                home="agg1", destination="agg2", enter_home_at=0.0,
                leave_home_at=12.0, idle_s=5.0,
            ),
        )
        scenario.run_until(29.0)
        handshake = scenario.device("device1").last_handshake
        if handshake is None or handshake.duration_s is None:
            raise ExperimentError(f"run {index}: handshake incomplete")
        total = handshake.duration_s
        protocol = total - handshake.scan_s - handshake.assoc_s - handshake.connect_s
        scans.append(handshake.scan_s)
        assocs.append(handshake.assoc_s)
        connects.append(handshake.connect_s)
        protocols.append(max(0.0, protocol))
        totals.append(total)
    del stats_runs
    return HandshakeStageRow(
        scan_s=float(np.mean(scans)),
        assoc_s=float(np.mean(assocs)),
        connect_s=float(np.mean(connects)),
        protocol_s=float(np.mean(protocols)),
        total_s=float(np.mean(totals)),
    )


# -- A3: store-and-forward integrity -----------------------------------------


@dataclass(frozen=True)
class StorageAblationRow:
    """Delivery accounting for one idle-gap length."""

    idle_s: float
    buffered_records: int
    ledger_records: int
    handshake_s: float

    @property
    def backfill_worked(self) -> bool:
        """True when buffered consumption reached the ledger."""
        return self.buffered_records > 0 and self.ledger_records > 0


def run_storage_ablation(
    idle_gaps_s: tuple[float, ...] = (2.0, 10.0, 30.0),
    seed: int = 0,
) -> list[StorageAblationRow]:
    """Sweep the transit gap; verify buffered data lands in the ledger."""
    rows: list[StorageAblationRow] = []
    for idle in idle_gaps_s:
        result = run_fig6(seed=seed, phase1_s=15.0, idle_s=idle, phase2_s=20.0)
        rows.append(
            StorageAblationRow(
                idle_s=idle,
                buffered_records=result.buffered_records,
                ledger_records=len(result.consumption_times),
                handshake_s=result.handshake_s,
            )
        )
    return rows


# -- A6: tamper detection -----------------------------------------------------


@dataclass(frozen=True)
class AnomalyAblationRow:
    """Detection outcome for one attack."""

    attack: str
    residual_detected: bool
    variation_detected: bool
    entropy_detected: bool

    @property
    def detected_by_any(self) -> bool:
        """True when at least one detector fired."""
        return self.residual_detected or self.variation_detected or self.entropy_detected


def run_anomaly_ablation(
    seed: int = 0,
    windows: int = 600,
    t_measure_s: float = 0.1,
) -> list[AnomalyAblationRow]:
    """Run each attack against the three detectors on a synthetic device.

    The device runs a duty-cycled profile; the attacker manipulates the
    *reported* stream while the feeder (ground truth) sees the real one.
    """
    attacks: list[TamperAttack] = [
        TamperAttack(),
        ScalingAttack(0.5),
        OffsetAttack(25.0),
        ReplayAttack(capture_after=30),
        DropAttack(period=3),
    ]
    profile = DutyCycleProfile(high_ma=90.0, low_ma=15.0, period_s=4.0, duty=0.5)
    rows: list[AnomalyAblationRow] = []
    for attack in attacks:
        residual = GroundTruthResidualDetector(
            expected_loss_fraction=0.03, tolerance_fraction=0.10
        )
        variation = RelativeVariationDetector(window=50, threshold=3.0)
        entropy = EntropyDetector(window=100, bins=16, min_entropy_bits=0.5)
        residual_hit = variation_hit = entropy_hit = False
        for i in range(windows):
            t = i * t_measure_s
            true_ma = profile(t) + 20.0
            reported = attack.apply(true_ma)
            feeder_ma = true_ma * 1.03  # feeder truth incl. modest losses
            if residual.screen(reported, feeder_ma).anomalous:
                residual_hit = True
            if variation.screen(reported).anomalous:
                variation_hit = True
            if entropy.screen(reported).anomalous:
                entropy_hit = True
        rows.append(
            AnomalyAblationRow(
                attack=attack.name,
                residual_detected=residual_hit,
                variation_detected=variation_hit,
                entropy_detected=entropy_hit,
            )
        )
    return rows
