"""Lightweight-client ledger sync: the Danzi delay-vs-traffic study.

Reproduces the central trade-off of Danzi et al. (arXiv:1807.07422,
1711.00540): IoT devices that follow the ledger as lightweight clients
choose a header *batch size* — syncing in large batches amortises
per-request overhead (less traffic) but headers arrive later (more
delay), while small batches track the chain tip closely at higher
per-header cost.  :func:`run_ledger_sync` sweeps the batch size over a
fixed world and reports, per size, the synced-header traffic and the
header age distribution, plus whether receipts verified fully offline
against the device's local header chain.

:func:`validate_bench` is the schema gate CI runs against the committed
``BENCH_ledger.json``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.errors import ExperimentError
from repro.runtime.build import build
from repro.runtime.spec import LedgerSpec, TransportSpec
from repro.workloads.scenarios import scaled_spec

# The pruning bound the benchmark must demonstrate: a pruned ledger
# retains at most this fraction of the unpruned ledger's blocks while
# every sampled receipt still verifies.
MAX_RETAINED_FRACTION = 0.10


@dataclass(frozen=True)
class SyncTradeoffPoint:
    """One batch size's position on the delay-vs-traffic curve.

    Attributes:
        batch_size: Headers requested per sync round.
        sync_interval_s: Effective sync period the devices used.
        blocks_produced: Chain height at the end of the run.
        headers_per_device: Mean headers applied per device.
        sync_bytes_per_device: Mean sync traffic (up + down) per device.
        bytes_per_block_per_device: Traffic normalised by chain growth —
            the cost axis of the Danzi curves.
        mean_delay_s: Mean header age on arrival (block timestamp to
            application at the device) — the delay axis.
        max_delay_s: Worst header age observed.
        receipts_verified_offline: Receipts verified against the local
            header chain (no trust in the aggregator's coordinates).
        receipts_requested: Receipts requested across all devices.
    """

    batch_size: int
    sync_interval_s: float
    blocks_produced: int
    headers_per_device: float
    sync_bytes_per_device: float
    bytes_per_block_per_device: float
    mean_delay_s: float
    max_delay_s: float
    receipts_verified_offline: int
    receipts_requested: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form."""
        return dataclasses.asdict(self)


def run_ledger_sync(
    batch_sizes: tuple[int, ...] = (1, 4, 16),
    horizon_s: float = 40.0,
    seed: int = 23,
    n_networks: int = 2,
    devices_per_network: int = 3,
) -> list[SyncTradeoffPoint]:
    """Sweep the header batch size over a fixed world.

    Each batch size builds the same world (same seed, same shape) with
    only the ledger-sync policy changed, runs it for ``horizon_s``,
    then has every device with an acknowledged report request one
    receipt so offline verification is exercised end to end.
    """
    if not batch_sizes:
        raise ExperimentError("need at least one batch size")
    points: list[SyncTradeoffPoint] = []
    for batch in batch_sizes:
        spec = dataclasses.replace(
            scaled_spec(
                n_networks,
                devices_per_network,
                seed=seed,
                transport=TransportSpec(kind="direct"),
            ),
            name=f"ledger-sync-b{batch}",
            ledger=LedgerSpec(sync_enabled=True, header_batch_size=batch),
        )
        scenario = build(spec)
        scenario.simulator.run_until(horizon_s)
        requested = 0
        for device in scenario.devices.values():
            acked = sorted(device.acked_sequences)
            if acked and device.connected:
                device.request_receipt(acked[0])
                requested += 1
        scenario.simulator.run_until(horizon_s + 2.0)

        devices = list(scenario.devices.values())
        n = len(devices)
        headers = sum(d.sync_stats.headers_applied for d in devices)
        traffic = sum(
            d.sync_stats.bytes_sent + d.sync_stats.bytes_received for d in devices
        )
        delay_sum = sum(d.sync_stats.delay_sum_s for d in devices)
        delay_samples = sum(d.sync_stats.delay_samples for d in devices)
        max_delay = max((d.sync_stats.delay_max_s for d in devices), default=0.0)
        offline = sum(
            1
            for record in scenario.context.tracer.by_category(
                "device.receipt_verified"
            )
            if record.detail.get("offline")
        )
        blocks = scenario.chain.height
        interval = spec.ledger.sync_interval_s
        if interval is None:
            from repro.chain.sync import SyncPolicy

            interval = SyncPolicy(batch_size=batch).effective_interval_s()
        points.append(
            SyncTradeoffPoint(
                batch_size=batch,
                sync_interval_s=interval,
                blocks_produced=blocks,
                headers_per_device=headers / n if n else 0.0,
                sync_bytes_per_device=traffic / n if n else 0.0,
                bytes_per_block_per_device=(
                    traffic / n / blocks if n and blocks else 0.0
                ),
                mean_delay_s=delay_sum / delay_samples if delay_samples else 0.0,
                max_delay_s=max_delay,
                receipts_verified_offline=offline,
                receipts_requested=requested,
            )
        )
    return points


# -- BENCH_ledger.json schema gate -------------------------------------------


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


_POINT_KEYS = (
    "batch_size",
    "sync_interval_s",
    "blocks_produced",
    "headers_per_device",
    "sync_bytes_per_device",
    "bytes_per_block_per_device",
    "mean_delay_s",
    "max_delay_s",
    "receipts_verified_offline",
    "receipts_requested",
)

_PRUNING_KEYS = (
    "reports",
    "blocks_total",
    "blocks_retained",
    "retained_fraction",
    "receipts_sampled",
    "receipts_verified",
)


def validate_bench(data: Any) -> list[str]:
    """Schema-check a BENCH_ledger.json document; returns problems.

    An empty list means the document is well-formed AND demonstrates
    the acceptance bound: a delay-vs-traffic curve over >= 3 distinct
    batch sizes, and a pruned ledger retaining <= 10% of its blocks
    with every sampled receipt verifying.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["document is not an object"]
    if data.get("suite") != "ledger":
        problems.append(f"suite must be 'ledger', got {data.get('suite')!r}")
    configs = data.get("configs")
    if not isinstance(configs, dict) or not configs:
        problems.append("configs must be a non-empty object")
        return problems
    for name, config in configs.items():
        if not isinstance(config, dict):
            problems.append(f"{name}: config is not an object")
            continue
        curve = config.get("delay_vs_traffic")
        if not isinstance(curve, list) or len(curve) < 3:
            problems.append(f"{name}: delay_vs_traffic needs >= 3 points")
        else:
            batches = set()
            for i, point in enumerate(curve):
                if not isinstance(point, dict):
                    problems.append(f"{name}: point {i} is not an object")
                    continue
                for key in _POINT_KEYS:
                    if not _numeric(point.get(key)):
                        problems.append(f"{name}: point {i} key {key!r} not numeric")
                if _numeric(point.get("batch_size")):
                    batches.add(point["batch_size"])
            if len(batches) < 3:
                problems.append(f"{name}: needs >= 3 distinct batch sizes")
        pruning = config.get("pruning")
        if not isinstance(pruning, dict):
            problems.append(f"{name}: pruning section missing")
            continue
        for key in _PRUNING_KEYS:
            if not _numeric(pruning.get(key)):
                problems.append(f"{name}: pruning key {key!r} not numeric")
        if _numeric(pruning.get("retained_fraction")):
            if pruning["retained_fraction"] > MAX_RETAINED_FRACTION:
                problems.append(
                    f"{name}: retained_fraction {pruning['retained_fraction']} "
                    f"exceeds the {MAX_RETAINED_FRACTION} bound"
                )
        if _numeric(pruning.get("receipts_sampled")) and _numeric(
            pruning.get("receipts_verified")
        ):
            if pruning["receipts_verified"] != pruning["receipts_sampled"]:
                problems.append(
                    f"{name}: {pruning['receipts_verified']} of "
                    f"{pruning['receipts_sampled']} sampled receipts verified"
                )
    return problems
