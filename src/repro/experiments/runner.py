"""Run-everything orchestration used by the CLI.

Each experiment gets a named entry; ``run_all`` executes the requested
subset and returns rendered text blocks, so the CLI, tests and
EXPERIMENTS.md generation all share one code path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    run_anomaly_ablation,
    run_handshake_stage_ablation,
    run_sensor_ablation,
    run_storage_ablation,
)
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6, run_handshake_distribution
from repro.experiments.report import (
    render_fig5,
    render_fig5_bars,
    render_fig6,
    render_handshake_stats,
    render_table,
)


def _run_fig5() -> str:
    result = run_fig5()
    return (
        render_fig5(result)
        + "\n\n"
        + render_fig5_bars(result, "agg1")
    )


def _run_fig6() -> str:
    return render_fig6(run_fig6())


def _run_handshake() -> str:
    return render_handshake_stats(run_handshake_distribution())


def _run_sensor_ablation() -> str:
    rows = run_sensor_ablation()
    return render_table(
        ["offset_mA", "wire_ohm", "leak_mA", "mean_gap_%", "max_gap_%"],
        [
            [r.offset_max_ma, r.wire_resistance_ohms, r.wire_leakage_ma,
             r.mean_gap_pct, r.max_gap_pct]
            for r in rows
        ],
    )


def _run_handshake_stages() -> str:
    row = run_handshake_stage_ablation()
    return render_table(
        ["scan_s", "assoc_s", "connect_s", "protocol_s", "total_s", "dominant"],
        [[row.scan_s, row.assoc_s, row.connect_s, row.protocol_s, row.total_s,
          row.dominant_stage]],
    )


def _run_storage_ablation() -> str:
    rows = run_storage_ablation()
    return render_table(
        ["idle_s", "buffered", "ledger_records", "handshake_s", "backfill_ok"],
        [[r.idle_s, r.buffered_records, r.ledger_records, r.handshake_s,
          r.backfill_worked] for r in rows],
    )


def _run_anomaly_ablation() -> str:
    rows = run_anomaly_ablation()
    return render_table(
        ["attack", "residual", "variation", "entropy", "detected"],
        [[r.attack, r.residual_detected, r.variation_detected,
          r.entropy_detected, r.detected_by_any] for r in rows],
    )


def _run_attribution() -> str:
    from repro.anomaly import ScalingAttack
    from repro.runtime import build
    from repro.workloads.scenarios import paper_testbed_spec

    rows = []
    for factor in (1.0, 0.5):
        scenario = build(paper_testbed_spec(seed=8))
        if factor != 1.0:
            scenario.device("device1").tamper_attack = ScalingAttack(factor)
        scenario.run_until(35.0)
        result = scenario.aggregator("agg1").attribute_anomaly()
        rows.append(
            [factor, result.alphas["device1"], result.alphas["device2"],
             ",".join(result.suspects) or "-"]
        )
    return render_table(["report_scale", "alpha_d1", "alpha_d2", "suspects"], rows)


def _run_loadbalance() -> str:
    import numpy as np

    from repro.planning import (
        BalanceProblem,
        balance_min_max_utilisation,
        greedy_rssi_assignment,
    )

    rows = []
    for seed in range(3):
        rng = np.random.default_rng(seed)
        reachable = {}
        for d in range(24):
            candidates = {"agg0": -45.0 - float(rng.uniform(0, 5))}
            for other in ("agg1", "agg2", "agg3"):
                if rng.random() < 0.7:
                    candidates[other] = -60.0 - float(rng.uniform(0, 15))
            reachable[f"dev{d}"] = candidates
        problem = BalanceProblem(
            capacities={f"agg{i}": 12 for i in range(4)}, reachable=reachable
        )
        greedy = greedy_rssi_assignment(problem)
        balanced = balance_min_max_utilisation(problem)
        rows.append(
            [seed, greedy.max_utilisation(problem),
             balanced.max_utilisation(problem), len(balanced.unassigned)]
        )
    return render_table(
        ["seed", "greedy_max_util", "balanced_max_util", "stranded"], rows
    )


def _run_ledger_sync() -> str:
    from repro.experiments.ledger_sync import run_ledger_sync

    points = run_ledger_sync()
    return render_table(
        ["batch", "interval_s", "blocks", "hdrs/dev", "bytes/dev", "bytes/blk/dev",
         "mean_delay_s", "max_delay_s", "offline_ok", "requested"],
        [
            [p.batch_size, p.sync_interval_s, p.blocks_produced,
             round(p.headers_per_device, 1), round(p.sync_bytes_per_device, 1),
             round(p.bytes_per_block_per_device, 2), round(p.mean_delay_s, 3),
             round(p.max_delay_s, 3), p.receipts_verified_offline,
             p.receipts_requested]
            for p in points
        ],
    )


def _run_validation() -> str:
    from repro.experiments.validate import render_validation, run_validation

    return render_validation(run_validation())


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "handshake": _run_handshake,
    "ablation-sensor": _run_sensor_ablation,
    "ablation-handshake": _run_handshake_stages,
    "ablation-storage": _run_storage_ablation,
    "ablation-anomaly": _run_anomaly_ablation,
    "attribution": _run_attribution,
    "loadbalance": _run_loadbalance,
    "ledger-sync": _run_ledger_sync,
    "validate": _run_validation,
}


def _run_by_name(name: str) -> str:
    """Execute one registered experiment (module-level: ``run_all`` with
    ``workers`` > 1 pickles this into worker processes)."""
    return EXPERIMENTS[name]()


def _run_observed(name: str, obs_dir: str) -> str:
    """Run one experiment under an obs capture session.

    Module-level so the process pool can pickle it.  Every world the
    experiment builds is force-instrumented and folded into one artifact
    directory at ``obs_dir/<name>``.
    """
    from repro.obs import capture
    from repro.runtime import ObsSpec

    with capture(ObsSpec(enabled=True)) as session:
        text = EXPERIMENTS[name]()
    session.write(Path(obs_dir) / name)
    return text


def _merge_obs(obs_dir: str | Path, selected: list[str]) -> None:
    """Merge per-experiment artifact dirs into ``obs_dir`` itself.

    The merge order is the request order — never worker scheduling — so
    the merged artifact is identical for any worker count.
    """
    from repro.obs import merge_artifact_dirs

    base = Path(obs_dir)
    merge_artifact_dirs([base / name for name in selected], base)


def run_all(
    names: list[str] | None = None,
    workers: int | None = 1,
    obs_dir: str | Path | None = None,
) -> dict[str, str]:
    """Run the requested experiments (all by default); returns texts.

    ``workers`` > 1 fans the experiments out over a process pool — each
    experiment builds its own world from fixed seeds, so the rendered
    outputs are identical for any worker count; ``workers=None``
    autodetects the CPUs this process may be scheduled on.  Output
    order follows the request order either way.

    ``obs_dir`` additionally captures observability artifacts: each
    experiment writes ``obs_dir/<name>/`` and those directories are
    merged into ``obs_dir`` itself in request order.
    """
    if workers is None:
        from repro.parallel import available_cpus

        workers = available_cpus()
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    selected = list(EXPERIMENTS) if names is None else names
    for name in selected:
        if name not in EXPERIMENTS:
            raise ExperimentError(
                f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
            )
    if workers == 1 or len(selected) <= 1:
        if obs_dir is None:
            return {name: _run_by_name(name) for name in selected}
        outputs = {name: _run_observed(name, str(obs_dir)) for name in selected}
        _merge_obs(obs_dir, selected)
        return outputs
    from concurrent.futures import ProcessPoolExecutor

    outputs: dict[str, str] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if obs_dir is None:
            futures = [pool.submit(_run_by_name, name) for name in selected]
        else:
            futures = [
                pool.submit(_run_observed, name, str(obs_dir)) for name in selected
            ]
        for name, future in zip(selected, futures):
            try:
                outputs[name] = future.result()
            except ExperimentError:
                raise
            except BaseException as exc:
                raise ExperimentError(
                    f"experiment {name!r} failed in worker: {exc!r}"
                ) from exc
    if obs_dir is not None:
        _merge_obs(obs_dir, selected)
    return outputs
