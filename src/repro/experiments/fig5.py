"""Experiment E1 — Fig. 5: decentralized vs centralized metering.

The paper compares, per time interval, the *sum of device self-reports*
against the *aggregator's system-level measurement* and observes the
aggregator reading 0.9-8.2 % higher, attributing the gap to ohmic
losses and the INA219's 0.5 mA offset.

The harness reconstructs both sides from first principles:

* device side — the validated consumption records stored in the
  blockchain (exactly what the architecture bills from),
* aggregator side — the feeder-meter series the aggregator recorded.

Both are bucketed into intervals and compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.runtime import build
from repro.workloads.scenarios import Scenario, paper_testbed_spec


@dataclass(frozen=True)
class IntervalRow:
    """One interval of the Fig. 5 comparison.

    Attributes:
        network: Network name.
        start: Interval start time.
        per_device_ma: Mean reported current per device.
        device_sum_ma: Sum of the device means.
        aggregator_ma: Mean feeder-meter current.
        gap_pct: (aggregator - device sum) / device sum, in percent —
            the paper's "slightly higher" overhead.
    """

    network: str
    start: float
    per_device_ma: dict[str, float]
    device_sum_ma: float
    aggregator_ma: float

    @property
    def gap_pct(self) -> float:
        """Percent by which the aggregator reads above the device sum."""
        if self.device_sum_ma <= 0:
            return 0.0
        return (self.aggregator_ma - self.device_sum_ma) / self.device_sum_ma * 100.0


@dataclass
class Fig5Result:
    """Full Fig. 5 regeneration output."""

    rows: list[IntervalRow] = field(default_factory=list)

    @property
    def gaps_pct(self) -> list[float]:
        """Gap percentage of every interval."""
        return [row.gap_pct for row in self.rows]

    @property
    def min_gap_pct(self) -> float:
        """Smallest interval gap (paper: 0.9 %)."""
        return min(self.gaps_pct)

    @property
    def max_gap_pct(self) -> float:
        """Largest interval gap (paper: 8.2 %)."""
        return max(self.gaps_pct)

    @property
    def mean_gap_pct(self) -> float:
        """Mean interval gap."""
        return float(np.mean(self.gaps_pct))


def _device_bucket_means(
    scenario: Scenario,
    network: str,
    start: float,
    end: float,
    bucket_s: float,
) -> dict[float, dict[str, list[float]]]:
    """Reported currents from the ledger, grouped by bucket and device."""
    buckets: dict[float, dict[str, list[float]]] = {}
    for block in scenario.chain:
        for record in block.records:
            if record.get("network") != network or record.get("roaming"):
                continue
            measured_at = float(record["measured_at"])
            if not start <= measured_at < end:
                continue
            edge = start + int((measured_at - start) / bucket_s) * bucket_s
            buckets.setdefault(edge, {}).setdefault(record["device"], []).append(
                float(record["current_ma"])
            )
    return buckets


def run_fig5(
    seed: int = 0,
    duration_s: float = 45.0,
    warmup_s: float = 15.0,
    bucket_s: float = 2.0,
    networks: tuple[str, ...] = ("agg1", "agg2"),
    scenario: Scenario | None = None,
) -> Fig5Result:
    """Regenerate Fig. 5.

    Args:
        seed: Master seed.
        duration_s: Simulated length of the run.
        warmup_s: Initial span excluded (covers the registration
            handshakes so every interval has steady-state reporting).
        bucket_s: Interval width of the stacked-bar comparison.
        networks: Which networks to compare.
        scenario: Pre-built scenario override (for ablations).
    """
    if warmup_s >= duration_s:
        raise ExperimentError(f"warmup {warmup_s} must be < duration {duration_s}")
    world = scenario or build(paper_testbed_spec(seed=seed))
    world.run_until(duration_s)

    result = Fig5Result()
    end = duration_s - (duration_s - warmup_s) % bucket_s
    for network in networks:
        unit = world.aggregator(network)
        if "feeder" not in unit.monitoring:
            raise ExperimentError(f"aggregator {network} recorded no feeder samples")
        feeder = unit.monitoring["feeder"]
        reported = _device_bucket_means(world, network, warmup_s, end, bucket_s)
        for edge in sorted(reported):
            per_device = {
                device: float(np.mean(values))
                for device, values in sorted(reported[edge].items())
            }
            feeder_mean = feeder.mean(edge, edge + bucket_s)
            result.rows.append(
                IntervalRow(
                    network=network,
                    start=edge,
                    per_device_ma=per_device,
                    device_sum_ma=sum(per_device.values()),
                    aggregator_ma=feeder_mean,
                )
            )
    if not result.rows:
        raise ExperimentError("no complete intervals; run longer or reduce warmup")
    return result
