"""Text rendering of experiment results.

Everything the paper shows as a figure is rendered here as aligned text
tables / sparklines, so results are inspectable in a terminal and easy
to diff in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result, HandshakeStats
from repro.monitoring.dashboards import sparkline


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(value.rjust(width) for value, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


_BAR_GLYPHS = ("█", "▓", "▒", "░")


def render_fig5_bars(result: Fig5Result, network: str, width: int = 46) -> str:
    """Fig. 5 as the paper draws it: stacked device bars vs aggregator.

    Each interval gets two lines — the stacked per-device composition of
    the reported sum (left bars in the paper) and the aggregator's
    measurement (right bars) — on a shared horizontal mA scale.
    """
    rows = [row for row in result.rows if row.network == network]
    if not rows:
        return f"(no intervals for network {network})"
    scale = max(max(r.aggregator_ma, r.device_sum_ma) for r in rows)
    devices = sorted({name for r in rows for name in r.per_device_ma})
    glyph_of = {name: _BAR_GLYPHS[i % len(_BAR_GLYPHS)] for i, name in enumerate(devices)}
    lines = [
        f"{network}: stacked device reports (top) vs aggregator measurement "
        f"(bottom), full scale {scale:.0f} mA",
        "legend: " + "  ".join(f"{glyph_of[d]}={d}" for d in devices),
    ]
    for row in rows:
        stacked = ""
        for name in devices:
            cells = int(round(row.per_device_ma.get(name, 0.0) / scale * width))
            stacked += glyph_of[name] * cells
        agg_cells = int(round(row.aggregator_ma / scale * width))
        lines.append(f"t={row.start:6.1f}s |{stacked}")
        lines.append(f"          |{'█' * agg_cells}  ({row.gap_pct:+.2f}%)")
    return "\n".join(lines)


def render_fig5(result: Fig5Result) -> str:
    """Fig. 5 as a per-interval table plus the gap summary."""
    headers = ["network", "t_start", "device_sum_mA", "aggregator_mA", "gap_%"]
    rows = [
        [row.network, row.start, row.device_sum_ma, row.aggregator_ma, row.gap_pct]
        for row in result.rows
    ]
    summary = (
        f"\ngap range: {result.min_gap_pct:.2f}% .. {result.max_gap_pct:.2f}% "
        f"(mean {result.mean_gap_pct:.2f}%)   [paper: 0.9% .. 8.2%]"
    )
    return render_table(headers, rows) + summary


def render_fig6(result: Fig6Result) -> str:
    """Fig. 6 as milestones plus an arrival-time sparkline."""
    lines = [
        "current of the mobile device as received at Aggregator 1:",
        "  " + sparkline(result.arrival_values, width=72),
        f"device disconnected from network 1 at t={result.left_network1_at:.1f}s",
        f"idle (transit) for {result.idle_s:.1f}s",
        f"device connected to network 2 at t={result.entered_network2_at:.1f}s",
        f"T_handshake = {result.handshake_s:.2f}s   [paper: 6s avg, 5.5-6.5s]",
        f"records backfilled from local storage: {result.buffered_records}",
    ]
    if result.first_forwarded_at is not None:
        lines.append(
            f"first data received from network 2 at t={result.first_forwarded_at:.2f}s"
        )
    return "\n".join(lines)


def render_handshake_stats(stats: HandshakeStats) -> str:
    """E3 one-liner in the paper's phrasing."""
    return (
        f"T_handshake over {stats.runs} runs: mean {stats.mean_s:.2f}s, "
        f"range {stats.min_s:.2f}-{stats.max_s:.2f}s   "
        "[paper: 6s avg, 5.5-6.5s over 15 runs]"
    )
