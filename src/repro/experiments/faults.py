"""Chaos experiments: delivery and billing integrity under faults.

The paper's claim under test: decentralized metering keeps billing
consistent *through* disconnection (§II-B buffering, Fig. 6 backfill).
These harnesses drive the fault subsystem (:mod:`repro.faults`) against
the paper testbed and measure the two quantities that matter:

* **report-delivery ratio** — distinct report sequences that reached
  the durable ledger over sequences measured, and
* **billing error** — relative gap between ledger energy and the energy
  the device actually metered.

Every run is deterministic for a given seed, faults included.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.experiments.sweeps import sweep
from repro.faults import FaultPlan
from repro.runtime import FaultSpec, build
from repro.workloads.scenarios import (
    Scenario,
    build_blackout_scenario,
    build_crash_scenario,
    paper_testbed_spec,
)


@dataclass
class DeviceDelivery:
    """Per-device delivery/billing outcome of one chaos run."""

    measured: int = 0
    delivered: int = 0
    duplicates: int = 0
    buffered_delivered: int = 0
    metered_mwh: float = 0.0
    ledger_mwh: float = 0.0
    store_dropped: int = 0
    retry_stats: dict[str, int] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        """Delivered over measured (1.0 for an idle device)."""
        if self.measured == 0:
            return 1.0
        return self.delivered / self.measured

    @property
    def billing_error(self) -> float:
        """|ledger - metered| / metered (0.0 for an idle device)."""
        if self.metered_mwh == 0.0:
            return 0.0
        return abs(self.ledger_mwh - self.metered_mwh) / self.metered_mwh


@dataclass
class ChaosResult:
    """Aggregate outcome of one fault-injected run."""

    seed: int
    devices: dict[str, DeviceDelivery] = field(default_factory=dict)
    fault_plan: list[dict] = field(default_factory=list)
    fault_counters: dict[str, int] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        """Fleet-wide delivered/measured."""
        measured = sum(d.measured for d in self.devices.values())
        delivered = sum(d.delivered for d in self.devices.values())
        return delivered / measured if measured else 1.0

    @property
    def billing_error(self) -> float:
        """Fleet-wide |ledger - metered| / metered."""
        metered = sum(d.metered_mwh for d in self.devices.values())
        ledger = sum(d.ledger_mwh for d in self.devices.values())
        return abs(ledger - metered) / metered if metered else 0.0

    @property
    def buffered_delivered(self) -> int:
        """Ledger records that arrived via the store-and-forward path."""
        return sum(d.buffered_delivered for d in self.devices.values())


def settle_and_measure(
    scenario: Scenario,
    plan: FaultPlan | None,
    run_s: float,
    drain_s: float = 25.0,
    seed: int = 0,
) -> ChaosResult:
    """Run to ``run_s``, stop sampling, drain, and score the ledger.

    Sampling stops at ``run_s`` so every measured report has ``drain_s``
    of fault-free time to ride its retries into a flushed block; what is
    still missing after that is genuinely lost.
    """
    if run_s <= 0:
        raise ExperimentError(f"run_s must be positive, got {run_s}")
    scenario.run_until(run_s)
    for device in scenario.devices.values():
        device.firmware.stop()
    scenario.run_until(run_s + drain_s)

    result = ChaosResult(seed=seed)
    if plan is not None:
        result.fault_plan = plan.describe()
        result.fault_counters = plan.counters.snapshot()
    for name, device in scenario.devices.items():
        outcome = DeviceDelivery(
            measured=device.sequences_issued,
            metered_mwh=device.meter.total_energy_mwh,
            store_dropped=device.store.dropped_total,
            retry_stats=device.retry_stats,
        )
        seen: set[int] = set()
        for record in scenario.chain.records_for_device(device.device_id.uid):
            sequence = int(record["sequence"])
            if sequence in seen:
                outcome.duplicates += 1
                continue
            seen.add(sequence)
            outcome.ledger_mwh += float(record["energy_mwh"])
            if record.get("buffered"):
                outcome.buffered_delivered += 1
        outcome.delivered = len(seen)
        result.devices[name] = outcome
    return result


def run_blackout_chaos(
    seed: int = 0,
    blackout_at: float = 10.0,
    blackout_s: float = 30.0,
    run_s: float = 60.0,
    retry: bool = True,
) -> ChaosResult:
    """The acceptance scenario: a link blackout covered by buffering."""
    scenario, plan = build_blackout_scenario(
        seed=seed, blackout_at=blackout_at, blackout_s=blackout_s, retry=retry
    )
    return settle_and_measure(scenario, plan, run_s, seed=seed)


def run_crash_chaos(
    seed: int = 0,
    crash_at: float = 10.0,
    outage_s: float = 15.0,
    run_s: float = 60.0,
    retry: bool = True,
) -> ChaosResult:
    """Aggregator crash+restart; ledger-vouched re-registration recovers."""
    scenario, plan = build_crash_scenario(
        seed=seed, crash_at=crash_at, outage_s=outage_s, retry=retry
    )
    return settle_and_measure(scenario, plan, run_s, seed=seed)


@dataclass
class SweepPoint:
    """Delivery/billing outcome at one fault intensity."""

    intensity: float
    retry: bool
    delivery_ratio: float
    billing_error: float
    report_timeouts: int


def _fault_sweep_point(
    intensity: float, seed: int, run_s: float, retry: bool
) -> dict[str, float | int]:
    """One broker-noise run at ``intensity`` (module-level: sweeps pickle
    this into worker processes)."""
    if not 0.0 <= intensity < 1.0:
        raise ExperimentError(f"intensity must be in [0, 1), got {intensity}")
    spec = paper_testbed_spec(
        seed=seed,
        device_retry=retry,
        name="paper-testbed-broker-noise",
        faults=tuple(
            FaultSpec(
                kind="broker_noise",
                name=f"{agg_name}-loss",
                start_at=0.0,
                target=agg_name,
                params={"drop_p": intensity * 0.7, "corrupt_p": intensity * 0.3},
            )
            for agg_name in ("agg1", "agg2")
        ),
    )
    scenario = build(spec)
    result = settle_and_measure(scenario, scenario.fault_plan, run_s, seed=seed)
    return {
        "delivery_ratio": result.delivery_ratio,
        "billing_error": result.billing_error,
        "report_timeouts": sum(
            d.retry_stats.get("report_timeouts", 0)
            for d in result.devices.values()
        ),
    }


def run_fault_sweep(
    intensities: list[float],
    seed: int = 0,
    run_s: float = 30.0,
    retry: bool = True,
    workers: int = 1,
    obs_dir: str | None = None,
) -> list[SweepPoint]:
    """Sweep broker-side message loss and score delivery each time.

    ``intensity`` is the probability any broker-routed message (report
    up, Ack down) is dropped or corrupted — the regime where QoS-1
    *thinks* it delivered, which only the Ack-timeout retry path can
    recover.  ``workers`` > 1 runs intensities across a process pool;
    results are identical to a serial sweep for any worker count.
    ``obs_dir`` captures per-point observability artifacts (see
    :func:`repro.experiments.sweeps.sweep`).
    """
    if not intensities:
        return []
    _, rows = sweep(
        _fault_sweep_point,
        [
            {"intensity": intensity, "seed": seed, "run_s": run_s, "retry": retry}
            for intensity in intensities
        ],
        columns=["delivery_ratio", "billing_error", "report_timeouts"],
        workers=workers,
        obs_dir=obs_dir,
    )
    return [
        SweepPoint(
            intensity=intensity,
            retry=retry,
            delivery_ratio=delivery_ratio,
            billing_error=billing_error,
            report_timeouts=report_timeouts,
        )
        for (intensity, _seed, _run_s, _retry,
             delivery_ratio, billing_error, report_timeouts) in rows
    ]
