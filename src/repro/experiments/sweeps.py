"""Generic parameter-sweep helper for experiments.

A sweep maps a parameter grid over a run function and collects rows —
the pattern every ablation repeats.  Kept tiny and explicit: a sweep is
data (list of dicts) in, table (list of rows) out.

Sweeps parallelise across processes with ``workers=N``.  Each point is
an independent simulation constructed entirely from its parameters, so
executing points in separate interpreters cannot change any result; the
collector walks futures in submission order, which makes the output
table byte-identical to a serial run for every worker count.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ExperimentError
from repro.sim.rng import RngStreams

RunFn = Callable[..., dict[str, Any]]


def grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as a list of parameter dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        raise ExperimentError("a grid needs at least one axis")
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def seeded(
    points: list[dict[str, Any]], master_seed: int, key: str = "seed"
) -> list[dict[str, Any]]:
    """Copy of ``points`` with a derived per-point seed added under ``key``.

    Seeds come from :meth:`RngStreams.fork` keyed by point index, so a
    multi-run sweep gets independent randomness per point while staying
    a pure function of ``(master_seed, index)`` — the assignment cannot
    depend on which worker executes the point or in what order.
    """
    streams = RngStreams(master_seed)
    out = []
    for index, point in enumerate(points):
        if key in point:
            raise ExperimentError(f"point {index} already has a {key!r} parameter")
        forked = streams.fork(f"point:{index}")
        out.append({**point, key: forked.master_seed})
    return out


def _point_dir(obs_dir: str | Path, index: int) -> Path:
    # Zero-padded so lexical directory order equals point order.
    return Path(obs_dir) / f"point-{index:04d}"


def _run_point_observed(
    run: RunFn, obs_dir: str, index: int, point: dict[str, Any]
) -> dict[str, Any]:
    """Run one sweep point under an obs capture session.

    Module-level so the process pool can pickle it.  Every world the
    point builds is instrumented and written to ``obs_dir/point-<i>``.
    """
    from repro.obs import capture
    from repro.runtime import ObsSpec

    with capture(ObsSpec(enabled=True)) as session:
        result = run(**point)
    session.write(_point_dir(obs_dir, index))
    return result


def _collect_serial(
    run: RunFn, points: list[dict[str, Any]], obs_dir: str | Path | None
) -> list[Any]:
    if obs_dir is None:
        return [run(**point) for point in points]
    return [
        _run_point_observed(run, str(obs_dir), index, point)
        for index, point in enumerate(points)
    ]


def _collect_parallel(
    run: RunFn,
    points: list[dict[str, Any]],
    workers: int,
    obs_dir: str | Path | None,
) -> list[Any]:
    # Futures are drained in submission order, never as-completed: the
    # table must not depend on scheduling.  ``run`` has to be a
    # module-level callable (pickled by qualified name into workers).
    results: list[Any] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if obs_dir is None:
            futures = [pool.submit(run, **point) for point in points]
        else:
            futures = [
                pool.submit(_run_point_observed, run, str(obs_dir), index, point)
                for index, point in enumerate(points)
            ]
        for point, future in zip(points, futures):
            try:
                results.append(future.result())
            except ExperimentError:
                raise
            except BaseException as exc:
                raise ExperimentError(
                    f"sweep point {point!r} failed in worker: {exc!r}"
                ) from exc
    return results


def sweep(
    run: RunFn,
    points: list[dict[str, Any]],
    columns: list[str] | None = None,
    workers: int | None = 1,
    obs_dir: str | Path | None = None,
) -> tuple[list[str], list[list[Any]]]:
    """Run ``run(**point)`` for every point; tabulate parameters+results.

    ``run`` returns a dict of result values; the output table has one
    row per point with parameter columns first, result columns after.
    ``columns`` restricts/orders the result columns (default: keys of
    the first result, sorted).  ``workers`` > 1 fans points out over a
    process pool (``run`` must then be picklable, i.e. module-level);
    ``workers=None`` autodetects the CPUs this process may be scheduled
    on.  Results are collected in point order, so the table is
    identical for any worker count.  A point whose run raises (or whose worker dies)
    aborts the sweep with an :class:`ExperimentError` naming the point.

    ``obs_dir`` captures observability artifacts: each point writes
    ``obs_dir/point-<i>/`` and those merge into ``obs_dir`` itself in
    point order, identically for any worker count.
    """
    if not points:
        raise ExperimentError("sweep needs at least one point")
    if workers is None:
        # Autodetect: the CPUs this process may actually run on (an
        # affinity-restricted container is narrower than cpu_count).
        from repro.parallel import available_cpus

        workers = available_cpus()
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    param_names = list(points[0])
    for point in points:
        if list(point) != param_names:
            raise ExperimentError(
                f"inconsistent sweep point keys: {list(point)} != {param_names}"
            )
    if workers == 1:
        results = _collect_serial(run, points, obs_dir)
    else:
        results = _collect_parallel(run, points, workers, obs_dir)
    if obs_dir is not None:
        from repro.obs import merge_artifact_dirs

        merge_artifact_dirs(
            [_point_dir(obs_dir, index) for index in range(len(points))], obs_dir
        )

    rows: list[list[Any]] = []
    result_names: list[str] | None = list(columns) if columns else None
    for point, result in zip(points, results):
        if not isinstance(result, dict):
            raise ExperimentError("run function must return a dict of results")
        if result_names is None:
            result_names = sorted(result)
        rows.append(
            [point[name] for name in param_names]
            + [result.get(name) for name in result_names]
        )
    return param_names + (result_names or []), rows
