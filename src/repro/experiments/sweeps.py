"""Generic parameter-sweep helper for experiments.

A sweep maps a parameter grid over a run function and collects rows —
the pattern every ablation repeats.  Kept tiny and explicit: a sweep is
data (list of dicts) in, table (list of rows) out.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

from repro.errors import ExperimentError

RunFn = Callable[..., dict[str, Any]]


def grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as a list of parameter dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        raise ExperimentError("a grid needs at least one axis")
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def sweep(
    run: RunFn,
    points: list[dict[str, Any]],
    columns: list[str] | None = None,
) -> tuple[list[str], list[list[Any]]]:
    """Run ``run(**point)`` for every point; tabulate parameters+results.

    ``run`` returns a dict of result values; the output table has one
    row per point with parameter columns first, result columns after.
    ``columns`` restricts/orders the result columns (default: keys of
    the first result, sorted).
    """
    if not points:
        raise ExperimentError("sweep needs at least one point")
    rows: list[list[Any]] = []
    param_names = list(points[0])
    result_names: list[str] | None = list(columns) if columns else None
    for point in points:
        if list(point) != param_names:
            raise ExperimentError(
                f"inconsistent sweep point keys: {list(point)} != {param_names}"
            )
        result = run(**point)
        if not isinstance(result, dict):
            raise ExperimentError("run function must return a dict of results")
        if result_names is None:
            result_names = sorted(result)
        rows.append(
            [point[name] for name in param_names]
            + [result.get(name) for name in result_names]
        )
    return param_names + (result_names or []), rows
