"""Experiment harnesses.

One module per paper artifact (see DESIGN.md §4):

* :mod:`repro.experiments.fig5` — E1, decentralized vs centralized
  metering accuracy,
* :mod:`repro.experiments.fig6` — E2/E3, the mobility timeline and the
  ``T_handshake`` distribution,
* :mod:`repro.experiments.ablations` — A1 (error attribution), A2
  (handshake stages), A3 (storage), A6 (anomaly detection),
* :mod:`repro.experiments.faults` — chaos runs (blackout, crash,
  fault-intensity sweep) scoring delivery ratio and billing error,
* :mod:`repro.experiments.report` — text rendering of all results.
"""

from repro.experiments.ablations import (
    run_anomaly_ablation,
    run_handshake_stage_ablation,
    run_sensor_ablation,
    run_storage_ablation,
)
from repro.experiments.faults import (
    ChaosResult,
    DeviceDelivery,
    SweepPoint,
    run_blackout_chaos,
    run_crash_chaos,
    run_fault_sweep,
    settle_and_measure,
)
from repro.experiments.fig5 import Fig5Result, IntervalRow, run_fig5
from repro.experiments.fig6 import (
    Fig6Result,
    HandshakeStats,
    run_fig6,
    run_handshake_distribution,
)
from repro.experiments.report import render_fig5, render_fig6, render_table

__all__ = [
    "Fig5Result",
    "IntervalRow",
    "run_fig5",
    "Fig6Result",
    "HandshakeStats",
    "run_fig6",
    "run_handshake_distribution",
    "run_anomaly_ablation",
    "run_handshake_stage_ablation",
    "run_sensor_ablation",
    "run_storage_ablation",
    "ChaosResult",
    "DeviceDelivery",
    "SweepPoint",
    "run_blackout_chaos",
    "run_crash_chaos",
    "run_fault_sweep",
    "settle_and_measure",
    "render_fig5",
    "render_fig6",
    "render_table",
]
