"""Experiments E2/E3 — Fig. 6: device mobility and ``T_handshake``.

E2 reproduces the timeline at Aggregator 1 while ``device1`` moves from
network 1 to network 2: live reporting, the idle (transit) gap, local
buffering during the handshake, then the buffered + live data arriving
from Aggregator 2 over the backhaul.

E3 reproduces the paper's statistic: temporary-membership registration
took 6 s on average, ranging 5.5-6.5 s over 15 runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.runtime import build
from repro.workloads.mobility import MobilityTrace
from repro.workloads.scenarios import paper_testbed_spec


@dataclass
class Fig6Result:
    """Timeline and milestones of one mobility run.

    Attributes:
        arrival_times / arrival_values: The current of the mobile device
            as *received at Aggregator 1* over (arrival) time — directly
            comparable to the paper's figure.
        consumption_times / consumption_values: The same records keyed
            by their measurement timestamps (shows the consumption that
            happened during the handshake, backfilled).
        left_network1_at: When the device disconnected from network 1.
        entered_network2_at: When it electrically attached in network 2.
        idle_s: The transit gap (no consumption).
        handshake_s: Temporary-membership establishment time.
        buffered_records: Records served from local storage.
        first_forwarded_at: When Aggregator 1 first received data via
            Aggregator 2 ("Device data received from Network 2").
    """

    arrival_times: list[float] = field(default_factory=list)
    arrival_values: list[float] = field(default_factory=list)
    consumption_times: list[float] = field(default_factory=list)
    consumption_values: list[float] = field(default_factory=list)
    left_network1_at: float = 0.0
    entered_network2_at: float = 0.0
    idle_s: float = 0.0
    handshake_s: float = 0.0
    buffered_records: int = 0
    first_forwarded_at: float | None = None


def run_fig6(
    seed: int = 0,
    phase1_s: float = 20.0,
    idle_s: float = 10.0,
    phase2_s: float = 25.0,
    device_name: str = "device1",
) -> Fig6Result:
    """Regenerate the Fig. 6 mobility timeline.

    The mobile device spends ``phase1_s`` in its home network, transits
    for ``idle_s``, then operates in network 2 for ``phase2_s``.
    """
    if min(phase1_s, idle_s, phase2_s) <= 0:
        raise ExperimentError("all phases must be positive")
    scenario = build(paper_testbed_spec(seed=seed, enter_devices=False))
    # Stationary devices enter their homes normally.
    scenario.enter_at("device2", "agg1", 0.0)
    scenario.enter_at("device3", "agg2", 0.0)
    scenario.enter_at("device4", "agg2", 0.0)
    scenario.schedule_mobility(
        device_name,
        MobilityTrace.single_move(
            home="agg1",
            destination="agg2",
            enter_home_at=0.0,
            leave_home_at=phase1_s,
            idle_s=idle_s,
        ),
    )
    end_time = phase1_s + idle_s + phase2_s
    scenario.run_until(end_time)

    device = scenario.device(device_name)
    agg1 = scenario.aggregator("agg1")
    result = Fig6Result(
        left_network1_at=phase1_s,
        entered_network2_at=phase1_s + idle_s,
        idle_s=idle_s,
    )
    series_name = f"received:{device_name}"
    if series_name in agg1.monitoring:
        series = agg1.monitoring[series_name]
        result.arrival_times = series.times
        result.arrival_values = series.values

    # Consumption keyed by measurement time, from the ledger.
    records = sorted(
        scenario.chain.records_for_device(device.device_id.uid),
        key=lambda r: float(r["measured_at"]),
    )
    result.consumption_times = [float(r["measured_at"]) for r in records]
    result.consumption_values = [float(r["current_ma"]) for r in records]
    result.buffered_records = sum(1 for r in records if r.get("buffered"))

    handshake = device.last_handshake
    if handshake is None or handshake.duration_s is None:
        raise ExperimentError("mobile device never completed the network-2 handshake")
    if not handshake.temporary:
        raise ExperimentError("network-2 handshake did not grant a temporary membership")
    result.handshake_s = handshake.duration_s

    forwarded = [
        t
        for t, _ in zip(result.arrival_times, result.arrival_values)
        if t > result.entered_network2_at
    ]
    result.first_forwarded_at = min(forwarded) if forwarded else None
    return result


@dataclass(frozen=True)
class HandshakeStats:
    """E3: the ``T_handshake`` distribution over repeated runs."""

    samples: tuple[float, ...]

    @property
    def mean_s(self) -> float:
        """Average handshake time (paper: ~6 s)."""
        return float(np.mean(self.samples))

    @property
    def min_s(self) -> float:
        """Fastest handshake (paper: 5.5 s)."""
        return float(min(self.samples))

    @property
    def max_s(self) -> float:
        """Slowest handshake (paper: 6.5 s)."""
        return float(max(self.samples))

    @property
    def runs(self) -> int:
        """Number of runs measured."""
        return len(self.samples)


def run_handshake_distribution(
    runs: int = 15,
    base_seed: int = 0,
    phase1_s: float = 12.0,
    idle_s: float = 5.0,
    settle_s: float = 12.0,
) -> HandshakeStats:
    """Measure ``T_handshake`` over ``runs`` independent seeded runs.

    Each run uses a lighter world (only the mobile device enters) since
    stationary traffic does not affect the handshake path.
    """
    if runs < 1:
        raise ExperimentError(f"need at least one run, got {runs}")
    samples: list[float] = []
    for index in range(runs):
        scenario = build(
            paper_testbed_spec(seed=base_seed + 1000 * index, enter_devices=False)
        )
        scenario.schedule_mobility(
            "device1",
            MobilityTrace.single_move(
                home="agg1",
                destination="agg2",
                enter_home_at=0.0,
                leave_home_at=phase1_s,
                idle_s=idle_s,
            ),
        )
        scenario.run_until(phase1_s + idle_s + settle_s)
        handshake = scenario.device("device1").last_handshake
        if handshake is None or handshake.duration_s is None or not handshake.temporary:
            raise ExperimentError(f"run {index}: temporary handshake did not complete")
        samples.append(handshake.duration_s)
    return HandshakeStats(samples=tuple(samples))
