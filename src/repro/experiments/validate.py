"""Reproduction self-check.

``repro-experiments validate`` runs a compressed version of every
headline claim and reports pass/fail per check — the fastest way to
confirm an installation reproduces the paper before trusting longer
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chain import Block, audit_chain
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6, run_handshake_distribution


@dataclass(frozen=True)
class CheckResult:
    """One self-check outcome."""

    name: str
    passed: bool
    detail: str


def _check_fig5() -> CheckResult:
    result = run_fig5(seed=0, duration_s=30.0, warmup_s=12.0)
    passed = result.mean_gap_pct > 0.5 and result.max_gap_pct < 12.0
    return CheckResult(
        "fig5: aggregator reads above device sum",
        passed,
        f"gap {result.min_gap_pct:.2f}..{result.max_gap_pct:.2f}% "
        f"(mean {result.mean_gap_pct:.2f}%), paper 0.9..8.2%",
    )


def _check_fig6() -> CheckResult:
    result = run_fig6(seed=0, phase1_s=12.0, idle_s=5.0, phase2_s=15.0)
    passed = (
        5.0 < result.handshake_s < 7.0
        and result.buffered_records > 0
        and result.first_forwarded_at is not None
    )
    return CheckResult(
        "fig6: mobility with buffering and forwarding",
        passed,
        f"T_handshake {result.handshake_s:.2f}s, "
        f"{result.buffered_records} records backfilled",
    )


def _check_handshake() -> CheckResult:
    stats = run_handshake_distribution(runs=5, base_seed=0)
    passed = 5.0 < stats.mean_s < 7.0
    return CheckResult(
        "T_handshake distribution",
        passed,
        f"mean {stats.mean_s:.2f}s range {stats.min_s:.2f}-{stats.max_s:.2f}s, "
        "paper 6s (5.5-6.5s)",
    )


def _check_tamper() -> CheckResult:
    from repro.runtime import build
    from repro.workloads.scenarios import paper_testbed_spec

    scenario = build(paper_testbed_spec(seed=2))
    scenario.run_until(8.0)
    chain = scenario.chain
    store = chain._store
    clean_before = audit_chain(chain).clean
    victim = store.get(1)
    forged = [dict(r) for r in victim.records]
    if forged:
        forged[0]["energy_mwh"] = 0.0
    store.tamper(1, Block(victim.header, tuple(forged), victim.block_hash))
    detected = not audit_chain(chain).clean
    return CheckResult(
        "ledger tamper detection",
        clean_before and detected,
        f"clean before: {clean_before}, mutation detected: {detected}",
    )


def _check_fraud() -> CheckResult:
    from repro.anomaly import ScalingAttack
    from repro.runtime import build
    from repro.workloads.scenarios import paper_testbed_spec

    scenario = build(paper_testbed_spec(seed=3))
    scenario.device("device1").tamper_attack = ScalingAttack(0.5)
    scenario.run_until(20.0)
    stats = scenario.aggregator("agg1").verifier.stats
    honest = scenario.aggregator("agg2").verifier.stats
    passed = stats.network_anomalies > 0 and honest.network_anomalies == 0
    return CheckResult(
        "complementary-measurement fraud detection",
        passed,
        f"fraud network flagged {stats.network_anomalies}/{stats.network_checks}, "
        f"honest {honest.network_anomalies}/{honest.network_checks}",
    )


CHECKS: dict[str, Callable[[], CheckResult]] = {
    "fig5": _check_fig5,
    "fig6": _check_fig6,
    "handshake": _check_handshake,
    "tamper": _check_tamper,
    "fraud": _check_fraud,
}


def run_validation() -> list[CheckResult]:
    """Run every self-check; failures never raise, they report."""
    results: list[CheckResult] = []
    for name, check in CHECKS.items():
        try:
            results.append(check())
        except Exception as exc:  # a crash is a failed check, with detail
            results.append(CheckResult(name, False, f"crashed: {exc}"))
    return results


def render_validation(results: list[CheckResult]) -> str:
    """Human-readable pass/fail report."""
    lines = []
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        lines.append(f"[{mark}] {result.name}\n       {result.detail}")
    passed = sum(r.passed for r in results)
    lines.append(f"\n{passed}/{len(results)} checks passed")
    return "\n".join(lines)
