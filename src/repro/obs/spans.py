"""Span-based structured tracing for protocol conversations.

A :class:`Span` covers one protocol conversation — a membership
handshake, a roaming verification, a report→verdict→ledger append, a
backhaul forward — with sim-time ``start``/``end``, an outcome
``status`` and free-form tags.  Spans form a tree through
``parent_id``, so a roaming verify started while processing a
sequence-2 registration shows up as a child of that registration.

The tracer follows the :class:`~repro.sim.tracing.TraceRecorder`
zero-overhead idiom: a disabled tracer swaps its methods for no-ops at
construction time, so instrumented code pays one attribute lookup and a
C-level call — or, on the hottest paths, just an ``enabled`` attribute
check.  This module deliberately imports nothing from ``repro.sim`` or
``repro.runtime`` (the kernel imports *it*), and the clock is
duck-typed: anything with a ``now`` attribute works.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, TextIO


class Span:
    """One recorded conversation: identity, interval, outcome, tags."""

    __slots__ = ("span_id", "parent_id", "name", "actor", "start", "end", "status", "tags")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        actor: str,
        start: float,
        tags: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.actor = actor
        self.start = start
        self.end: float | None = None
        self.status: str | None = None
        self.tags: dict[str, Any] = tags if tags is not None else {}

    @property
    def duration(self) -> float | None:
        """Sim-time duration, or ``None`` while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "actor": self.actor,
            "start": self.start,
            "end": self.end,
            "status": self.status if self.status is not None else "open",
            "tags": self.tags,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.span_id} {self.name!r} actor={self.actor!r} "
            f"[{self.start}..{self.end}] {self.status or 'open'})"
        )


#: Shared sentinel returned by a disabled tracer.  Instrumented code can
#: hold and "finish" it freely; it never records anything.
NOOP_SPAN = Span(0, None, "noop", "", 0.0)
NOOP_SPAN.end = 0.0
NOOP_SPAN.status = "noop"


def _begin_disabled(
    name: str, actor: str, parent: Span | None = None, **tags: Any
) -> Span:
    return NOOP_SPAN


def _finish_disabled(span: Span, status: str = "ok", **tags: Any) -> None:
    return None


def _event_disabled(name: str, actor: str, status: str = "ok", **tags: Any) -> Span:
    return NOOP_SPAN


class SpanTracer:
    """Records spans against a simulation clock.

    ``enabled`` is a plain attribute (not a property) so hot paths can
    guard instrumentation with a single attribute read.
    """

    def __init__(self, clock: Any, enabled: bool = True) -> None:
        self.enabled = enabled
        self._clock = clock
        self._next_id = 1
        self._spans: list[Span] = []
        if not enabled:
            # Same trick as TraceRecorder: replace the bound methods so
            # disabled tracing costs one no-op call, no branches.
            self.begin = _begin_disabled  # type: ignore[method-assign]
            self.finish = _finish_disabled  # type: ignore[method-assign]
            self.event = _event_disabled  # type: ignore[method-assign]

    def begin(
        self, name: str, actor: str, parent: Span | None = None, **tags: Any
    ) -> Span:
        """Open a span at the current sim time; returns the handle."""
        span = Span(
            self._next_id,
            parent.span_id if parent is not None and parent.span_id else None,
            name,
            actor,
            self._clock.now,
            tags if tags else None,
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def finish(self, span: Span, status: str = "ok", **tags: Any) -> None:
        """Close ``span`` with an outcome.  Idempotent: duplicated
        deliveries may race to finish the same span; the first wins."""
        if span.end is not None:
            return
        span.end = self._clock.now
        span.status = status
        if tags:
            span.tags.update(tags)

    def event(self, name: str, actor: str, status: str = "ok", **tags: Any) -> Span:
        """Record a zero-duration span (a point event, e.g. a transport
        send) at the current sim time."""
        span = self.begin(name, actor, **tags)
        span.end = span.start
        span.status = status
        return span

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self._spans if s.name == name]

    def by_actor(self, actor: str) -> list[Span]:
        return [s for s in self._spans if s.actor == actor]

    def roots(self) -> list[Span]:
        return [s for s in self._spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def open_spans(self) -> list[Span]:
        return [s for s in self._spans if s.end is None]

    # -- export --------------------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self._spans]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(d, sort_keys=True, default=str) + "\n" for d in self.to_dicts()
        )

    def save_jsonl(self, fileobj: TextIO) -> int:
        text = self.to_jsonl()
        fileobj.write(text)
        return len(self._spans)


#: Shared always-off tracer, for components constructed without a
#: simulator (isolated unit tests with stub meshes).  A disabled tracer
#: never reads its clock, so ``None`` is safe here.
DISABLED_TRACER = SpanTracer(None, enabled=False)
