"""Unified metrics registry fronting ``CounterBank`` and ``SeriesBank``.

The monitoring layer grew two unrelated stores: monotonic event
counters (:class:`~repro.monitoring.counters.CounterBank`) and sampled
time series (:class:`~repro.monitoring.timeseries.SeriesBank`).  The
registry presents both through one facade and exports them in two
machine-readable formats:

* Prometheus text exposition (``to_prometheus``) — three metric
  families: ``repro_counter`` (counter), ``repro_series_last`` and
  ``repro_series_samples`` (gauges), each keyed by a ``name`` label so
  the dynamic counter namespace does not explode the metric-family
  namespace.
* JSONL (``to_jsonl``) — one self-describing record per counter/series,
  the format the run-artifact merge tooling consumes.

Output is deterministic: entries are sorted by name, collisions between
registered banks sum (counters) or concatenate (series).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.counters import CounterBank
    from repro.monitoring.timeseries import SeriesBank

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value: float) -> str:
    # Non-finite samples must use the exposition-format spellings
    # (+Inf/-Inf/NaN) — Python's inf/nan are not parseable Prometheus
    # text.  Integral floats print as integers; everything else uses
    # repr, which round-trips and is stable across runs.
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Aggregates counter banks and series banks behind one export."""

    def __init__(self) -> None:
        self._counter_banks: list[tuple[str, CounterBank]] = []
        self._series_banks: list[tuple[str, SeriesBank]] = []

    def add_counters(self, bank: CounterBank, prefix: str = "") -> None:
        self._counter_banks.append((prefix, bank))

    def add_series(self, bank: SeriesBank, prefix: str = "") -> None:
        self._series_banks.append((prefix, bank))

    # -- snapshots -----------------------------------------------------

    def counter_values(self) -> dict[str, int]:
        """All counters, prefixed, summed on name collision, sorted."""
        merged: dict[str, int] = {}
        for prefix, bank in self._counter_banks:
            for name, value in bank.snapshot().items():
                key = prefix + name
                merged[key] = merged.get(key, 0) + value
        return dict(sorted(merged.items()))

    def series_entries(self) -> list[dict[str, Any]]:
        """One record per series: name, unit, sample count, last value."""
        entries: list[dict[str, Any]] = []
        for prefix, bank in self._series_banks:
            for name in bank.names:
                series = bank[name]
                times = series.times
                entries.append(
                    {
                        "name": prefix + name,
                        "unit": series.unit,
                        "samples": len(series),
                        "last_time": times[-1] if times else None,
                        "last_value": series.last_value(),
                    }
                )
        entries.sort(key=lambda e: e["name"])
        return entries

    # -- exports -------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, deterministic ordering."""
        return render_prometheus(self.counter_values(), self.series_entries())

    def to_records(self) -> list[dict[str, Any]]:
        return render_records(self.counter_values(), self.series_entries())

    def to_jsonl(self) -> str:
        return render_jsonl(self.counter_values(), self.series_entries())


def render_prometheus(
    counters: dict[str, int], series: list[dict[str, Any]]
) -> str:
    """Render already-snapshotted metrics as Prometheus text.

    Shared by the registry and the artifact merge tooling (which
    re-renders merged snapshots without the original banks).
    """
    lines: list[str] = []
    lines.append("# HELP repro_counter Monotonic event counters from the run.")
    lines.append("# TYPE repro_counter counter")
    for name, value in sorted(counters.items()):
        lines.append(f'repro_counter{{name="{_escape_label(name)}"}} {value}')
    ordered = sorted(series, key=lambda e: e["name"])
    lines.append("# HELP repro_series_last Last recorded value per time series.")
    lines.append("# TYPE repro_series_last gauge")
    for entry in ordered:
        if entry["last_value"] is None:
            continue
        label = f'name="{_escape_label(entry["name"])}"'
        if entry.get("unit"):
            label += f',unit="{_escape_label(entry["unit"])}"'
        lines.append(f"repro_series_last{{{label}}} {_format_value(entry['last_value'])}")
    lines.append("# HELP repro_series_samples Samples recorded per time series.")
    lines.append("# TYPE repro_series_samples gauge")
    for entry in ordered:
        label = f'name="{_escape_label(entry["name"])}"'
        lines.append(f"repro_series_samples{{{label}}} {entry['samples']}")
    return "\n".join(lines) + "\n"


def render_records(
    counters: dict[str, int], series: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    """The ``metrics.jsonl`` records for snapshotted metrics."""
    records: list[dict[str, Any]] = [
        {"kind": "counter", "name": name, "value": value}
        for name, value in sorted(counters.items())
    ]
    for entry in sorted(series, key=lambda e: e["name"]):
        records.append({"kind": "series", **entry})
    return records


def render_jsonl(counters: dict[str, int], series: list[dict[str, Any]]) -> str:
    import json

    return "".join(
        json.dumps(record, sort_keys=True) + "\n"
        for record in render_records(counters, series)
    )
