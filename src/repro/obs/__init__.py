"""Observability: spans, unified metrics, kernel profiling, artifacts.

The reproduction's answer to the testbed's Grafana: a cross-cutting
layer that records *protocol conversations* as parent/child spans
(:mod:`repro.obs.spans`), fronts the counter and series banks with one
exporting registry (:mod:`repro.obs.metrics`), times the kernel's event
loop per actor and event type (:mod:`repro.obs.profiler`), and packages
a run into a self-contained artifact directory — ``spans.jsonl``,
``metrics.prom``, ``metrics.jsonl``, ``profile.json``, ``manifest.json``
(:mod:`repro.obs.artifacts`, validated by :mod:`repro.obs.validate`).

Everything defaults to off and is engineered for zero overhead when
disabled: the span tracer method-swaps to no-ops, and the kernel checks
for a profiler once per run call, not per event.

Import-graph note: the kernel imports :mod:`repro.obs.spans`, so this
package sits *below* ``repro.sim`` and must not import it (or
``repro.runtime``) at module level.
"""

from repro.obs.artifacts import (
    ArtifactBundle,
    RunArtifact,
    collect_scenario,
    merge_artifact_dirs,
    merge_profiles,
    read_bundle,
    write_artifacts,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import KernelProfiler
from repro.obs.session import ObsSession, active, capture
from repro.obs.spans import Span, SpanTracer
from repro.obs.validate import validate_artifact_dir

__all__ = [
    "ArtifactBundle",
    "KernelProfiler",
    "MetricsRegistry",
    "ObsSession",
    "RunArtifact",
    "Span",
    "SpanTracer",
    "active",
    "capture",
    "collect_scenario",
    "merge_artifact_dirs",
    "merge_profiles",
    "read_bundle",
    "validate_artifact_dir",
    "write_artifacts",
]
