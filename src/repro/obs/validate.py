"""Validate an ``--obs-dir`` artifact directory against ``schema.json``.

The schema is a deliberately small, hand-rolled dialect (the container
ships no ``jsonschema``): per file, a ``kind`` (``json`` — one
document; ``jsonl`` — one document per line; ``prom`` — Prometheus text
exposition) plus ``required``/``optional`` field→type maps.  Types are
``string`` / ``number`` / ``integer`` / ``boolean`` / ``array`` /
``object`` / ``null``, and a list of those means a union.  Fields not
named in the schema are allowed (the format may grow), missing required
fields and wrong types are errors.

CLI (used by CI)::

    PYTHONPATH=src python -m repro.obs.validate <artifact-dir>
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Any

SCHEMA_PATH = Path(__file__).with_name("schema.json")

# metric_name{labels} value  — the subset of the exposition format the
# registry emits (no timestamps, no exemplars).
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9eE+.-]*$"
)
_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "array": lambda v: isinstance(v, list),
    "object": lambda v: isinstance(v, dict),
    "null": lambda v: v is None,
}


def _type_ok(value: Any, expected: str | list[str]) -> bool:
    kinds = expected if isinstance(expected, list) else [expected]
    return any(_TYPE_CHECKS[kind](value) for kind in kinds)


def _check_fields(
    doc: Any, spec: dict[str, Any], where: str, errors: list[str]
) -> None:
    if not isinstance(doc, dict):
        errors.append(f"{where}: expected a JSON object, got {type(doc).__name__}")
        return
    for name, expected in spec.get("required", {}).items():
        if name not in doc:
            errors.append(f"{where}: missing required field {name!r}")
        elif not _type_ok(doc[name], expected):
            errors.append(
                f"{where}: field {name!r} should be {expected}, "
                f"got {type(doc[name]).__name__}"
            )
    for name, expected in spec.get("optional", {}).items():
        if name in doc and not _type_ok(doc[name], expected):
            errors.append(
                f"{where}: field {name!r} should be {expected}, "
                f"got {type(doc[name]).__name__}"
            )


def validate_artifact_dir(
    directory: str | Path, schema_path: str | Path = SCHEMA_PATH
) -> list[str]:
    """All schema violations in ``directory`` (empty list = valid)."""
    schema = json.loads(Path(schema_path).read_text())
    target = Path(directory)
    errors: list[str] = []
    if not target.is_dir():
        return [f"{target}: not a directory"]
    for filename, spec in schema["files"].items():
        path = target / filename
        if not path.is_file():
            errors.append(f"{filename}: missing")
            continue
        kind = spec["kind"]
        if kind == "json":
            try:
                doc = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                errors.append(f"{filename}: invalid JSON ({exc})")
                continue
            _check_fields(doc, spec, filename, errors)
        elif kind == "jsonl":
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"{filename}:{lineno}: invalid JSON ({exc})")
                    continue
                _check_fields(doc, spec, f"{filename}:{lineno}", errors)
        elif kind == "prom":
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                if not line or line.startswith("#"):
                    continue
                if not _PROM_SAMPLE.match(line):
                    errors.append(
                        f"{filename}:{lineno}: not a Prometheus sample: {line!r}"
                    )
        else:  # pragma: no cover - schema.json is checked in
            errors.append(f"{filename}: unknown schema kind {kind!r}")
    manifest = target / "manifest.json"
    if manifest.is_file():
        try:
            declared = json.loads(manifest.read_text()).get("format")
            if declared != schema.get("format"):
                errors.append(
                    f"manifest.json: format {declared!r} != schema "
                    f"{schema.get('format')!r}"
                )
        except json.JSONDecodeError:
            pass  # already reported above
    return errors


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.validate <artifact-dir>", file=sys.stderr)
        return 2
    errors = validate_artifact_dir(args[0])
    for error in errors:
        print(f"INVALID {error}", file=sys.stderr)
    if not errors:
        print(f"{args[0]}: valid {json.loads(SCHEMA_PATH.read_text())['format']}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
