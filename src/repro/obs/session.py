"""Process-wide observability capture sessions.

The experiment stack funnels every world through
:func:`repro.runtime.build.build`, but its call signatures (experiment
runners, sweep workers, pool processes) don't thread an ``ObsSpec``.  A
*capture session* sidesteps that: :func:`capture` pushes a session onto
a module-level stack, ``build()`` consults :func:`active` and
force-enables observability for every world built inside the ``with``
block, and each built scenario registers itself so
:meth:`ObsSession.write` can emit one artifact directory for the whole
run — including runs that build several worlds.

Worker processes each get their own (empty) stack; the sweep/run_all
wrappers open a session inside the worker, write a per-worker artifact
directory, and the parent merges them in deterministic order.

This module deliberately has no ``repro.runtime``/``repro.sim`` imports
(it sits below the kernel in the import graph); the ``obs`` spec and
scenarios it holds are duck-typed.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.artifacts import collect_scenario, write_artifacts


class ObsSession:
    """One capture scope: the forced obs config + the worlds built in it."""

    def __init__(self, obs: Any) -> None:
        self.obs = obs
        self.scenarios: list[Any] = []

    def register(self, scenario: Any) -> None:
        self.scenarios.append(scenario)

    def write(self, directory: str | Path) -> dict[str, Path]:
        """Emit one artifact directory covering every registered world.

        A session that never built a world still writes a valid (empty)
        directory, so downstream tooling can rely on the layout.
        """
        return write_artifacts(
            directory, [collect_scenario(s) for s in self.scenarios]
        )


_ACTIVE: list[ObsSession] = []


def active() -> ObsSession | None:
    """The innermost capture session, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def capture(obs: Any) -> Iterator[ObsSession]:
    """Force-enable observability for every world built in this scope.

    Args:
        obs: The ``ObsSpec`` applied to worlds whose own spec leaves
            observability off (a spec's explicit ``obs`` block wins).
    """
    session = ObsSession(obs)
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.pop()
