"""Kernel profiling: where a run spends its wall-clock time.

The profiler owns an exact replica of :meth:`Simulator._execute`'s hot
loop with ``perf_counter`` wrapped around every callback.  The kernel
checks for an installed profiler **once per run call**, not once per
event, so the disabled configuration pays a single ``is not None`` test
per ``run_until``/``run`` — the BENCH regression gate verifies this
stays in the noise.

What it records, keyed by event label:

* count / total / max wall seconds per label,
* a power-of-two microsecond histogram per label (bucket ``b`` holds
  callbacks with ``2^(b-1) <= µs < 2^b``),
* periodic events-per-second samples (every ``sample_every`` events).

Snapshots aggregate labels two ways.  The **actor** is the label prefix
before the first ``:`` (labels follow ``"{actor}:{purpose}"``).  The
**event type** is the suffix, normalised so per-entity detail collapses:
an MQTT topic keeps only its last path segment, and backhaul routes
(``a->b``) collapse to ``send``.

Determinism note: wall-clock fields are inherently run-dependent; the
``events`` counts are deterministic.  Artifact merge tooling relies only
on the latter.
"""

from __future__ import annotations

from heapq import heappop
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

HIST_BUCKETS = 32


class _LabelStats:
    __slots__ = ("count", "weighted", "total_s", "max_s", "hist")

    def __init__(self) -> None:
        self.count = 0
        self.weighted = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.hist = [0] * HIST_BUCKETS

    def add(self, elapsed: float, weight: int = 1) -> None:
        self.count += 1
        self.weighted += weight
        self.total_s += elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed
        bucket = int(elapsed * 1e6).bit_length()
        self.hist[bucket if bucket < HIST_BUCKETS else HIST_BUCKETS - 1] += 1

    def merge(self, other: "_LabelStats") -> None:
        self.count += other.count
        self.weighted += other.weighted
        self.total_s += other.total_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s
        for i, n in enumerate(other.hist):
            self.hist[i] += n

    def to_dict(self) -> dict[str, Any]:
        # Trim trailing empty buckets so artifacts stay readable.
        hist = self.hist
        top = HIST_BUCKETS
        while top > 0 and hist[top - 1] == 0:
            top -= 1
        payload = {
            "count": self.count,
            "total_s": round(self.total_s, 9),
            "max_s": round(self.max_s, 9),
            "hist_log2_us": hist[:top],
        }
        # Only weighted labels (cohort events standing in for many
        # device-equivalents) emit the extra key — unweighted profiles
        # keep their historical shape.
        if self.weighted != self.count:
            payload["weighted"] = self.weighted
        return payload


def _event_type(label: str) -> str:
    """Collapse a per-entity event label to its event type."""
    if not label:
        return "(unlabelled)"
    _, sep, suffix = label.partition(":")
    if not sep:
        return label
    if "->" in suffix:
        return "send"
    if "/" in suffix:
        return suffix.rsplit("/", 1)[-1]
    return suffix


class KernelProfiler:
    """Collects per-label wall-clock stats by running the kernel loop.

    Install with :meth:`Simulator.set_profiler`; remove by installing
    ``None``.  One profiler may span several ``run_until`` calls — the
    stats accumulate.
    """

    def __init__(self, sample_every: int = 10_000) -> None:
        self._sample_every = max(1, sample_every)
        self._by_label: dict[str, _LabelStats] = {}
        self._events = 0
        self._weighted_events = 0
        self._wall_s = 0.0
        self._samples: list[dict[str, Any]] = []
        self._weights: dict[str, Any] = {}

    @property
    def events(self) -> int:
        return self._events

    @property
    def weighted_events(self) -> int:
        """Device-equivalent event count (== :attr:`events` unless a
        weight provider inflated cohort events)."""
        return self._weighted_events

    def set_weight(self, label: str, provider: Any) -> None:
        """Register a per-event weight for ``label``.

        ``provider`` is a zero-arg callable returning how many
        device-equivalent events one callback with this label stands
        for (a vectorized cohort tick counts ``len(cohort)``, not 1).
        It is invoked *after* the callback returns, so it observes the
        post-event cohort size.  Pass ``None`` to unregister.
        """
        if provider is None:
            self._weights.pop(label, None)
        else:
            self._weights[label] = provider

    # -- the instrumented run loop -------------------------------------

    def execute(
        self,
        sim: "Simulator",
        end_time: float,
        max_events: int | None,
        guard: str,
    ) -> None:
        """Mirror of ``Simulator._execute`` with per-callback timing.

        Must preserve the kernel's exact semantics: cancelled-head pops,
        batched same-instant dispatch with a single clock write, the
        ``max_events`` guard, and the once-per-run ``_events_executed``
        flush in ``finally``.
        """
        heap = sim.queue._heap
        clock = sim.clock
        now = clock.now
        executed = 0
        executed_weight = 0
        by_label = self._by_label
        weights = self._weights
        sample_every = self._sample_every
        run_start = perf_counter()
        try:
            while heap:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if time > end_time:
                    break
                heappop(heap)
                if time != now:
                    clock.now = now = time
                executed += 1
                start = perf_counter()
                event.callback()
                elapsed = perf_counter() - start
                stats = by_label.get(event.label)
                if stats is None:
                    stats = by_label[event.label] = _LabelStats()
                if weights:
                    provider = weights.get(event.label)
                    weight = int(provider()) if provider is not None else 1
                else:
                    weight = 1
                executed_weight += weight
                stats.add(elapsed, weight)
                if executed % sample_every == 0:
                    wall = self._wall_s + (perf_counter() - run_start)
                    total = self._events + executed
                    self._samples.append(
                        {
                            "events": total,
                            "sim_time": now,
                            "wall_s": round(wall, 6),
                            "events_per_s": int(total / wall) if wall > 0 else 0,
                        }
                    )
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"{guard} exceeded max_events={max_events}; "
                        "suspected runaway event loop"
                    )
        finally:
            self._wall_s += perf_counter() - run_start
            self._events += executed
            self._weighted_events += executed_weight
            sim._events_executed += executed

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The ``profile.json`` payload: totals plus three breakdowns."""
        by_actor: dict[str, _LabelStats] = {}
        by_type: dict[str, _LabelStats] = {}
        for label, stats in self._by_label.items():
            actor = label.partition(":")[0] if label else "(unlabelled)"
            for key, table in ((actor, by_actor), (_event_type(label), by_type)):
                agg = table.get(key)
                if agg is None:
                    agg = table[key] = _LabelStats()
                agg.merge(stats)
        payload = {
            "enabled": True,
            "events": self._events,
            "wall_s": round(self._wall_s, 6),
            "events_per_s": int(self._events / self._wall_s) if self._wall_s > 0 else 0,
            "by_actor": {k: by_actor[k].to_dict() for k in sorted(by_actor)},
            "by_event_type": {k: by_type[k].to_dict() for k in sorted(by_type)},
            "by_label": {
                k: self._by_label[k].to_dict() for k in sorted(self._by_label)
            },
            "samples": list(self._samples),
        }
        if self._weighted_events != self._events:
            payload["weighted_events"] = self._weighted_events
            payload["weighted_events_per_s"] = (
                int(self._weighted_events / self._wall_s) if self._wall_s > 0 else 0
            )
        return payload
