"""Self-contained run artifact directories (``--obs-dir``).

One artifact directory describes one observed run (or a deterministic
merge of several):

* ``manifest.json`` — format tag, per-run provenance (name, seed, sim
  time, event count), file list.
* ``spans.jsonl`` — every recorded protocol-conversation span, one JSON
  object per line, in begin order.
* ``metrics.prom`` / ``metrics.jsonl`` — the
  :class:`~repro.obs.metrics.MetricsRegistry` exports.
* ``profile.json`` — the kernel profiler snapshot (``{"enabled":
  false}`` when profiling was off).

Merging is deterministic given the input directory order: spans
concatenate with a ``part`` index, counters sum by name, series entries
are namespaced ``part<i>.``, and profile stats sum (max of maxes).
Wall-clock numbers in ``profile.json`` vary run to run by nature; the
event counts and everything else in the directory are reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry, render_jsonl, render_prometheus

FORMAT = "repro-obs/1"
FILES = ("manifest.json", "spans.jsonl", "metrics.prom", "metrics.jsonl", "profile.json")


@dataclass
class RunArtifact:
    """Everything observable collected from one finished scenario."""

    name: str
    seed: int
    sim_time: float
    events: int
    spans: list[dict[str, Any]]
    counters: dict[str, int]
    series: list[dict[str, Any]]
    profile: dict[str, Any]

    def run_entry(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "sim_time": self.sim_time,
            "events": self.events,
            "spans": len(self.spans),
        }


def collect_scenario(scenario: Any) -> RunArtifact:
    """Snapshot a (typically finished) scenario into a :class:`RunArtifact`.

    ``scenario`` is duck-typed (this module must not import
    ``repro.runtime``): anything with ``simulator``, ``counters``,
    ``aggregators`` and optionally ``spec``/``master_seed`` works.
    """
    sim = scenario.simulator
    registry = MetricsRegistry()
    counters = getattr(scenario, "counters", None)
    if counters is not None:
        registry.add_counters(counters)
    for name, unit in getattr(scenario, "aggregators", {}).items():
        monitoring = getattr(unit, "monitoring", None)
        if monitoring is not None:
            registry.add_series(monitoring, prefix=f"{name}.")
    profiler = getattr(sim, "profiler", None)
    spec = getattr(scenario, "spec", None)
    return RunArtifact(
        name=spec.name if spec is not None else "scenario",
        seed=getattr(scenario, "master_seed", 0),
        sim_time=sim.now,
        events=sim.events_executed,
        spans=sim.spans.to_dicts(),
        counters=registry.counter_values(),
        series=registry.series_entries(),
        profile=profiler.snapshot() if profiler is not None else {"enabled": False},
    )


@dataclass
class ArtifactBundle:
    """The written form of one artifact directory, before serialization."""

    spans: list[dict[str, Any]] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    series: list[dict[str, Any]] = field(default_factory=list)
    profile: dict[str, Any] = field(default_factory=lambda: {"enabled": False})
    runs: list[dict[str, Any]] = field(default_factory=list)
    merged_from: list[str] = field(default_factory=list)


def bundle_artifacts(artifacts: list[RunArtifact]) -> ArtifactBundle:
    """Fold one or more in-process runs into a single bundle.

    With several runs (an experiment that builds multiple worlds),
    spans gain a ``run`` index and series names a ``run<i>.`` prefix so
    nothing collides; a single run is stored verbatim.
    """
    bundle = ArtifactBundle()
    many = len(artifacts) > 1
    for index, artifact in enumerate(artifacts):
        for span in artifact.spans:
            bundle.spans.append({**span, "run": index} if many else span)
        for name, value in artifact.counters.items():
            bundle.counters[name] = bundle.counters.get(name, 0) + value
        for entry in artifact.series:
            bundle.series.append(
                {**entry, "name": f"run{index}.{entry['name']}"} if many else entry
            )
        bundle.runs.append(artifact.run_entry())
    bundle.profile = merge_profiles([a.profile for a in artifacts])
    return bundle


def write_bundle(directory: str | Path, bundle: ArtifactBundle) -> dict[str, Path]:
    """Serialize ``bundle`` into ``directory``; returns file paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, Any] = {
        "format": FORMAT,
        "runs": bundle.runs,
        "files": [name for name in FILES if name != "manifest.json"],
    }
    if bundle.merged_from:
        manifest["merged_from"] = bundle.merged_from
    paths = {name: target / name for name in FILES}
    paths["manifest.json"].write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    paths["spans.jsonl"].write_text(
        "".join(
            json.dumps(span, sort_keys=True, default=str) + "\n"
            for span in bundle.spans
        )
    )
    paths["metrics.prom"].write_text(
        render_prometheus(bundle.counters, bundle.series)
    )
    paths["metrics.jsonl"].write_text(render_jsonl(bundle.counters, bundle.series))
    paths["profile.json"].write_text(
        json.dumps(bundle.profile, indent=2, sort_keys=True) + "\n"
    )
    return paths


def write_artifacts(
    directory: str | Path, artifacts: list[RunArtifact]
) -> dict[str, Path]:
    """Collect-and-write convenience: one directory from 1+ runs."""
    return write_bundle(directory, bundle_artifacts(artifacts))


def read_bundle(directory: str | Path) -> ArtifactBundle:
    """Parse an artifact directory back into an :class:`ArtifactBundle`."""
    source = Path(directory)
    manifest = json.loads((source / "manifest.json").read_text())
    spans = [
        json.loads(line)
        for line in (source / "spans.jsonl").read_text().splitlines()
        if line
    ]
    counters: dict[str, int] = {}
    series: list[dict[str, Any]] = []
    for line in (source / "metrics.jsonl").read_text().splitlines():
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") == "counter":
            counters[record["name"]] = record["value"]
        elif record.get("kind") == "series":
            entry = {k: v for k, v in record.items() if k != "kind"}
            series.append(entry)
    return ArtifactBundle(
        spans=spans,
        counters=counters,
        series=series,
        profile=json.loads((source / "profile.json").read_text()),
        runs=manifest.get("runs", []),
        merged_from=manifest.get("merged_from", []),
    )


def merge_artifact_dirs(
    dirs: list[str | Path], out_dir: str | Path
) -> dict[str, Path]:
    """Merge per-worker artifact directories into one, deterministically.

    The result depends only on the *order* of ``dirs`` (callers pass
    submission order), never on worker scheduling: spans concatenate
    with a ``part`` index, counters sum, series entries are renamed
    ``part<i>.<name>``, profiles sum their deterministic counts (the
    wall-clock fields sum too, which is the meaningful aggregate).
    """
    merged = ArtifactBundle()
    profiles: list[dict[str, Any]] = []
    for index, directory in enumerate(dirs):
        part = read_bundle(directory)
        merged.spans.extend({**span, "part": index} for span in part.spans)
        for name, value in part.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        merged.series.extend(
            {**entry, "name": f"part{index}.{entry['name']}"} for entry in part.series
        )
        merged.runs.extend({**run, "part": index} for run in part.runs)
        profiles.append(part.profile)
        merged.merged_from.append(Path(directory).name)
    merged.profile = merge_profiles(profiles)
    return write_bundle(out_dir, merged)


def merge_profiles(profiles: list[dict[str, Any]]) -> dict[str, Any]:
    """Sum profiler snapshots: counts/totals add, maxes take the max.

    Per-label breakdowns and events/sec samples survive a single-run
    "merge" untouched; across several runs the label and sample detail
    is dropped (actor/event-type aggregates remain) to keep merged
    artifacts bounded.
    """
    live = [p for p in profiles if p.get("enabled")]
    if not live:
        return {"enabled": False}
    if len(live) == 1 and len(profiles) == 1:
        return live[0]
    merged: dict[str, Any] = {
        "enabled": True,
        "events": sum(p.get("events", 0) for p in live),
        "wall_s": round(sum(p.get("wall_s", 0.0) for p in live), 6),
        "merged": len(live),
    }
    merged["events_per_s"] = (
        int(merged["events"] / merged["wall_s"]) if merged["wall_s"] > 0 else 0
    )
    for table_name in ("by_actor", "by_event_type"):
        table: dict[str, dict[str, Any]] = {}
        for profile in live:
            for key, stats in profile.get(table_name, {}).items():
                agg = table.get(key)
                if agg is None:
                    table[key] = {
                        "count": stats["count"],
                        "total_s": stats["total_s"],
                        "max_s": stats["max_s"],
                        "hist_log2_us": list(stats["hist_log2_us"]),
                    }
                    continue
                agg["count"] += stats["count"]
                agg["total_s"] = round(agg["total_s"] + stats["total_s"], 9)
                agg["max_s"] = max(agg["max_s"], stats["max_s"])
                hist = agg["hist_log2_us"]
                other = stats["hist_log2_us"]
                if len(other) > len(hist):
                    hist.extend([0] * (len(other) - len(hist)))
                for i, n in enumerate(other):
                    hist[i] += n
        merged[table_name] = {k: table[k] for k in sorted(table)}
    return merged
