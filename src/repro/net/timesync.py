"""Time synchronisation service.

The paper assumes "all the devices in the network and the aggregators are
time-synchronized".  This service makes that assumption concrete: the
aggregator periodically disciplines every registered device RTC
(:class:`~repro.hw.ds3231.Ds3231Rtc`), so residual clock error is bounded
by (sync interval) x (RTC ppm).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.ds3231 import Ds3231Rtc
from repro.sim.kernel import PeriodicTask, Simulator
from repro.sim.process import Process


class TimeSyncService(Process):
    """Periodic RTC discipline driven by the aggregator.

    Args:
        simulator: The kernel.
        name: Service name for traces.
        interval_s: Seconds between sync rounds.
    """

    def __init__(self, simulator: Simulator, name: str, interval_s: float = 60.0) -> None:
        super().__init__(simulator, name)
        if interval_s <= 0:
            raise ConfigError(f"sync interval must be positive, got {interval_s}")
        self._interval_s = interval_s
        self._clocks: dict[str, Ds3231Rtc] = {}
        self._task: PeriodicTask | None = None
        self._rounds = 0
        self._last_max_correction_s = 0.0

    @property
    def rounds(self) -> int:
        """Completed sync rounds."""
        return self._rounds

    @property
    def last_max_correction_s(self) -> float:
        """Largest correction applied in the most recent round."""
        return self._last_max_correction_s

    def register_clock(self, owner: str, rtc: Ds3231Rtc) -> None:
        """Put ``owner``'s RTC under discipline."""
        self._clocks[owner] = rtc

    def unregister_clock(self, owner: str) -> None:
        """Stop disciplining ``owner``'s RTC (device left the network)."""
        self._clocks.pop(owner, None)

    def start(self) -> None:
        """Begin periodic sync rounds."""
        if self._task is not None:
            return
        self._task = self.sim.every(self._interval_s, self._sync_round, label=f"timesync:{self.name}")

    def stop(self) -> None:
        """Halt sync rounds."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def sync_now(self) -> float:
        """Run one sync round immediately; returns max correction."""
        self._sync_round()
        return self._last_max_correction_s

    def _sync_round(self) -> None:
        max_correction = 0.0
        for owner, rtc in self._clocks.items():
            correction = rtc.synchronize(self.now)
            max_correction = max(max_correction, abs(correction))
            self.trace("timesync.corrected", owner=owner, correction_s=correction)
        self._rounds += 1
        self._last_max_correction_s = max_correction
