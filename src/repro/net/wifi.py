"""Wi-Fi radio behaviour: scanning, association, disconnection.

The paper's ``T_handshake`` (~6 s, range 5.5-6.5 s) is the time from the
device arriving in a new network until its temporary membership is
established.  On real ESP32 hardware that time is dominated by:

1. **channel scanning** — the device "continuously scans the
   communication network to determine its reporting aggregator";
   a passive scan dwells ~120 ms on each of 13 channels per pass,
   and typically needs 2-3 passes to collect stable RSSI,
2. **association + DHCP** — auth/assoc frames plus address assignment,
   typically 1-2 s on ESP32,
3. **MQTT connect** and the Nack-triggered registration round-trips
   (modelled in :mod:`repro.net.mqtt` / :mod:`repro.protocol`).

The stage latencies here are configurable so the A2 ablation can
attribute the total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class WifiParams:
    """Latency model of the Wi-Fi join procedure.

    Attributes:
        channels: Channels swept during a scan pass.
        dwell_s: Passive-scan dwell time per channel.
        scan_passes_min / scan_passes_max: Passes needed for a stable
            RSSI ranking (uniform draw).
        assoc_latency_s: Median auth + association + DHCP time.
        assoc_jitter_sigma: Lognormal sigma of association time.
        disconnect_detect_s: Time to declare the old AP lost (beacon
            timeouts) once out of range.
    """

    channels: int = 13
    dwell_s: float = 0.110
    scan_passes_min: int = 3
    scan_passes_max: int = 3
    assoc_latency_s: float = 1.2
    assoc_jitter_sigma: float = 0.12
    disconnect_detect_s: float = 1.0

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ConfigError(f"channels must be positive, got {self.channels}")
        if self.dwell_s <= 0:
            raise ConfigError(f"dwell must be positive, got {self.dwell_s}")
        if not 1 <= self.scan_passes_min <= self.scan_passes_max:
            raise ConfigError(
                "scan passes must satisfy 1 <= min <= max, got "
                f"{self.scan_passes_min}..{self.scan_passes_max}"
            )
        if self.assoc_latency_s <= 0:
            raise ConfigError(
                f"association latency must be positive, got {self.assoc_latency_s}"
            )
        if self.assoc_jitter_sigma < 0:
            raise ConfigError(
                f"association jitter must be >= 0, got {self.assoc_jitter_sigma}"
            )
        if self.disconnect_detect_s < 0:
            raise ConfigError(
                f"disconnect detection must be >= 0, got {self.disconnect_detect_s}"
            )


class WifiRadio:
    """Samples join-procedure stage latencies for one device radio.

    Args:
        params: Latency model parameters.
        rng: Random stream for jitter draws.
    """

    def __init__(self, params: WifiParams, rng: np.random.Generator) -> None:
        self._params = params
        self._rng = rng

    @property
    def params(self) -> WifiParams:
        """The latency-model parameters."""
        return self._params

    def scan_duration_s(self) -> float:
        """One full scan: passes x channels x dwell."""
        passes = int(
            self._rng.integers(self._params.scan_passes_min, self._params.scan_passes_max + 1)
        )
        return passes * self._params.channels * self._params.dwell_s

    def association_duration_s(self) -> float:
        """Auth + association + DHCP latency with lognormal jitter."""
        if self._params.assoc_jitter_sigma == 0:
            return self._params.assoc_latency_s
        return float(
            self._params.assoc_latency_s
            * self._rng.lognormal(0.0, self._params.assoc_jitter_sigma)
        )

    def disconnect_detect_duration_s(self) -> float:
        """Time until the radio declares the old AP lost."""
        return self._params.disconnect_detect_s

    def join_duration_s(self) -> float:
        """Scan + association (the radio part of the handshake)."""
        return self.scan_duration_s() + self.association_duration_s()
