"""Communication-network substrate.

Models the second connectivity layer of Fig. 1 (black dotted lines):

* :class:`~repro.net.channel.WirelessChannel` — log-distance path loss,
  RSSI, packet error rate, airtime,
* :class:`~repro.net.wifi.WifiRadio` — scan / association / disconnect
  behaviour whose latencies dominate the paper's ``T_handshake``,
* :class:`~repro.net.mqtt.MqttBroker` — topic-based pub/sub with QoS 0/1
  (the paper transfers consumption data over MQTT),
* :class:`~repro.net.tdma.TdmaSchedule` — aggregator-granted time slots
  ("the aggregator provides the devices with time-slots for
  communication to prevent interference"),
* :class:`~repro.net.timesync.TimeSyncService` — periodic RTC
  discipline (the paper assumes devices and aggregators are
  time-synchronized),
* :class:`~repro.net.backhaul.BackhaulMesh` — the inter-aggregator
  mesh/cloud network (~1 ms links).
"""

from repro.net.backhaul import BackhaulLink, BackhaulMesh
from repro.net.channel import ChannelParams, WirelessChannel
from repro.net.mqtt import MqttBroker, MqttClient, QoS
from repro.net.tdma import TdmaSchedule
from repro.net.timesync import TimeSyncService
from repro.net.wifi import WifiParams, WifiRadio

__all__ = [
    "BackhaulLink",
    "BackhaulMesh",
    "ChannelParams",
    "WirelessChannel",
    "MqttBroker",
    "MqttClient",
    "QoS",
    "TdmaSchedule",
    "TimeSyncService",
    "WifiParams",
    "WifiRadio",
]
