"""Wireless channel model.

A log-distance path-loss model produces the RSSI a device sees from each
aggregator's access point — the paper uses RSSI to pick the reporting
aggregator (footnote 2).  Packet errors follow a logistic curve in RSSI,
and airtime follows from frame size over the configured PHY rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ChannelError, ConfigError

if TYPE_CHECKING:
    from repro.faults.injectors import LinkFaultInjector
    from repro.monitoring.counters import CounterBank


@dataclass(frozen=True)
class ChannelParams:
    """Radio-environment parameters.

    Defaults model 2.4 GHz indoor Wi-Fi.

    Attributes:
        tx_power_dbm: Transmit power of the access points.
        path_loss_exponent: Log-distance exponent (2 free space, ~3 indoor).
        reference_loss_db: Loss at the 1 m reference distance.
        shadowing_sigma_db: Std-dev of log-normal shadowing.
        noise_floor_dbm: Receiver noise floor.
        per_midpoint_dbm: RSSI at which packet error rate is 50 %.
        per_steepness: Logistic steepness (dB⁻¹) of the PER curve.
        phy_rate_mbps: Effective PHY rate for airtime computation.
    """

    tx_power_dbm: float = 16.0
    path_loss_exponent: float = 3.0
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 2.0
    noise_floor_dbm: float = -95.0
    per_midpoint_dbm: float = -88.0
    per_steepness: float = 0.8
    phy_rate_mbps: float = 6.0

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ConfigError(
                f"path loss exponent must be positive, got {self.path_loss_exponent}"
            )
        if self.shadowing_sigma_db < 0:
            raise ConfigError(
                f"shadowing sigma must be >= 0, got {self.shadowing_sigma_db}"
            )
        if self.phy_rate_mbps <= 0:
            raise ConfigError(f"PHY rate must be positive, got {self.phy_rate_mbps}")


class WirelessChannel:
    """Evaluates RSSI, packet error rate and airtime between positions.

    Args:
        params: Radio-environment parameters.
        rng: Random stream for shadowing and per-packet error draws.
        counters: Optional shared counter bank; losses are recorded as
            ``channel.packets_blocked`` (fault injector) and
            ``channel.packets_lost`` (RSSI draw).
    """

    def __init__(
        self,
        params: ChannelParams,
        rng: np.random.Generator,
        counters: "CounterBank | None" = None,
    ) -> None:
        self._params = params
        self._rng = rng
        self._injector: "LinkFaultInjector | None" = None
        self._counters = counters

    @property
    def params(self) -> ChannelParams:
        """The radio-environment parameters."""
        return self._params

    @property
    def fault_injector(self) -> "LinkFaultInjector | None":
        """The installed fault injector, if any."""
        return self._injector

    def set_fault_injector(self, injector: "LinkFaultInjector | None") -> None:
        """Install (or clear) a channel-wide fault injector.

        The channel is shared by every radio in a scenario, so faults
        installed here model environment-scale events (an RF jammer, an
        access-point power loss) rather than a single bad link — use
        :meth:`~repro.net.mqtt.MqttClient.set_fault_injector` for
        per-device link faults.
        """
        self._injector = injector

    def path_loss_db(self, distance_m: float, shadowed: bool = True) -> float:
        """Log-distance path loss, optionally with one shadowing draw."""
        if distance_m <= 0:
            raise ChannelError(f"distance must be positive, got {distance_m}")
        loss = (
            self._params.reference_loss_db
            + 10.0 * self._params.path_loss_exponent * math.log10(max(distance_m, 1.0))
        )
        if shadowed and self._params.shadowing_sigma_db > 0:
            loss += float(self._rng.normal(0.0, self._params.shadowing_sigma_db))
        return loss

    def rssi_dbm(self, distance_m: float, shadowed: bool = True) -> float:
        """Received signal strength at ``distance_m`` from the AP."""
        return self._params.tx_power_dbm - self.path_loss_db(distance_m, shadowed=shadowed)

    def packet_error_rate(self, rssi_dbm: float) -> float:
        """Logistic PER-vs-RSSI curve in [0, 1]."""
        x = self._params.per_steepness * (self._params.per_midpoint_dbm - rssi_dbm)
        # Clamp the exponent so extreme RSSI values cannot overflow.
        x = max(-60.0, min(60.0, x))
        return 1.0 / (1.0 + math.exp(-x))

    def packet_lost(self, rssi_dbm: float) -> bool:
        """Draw one packet-loss outcome at the given RSSI.

        An installed fault injector is consulted first: during a
        blackout (or an injected drop) the frame is lost regardless of
        RSSI.
        """
        if self._injector is not None and self._injector.packet_blocked():
            if self._counters is not None:
                self._counters.increment("channel.packets_blocked")
            return True
        lost = bool(self._rng.random() < self.packet_error_rate(rssi_dbm))
        if lost and self._counters is not None:
            self._counters.increment("channel.packets_lost")
        return lost

    def airtime_s(self, payload_bytes: int, overhead_bytes: int = 60) -> float:
        """Transmission time of one frame at the configured PHY rate."""
        if payload_bytes < 0:
            raise ChannelError(f"payload size must be >= 0, got {payload_bytes}")
        bits = (payload_bytes + overhead_bytes) * 8
        return bits / (self._params.phy_rate_mbps * 1e6)
