"""TDMA time-slot allocation.

"The aggregator provides the devices with time-slots for communication to
prevent interference.  With limited time-slots for communication, the
number of devices connected to an aggregator is also limited." (§II-A)

A superframe of ``T_measure`` seconds is divided into equal slots; each
registered device owns one slot and reports once per superframe, which
yields exactly the paper's per-device reporting rate.
"""

from __future__ import annotations

from repro.errors import SlotAllocationError
from repro.ids import DeviceId


class TdmaSchedule:
    """Slot assignment within a repeating superframe.

    Args:
        superframe_s: Length of the superframe — the measurement
            interval ``T_measure`` (0.1 s in the paper).
        slot_count: Number of slots; bounds devices per aggregator.
    """

    def __init__(self, superframe_s: float = 0.1, slot_count: int = 16) -> None:
        if superframe_s <= 0:
            raise SlotAllocationError(f"superframe must be positive, got {superframe_s}")
        if slot_count <= 0:
            raise SlotAllocationError(f"slot count must be positive, got {slot_count}")
        self._superframe_s = superframe_s
        self._slot_count = slot_count
        self._assignments: dict[DeviceId, int] = {}

    @property
    def superframe_s(self) -> float:
        """Superframe (= reporting interval) length in seconds."""
        return self._superframe_s

    @property
    def slot_count(self) -> int:
        """Total slots per superframe."""
        return self._slot_count

    @property
    def slot_duration_s(self) -> float:
        """Length of one slot."""
        return self._superframe_s / self._slot_count

    @property
    def free_slots(self) -> int:
        """Slots still available for new devices."""
        return self._slot_count - len(self._assignments)

    def slot_of(self, device_id: DeviceId) -> int | None:
        """Slot index assigned to a device, or None."""
        return self._assignments.get(device_id)

    def assign(self, device_id: DeviceId) -> int:
        """Grant the lowest free slot to a device."""
        if device_id in self._assignments:
            return self._assignments[device_id]
        used = set(self._assignments.values())
        for slot in range(self._slot_count):
            if slot not in used:
                self._assignments[device_id] = slot
                return slot
        raise SlotAllocationError(
            f"no free slot for {device_id}: all {self._slot_count} in use"
        )

    def release(self, device_id: DeviceId) -> None:
        """Return a device's slot to the pool."""
        if device_id not in self._assignments:
            raise SlotAllocationError(f"{device_id} holds no slot")
        del self._assignments[device_id]

    def slot_offset_s(self, device_id: DeviceId) -> float:
        """Offset of the device's slot from the superframe start."""
        slot = self._assignments.get(device_id)
        if slot is None:
            raise SlotAllocationError(f"{device_id} holds no slot")
        return slot * self.slot_duration_s

    def next_slot_time(self, device_id: DeviceId, now: float) -> float:
        """Earliest time >= ``now`` that falls on the device's slot start."""
        offset = self.slot_offset_s(device_id)
        frames_elapsed = max(0.0, now - offset) / self._superframe_s
        frame_index = int(frames_elapsed)
        candidate = frame_index * self._superframe_s + offset
        if candidate < now:
            candidate += self._superframe_s
        return candidate
