"""MQTT-like publish/subscribe transport.

The testbed moves consumption data over MQTT on Wi-Fi.  This module
models the pieces the experiments feel:

* per-client **connect** latency (TCP + MQTT CONNECT/CONNACK),
* topic-based routing with ``+``/``#`` wildcards,
* **QoS 0** (fire and forget, packets can be lost) and **QoS 1**
  (acknowledged, retransmitted until acked),
* delivery latency = airtime + broker processing.

The broker lives on the aggregator host; clients are devices (and the
aggregator's own services subscribe locally with zero airtime).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NetworkError
from repro.faults.injectors import FaultAction, LinkFaultInjector
from repro.net.channel import WirelessChannel
from repro.sim.kernel import Simulator
from repro.sim.process import Process

# QoS and topic matching now live with the transport interfaces; they
# are re-exported here because this module defined them historically.
from repro.transport.base import (
    DeviceLink,
    Endpoint,
    QoS,
    Subscriber,
    compile_topic_filter,
    topic_matches,
)

__all__ = ["MqttBroker", "MqttClient", "QoS", "Subscriber", "topic_matches"]


@dataclass
class _Subscription:
    pattern: str
    callback: Subscriber
    # Precompiled at subscribe time so the routing loop never re-splits
    # the filter (one callable check per subscription per message).
    matches: "Callable[[str], bool] | None" = None


class MqttBroker(Process, Endpoint):
    """Topic router hosted by one aggregator.

    Args:
        simulator: The kernel to schedule deliveries on.
        name: Broker name for traces (usually the aggregator name).
        processing_latency_s: Broker-side handling per message.
        connect_latency_s: Median TCP+MQTT connect time.
        connect_jitter_sigma: Lognormal sigma for connect time.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        processing_latency_s: float = 0.001,
        connect_latency_s: float = 0.35,
        connect_jitter_sigma: float = 0.2,
    ) -> None:
        super().__init__(simulator, name)
        if processing_latency_s < 0:
            raise NetworkError(
                f"processing latency must be >= 0, got {processing_latency_s}"
            )
        if connect_latency_s <= 0:
            raise NetworkError(
                f"connect latency must be positive, got {connect_latency_s}"
            )
        self._processing_latency_s = processing_latency_s
        self._connect_latency_s = connect_latency_s
        self._connect_jitter_sigma = connect_jitter_sigma
        self._subscriptions: list[_Subscription] = []
        self._messages_routed = 0
        self._messages_dropped = 0
        self._down = False
        self._injector: LinkFaultInjector | None = None

    @property
    def messages_routed(self) -> int:
        """Messages delivered to at least one subscriber."""
        return self._messages_routed

    @property
    def messages_dropped(self) -> int:
        """Messages lost to broker downtime or injected faults."""
        return self._messages_dropped

    @property
    def down(self) -> bool:
        """Whether the broker host is currently crashed."""
        return self._down

    def set_down(self, down: bool) -> None:
        """Crash/restore the broker host (fault injection).

        While down, every message — inbound publishes and queued
        deliveries alike — is dropped; MQTT sessions themselves are the
        devices' concern (their reports time out and buffer locally).
        """
        self._down = down
        self.trace("mqtt.broker_down" if down else "mqtt.broker_up")

    def set_fault_injector(self, injector: LinkFaultInjector | None) -> None:
        """Install (or clear) a fault injector on the routing path."""
        self._injector = injector

    def connect_duration_s(self) -> float:
        """Sample one client connect latency."""
        if self._connect_jitter_sigma == 0:
            return self._connect_latency_s
        return float(
            self._connect_latency_s
            * self.rng("connect").lognormal(0.0, self._connect_jitter_sigma)
        )

    def subscribe(self, pattern: str, callback: Subscriber) -> None:
        """Register ``callback`` for topics matching ``pattern``."""
        # Compiling validates eagerly too: a bad '#' placement fails
        # here, not on first publish.
        self._subscriptions.append(
            _Subscription(pattern, callback, compile_topic_filter(pattern))
        )

    def unsubscribe(self, pattern: str, callback: Subscriber) -> None:
        """Remove a previously registered subscription."""
        before = len(self._subscriptions)
        self._subscriptions = [
            s
            for s in self._subscriptions
            if not (s.pattern == pattern and s.callback == callback)
        ]
        if len(self._subscriptions) == before:
            raise NetworkError(f"no subscription {pattern!r} to remove")

    def deliver(self, topic: str, payload: Any, after_s: float = 0.0) -> None:
        """Route ``payload`` to matching subscribers after a delay.

        A crashed broker drops everything; an installed fault injector
        may additionally drop, corrupt (discarded at the integrity
        check), delay or duplicate the message.
        """
        if self._down:
            self._messages_dropped += 1
            self.trace("mqtt.drop_down", topic=topic)
            return
        delay = after_s + self._processing_latency_s
        copies = 1
        if self._injector is not None:
            verdict = self._injector.message_verdict()
            if verdict in (FaultAction.DROP, FaultAction.CORRUPT):
                self._messages_dropped += 1
                self.trace("mqtt.drop_fault", topic=topic, verdict=verdict.value)
                return
            if verdict is FaultAction.DELAY:
                delay += self._injector.extra_delay_s
            elif verdict is FaultAction.DUPLICATE:
                copies = 2

        def _route() -> None:
            if self._down:
                self._messages_dropped += 1
                self.trace("mqtt.drop_down", topic=topic)
                return
            matched = False
            if self._spans.enabled:
                self._spans.event(
                    "transport.deliver", self.name, backend="mqtt", topic=topic
                )
            for sub in list(self._subscriptions):
                if sub.matches(topic):
                    matched = True
                    sub.callback(topic, payload)
            if matched:
                self._messages_routed += 1
            self.trace("mqtt.deliver", topic=topic, matched=matched)

        for _ in range(copies):
            self.sim.call_later(delay, _route, label=f"mqtt:{topic}")


class MqttClient(Process, DeviceLink):
    """A device-side MQTT client publishing over the wireless channel.

    Args:
        simulator: The kernel.
        name: Client name (device name).
        channel: Wireless channel between the client and the broker's AP.
        max_retries: QoS 1 retransmission budget.
        retry_backoff_s: Delay before a QoS 1 retransmission.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        channel: WirelessChannel,
        max_retries: int = 5,
        retry_backoff_s: float = 0.2,
    ) -> None:
        super().__init__(simulator, name)
        if max_retries < 0:
            raise NetworkError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s <= 0:
            raise NetworkError(f"retry backoff must be positive, got {retry_backoff_s}")
        self._channel = channel
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._broker: Endpoint | None = None
        self._rssi_dbm: float | None = None
        self._injector: LinkFaultInjector | None = None

    @property
    def connected(self) -> bool:
        """Whether the client currently has a broker session."""
        return self._broker is not None

    @property
    def stats(self) -> dict[str, int]:
        """Counters: published, dropped, retransmissions.

        Backed by the shared :class:`~repro.monitoring.counters.CounterBank`
        (namespaced by client name), so transport counters appear in the
        same snapshot as every other actor's.
        """
        return {
            "published": self.counters.get(f"{self.name}.published"),
            "dropped": self.counters.get(f"{self.name}.dropped"),
            "retransmissions": self.counters.get(f"{self.name}.retransmissions"),
        }

    def connect(
        self,
        broker: Endpoint,
        rssi_dbm: float,
        on_connected: Callable[[], None] | None = None,
    ) -> float:
        """Open a session to ``broker``; returns the connect latency.

        ``on_connected`` fires when the CONNACK would arrive.
        """
        latency = broker.connect_duration_s()

        def _established() -> None:
            self._broker = broker
            self._rssi_dbm = rssi_dbm
            self.trace("mqtt.connected", broker=broker.name, rssi_dbm=rssi_dbm)
            if on_connected is not None:
                on_connected()

        self.sim.call_later(latency, _established, label=f"mqtt-connect:{self.name}")
        return latency

    def set_fault_injector(self, injector: LinkFaultInjector | None) -> None:
        """Install (or clear) a fault injector on this client's radio link.

        Frame-level: each transmission attempt additionally consults
        :meth:`~repro.faults.injectors.LinkFaultInjector.packet_blocked`,
        so a blackout makes every publish exhaust its QoS-1 budget and
        return False (the device stack then buffers the data).
        """
        self._injector = injector

    def disconnect(self) -> None:
        """Drop the broker session (e.g. on leaving the network)."""
        self._broker = None
        self._rssi_dbm = None
        self.trace("mqtt.disconnected")

    def publish(
        self,
        topic: str,
        payload: Any,
        qos: QoS = QoS.AT_LEAST_ONCE,
        payload_bytes: int = 64,
    ) -> bool:
        """Publish one message.

        Returns True if the message was handed to the broker (after loss
        and, for QoS 1, retries); False if it was dropped.  Raises
        :class:`~repro.errors.NetworkError` when not connected — callers
        (the device data layer) are expected to buffer instead of
        publishing blind.
        """
        if self._broker is None or self._rssi_dbm is None:
            raise NetworkError(f"client {self.name} is not connected")
        if self._spans.enabled:
            self._spans.event(
                "transport.send", self.name, backend="mqtt", topic=topic
            )
        airtime = self._channel.airtime_s(payload_bytes)
        attempts = 1 + (self._max_retries if qos == QoS.AT_LEAST_ONCE else 0)
        delay = 0.0
        for attempt in range(attempts):
            delay += airtime
            blocked = self._injector is not None and self._injector.packet_blocked()
            if not blocked and not self._channel.packet_lost(self._rssi_dbm):
                self._broker.deliver(topic, payload, after_s=delay)
                self.count("published")
                if attempt > 0:
                    self.count("retransmissions", attempt)
                return True
            delay += self._retry_backoff_s
        self.count("dropped")
        self.trace("mqtt.drop", topic=topic)
        return False
