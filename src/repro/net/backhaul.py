"""Inter-aggregator backhaul mesh.

"The aggregators are interconnected through a mesh/cloud network to
exchange consumption data of the devices connected to them", and the
paper measures the aggregator-to-aggregator delay at ~1 ms because "the
backhaul network is assumed to have high bandwidth" (§III-B).

We model the mesh as a networkx graph whose edges carry latency;
messages route over the minimum-latency path and arrive after the sum of
link latencies plus per-hop forwarding cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import networkx as nx

from repro.errors import BackhaulError
from repro.ids import AggregatorId
from repro.sim.kernel import Simulator
from repro.sim.process import Process

BackhaulHandler = Callable[[AggregatorId, Any], None]


@dataclass(frozen=True)
class BackhaulLink:
    """One mesh link between two aggregators."""

    a: AggregatorId
    b: AggregatorId
    latency_s: float = 0.001

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise BackhaulError(f"link latency must be positive, got {self.latency_s}")
        if self.a == self.b:
            raise BackhaulError(f"self-link at {self.a} not allowed")


class BackhaulMesh(Process):
    """Routes messages between aggregators over the mesh graph.

    Args:
        simulator: The kernel.
        per_hop_cost_s: Forwarding cost added at each intermediate hop.
    """

    def __init__(self, simulator: Simulator, per_hop_cost_s: float = 0.0002) -> None:
        super().__init__(simulator, "backhaul")
        if per_hop_cost_s < 0:
            raise BackhaulError(f"per-hop cost must be >= 0, got {per_hop_cost_s}")
        self._graph = nx.Graph()
        self._handlers: dict[AggregatorId, BackhaulHandler] = {}
        self._per_hop_cost_s = per_hop_cost_s
        self._messages_sent = 0

    @property
    def messages_sent(self) -> int:
        """Total messages routed so far."""
        return self._messages_sent

    def add_aggregator(self, aggregator_id: AggregatorId, handler: BackhaulHandler) -> None:
        """Attach an aggregator and its receive handler to the mesh."""
        if aggregator_id in self._handlers:
            raise BackhaulError(f"{aggregator_id} already on the mesh")
        self._graph.add_node(aggregator_id)
        self._handlers[aggregator_id] = handler

    def connect(self, link: BackhaulLink) -> None:
        """Add one mesh link."""
        for end in (link.a, link.b):
            if end not in self._handlers:
                raise BackhaulError(f"{end} is not on the mesh")
        self._graph.add_edge(link.a, link.b, latency=link.latency_s)

    def latency_s(self, source: AggregatorId, destination: AggregatorId) -> float:
        """End-to-end latency along the best path."""
        if source == destination:
            return 0.0
        try:
            path = nx.shortest_path(self._graph, source, destination, weight="latency")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise BackhaulError(f"no backhaul path {source} -> {destination}") from exc
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self._graph.edges[a, b]["latency"]
        total += self._per_hop_cost_s * max(0, len(path) - 2)
        return total

    def send(self, source: AggregatorId, destination: AggregatorId, payload: Any) -> float:
        """Deliver ``payload`` to ``destination``; returns the latency."""
        handler = self._handlers.get(destination)
        if handler is None:
            raise BackhaulError(f"unknown destination {destination}")
        latency = self.latency_s(source, destination)
        self._messages_sent += 1
        self.trace("backhaul.send", source=str(source), destination=str(destination))

        def _arrive() -> None:
            handler(source, payload)

        self.sim.call_later(latency, _arrive, label=f"backhaul:{source}->{destination}")
        return latency

    def broadcast(self, source: AggregatorId, payload: Any) -> int:
        """Send ``payload`` to every other aggregator; returns fan-out."""
        others = [agg for agg in self._handlers if agg != source]
        for destination in others:
            self.send(source, destination, payload)
        return len(others)
