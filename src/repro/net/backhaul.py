"""Inter-aggregator backhaul mesh.

"The aggregators are interconnected through a mesh/cloud network to
exchange consumption data of the devices connected to them", and the
paper measures the aggregator-to-aggregator delay at ~1 ms because "the
backhaul network is assumed to have high bandwidth" (§III-B).

We model the mesh as a networkx graph whose edges carry latency;
messages route over the minimum-latency path and arrive after the sum of
link latencies plus per-hop forwarding cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import networkx as nx

from repro.errors import BackhaulError
from repro.faults.injectors import FaultAction, LinkFaultInjector
from repro.ids import AggregatorId
from repro.sim.kernel import Simulator
from repro.sim.process import Process

if TYPE_CHECKING:
    from repro.runtime.context import SimContext

BackhaulHandler = Callable[[AggregatorId, Any], None]


@dataclass(frozen=True)
class BackhaulLink:
    """One mesh link between two aggregators."""

    a: AggregatorId
    b: AggregatorId
    latency_s: float = 0.001

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise BackhaulError(f"link latency must be positive, got {self.latency_s}")
        if self.a == self.b:
            raise BackhaulError(f"self-link at {self.a} not allowed")


class BackhaulMesh(Process):
    """Routes messages between aggregators over the mesh graph.

    Args:
        runtime: The kernel, or a shared :class:`SimContext`.
        per_hop_cost_s: Forwarding cost added at each intermediate hop.
    """

    def __init__(
        self, runtime: "Simulator | SimContext", per_hop_cost_s: float = 0.0002
    ) -> None:
        super().__init__(runtime, "backhaul")
        if per_hop_cost_s < 0:
            raise BackhaulError(f"per-hop cost must be >= 0, got {per_hop_cost_s}")
        self._graph = nx.Graph()
        self._handlers: dict[AggregatorId, BackhaulHandler] = {}
        self._per_hop_cost_s = per_hop_cost_s
        self._messages_sent = 0
        self._messages_dropped = 0
        self._partition: list[frozenset[AggregatorId]] | None = None
        self._down: set[AggregatorId] = set()
        self._link_injectors: dict[frozenset[AggregatorId], LinkFaultInjector] = {}

    @property
    def messages_sent(self) -> int:
        """Total messages routed so far."""
        return self._messages_sent

    @property
    def messages_dropped(self) -> int:
        """Messages lost to partitions, downed nodes or link faults."""
        return self._messages_dropped

    @property
    def partitioned(self) -> bool:
        """Whether a partition is currently in force."""
        return self._partition is not None

    # -- fault injection -------------------------------------------------

    def set_partition(self, groups: list[set[AggregatorId]]) -> None:
        """Split the mesh: messages between different groups are lost.

        Every aggregator must appear in exactly one group.  The physical
        links stay configured — :meth:`heal_partition` restores service
        without re-wiring.
        """
        seen: set[AggregatorId] = set()
        for group in groups:
            overlap = seen & group
            if overlap:
                raise BackhaulError(f"aggregators in two groups: {sorted(a.name for a in overlap)}")
            seen |= group
        missing = set(self._handlers) - seen
        if missing:
            raise BackhaulError(
                f"partition misses aggregators: {sorted(a.name for a in missing)}"
            )
        self._partition = [frozenset(group) for group in groups]
        self.trace("backhaul.partition", groups=len(groups))

    def heal_partition(self) -> None:
        """Remove the partition; traffic flows again.  Idempotent."""
        self._partition = None
        self.trace("backhaul.heal")

    def set_node_down(self, aggregator_id: AggregatorId, down: bool) -> None:
        """Mark one aggregator crashed: messages to/from it are lost."""
        if aggregator_id not in self._handlers:
            raise BackhaulError(f"unknown aggregator {aggregator_id}")
        if down:
            self._down.add(aggregator_id)
        else:
            self._down.discard(aggregator_id)

    def install_link_injector(
        self,
        a: AggregatorId,
        b: AggregatorId,
        injector: LinkFaultInjector | None,
    ) -> None:
        """Attach a fault injector to the direct mesh link ``a — b``.

        Every message whose best path crosses the link consults the
        injector; ``None`` removes a previously installed one.
        """
        if not self._graph.has_edge(a, b):
            raise BackhaulError(f"no mesh link {a} -- {b}")
        key = frozenset((a, b))
        if injector is None:
            self._link_injectors.pop(key, None)
        else:
            self._link_injectors[key] = injector

    def _severed(self, source: AggregatorId, destination: AggregatorId) -> bool:
        """Whether a partition or downed node makes delivery impossible."""
        if source in self._down or destination in self._down:
            return True
        if self._partition is None:
            return False
        for group in self._partition:
            if source in group:
                return destination not in group
        return True

    def add_aggregator(self, aggregator_id: AggregatorId, handler: BackhaulHandler) -> None:
        """Attach an aggregator and its receive handler to the mesh."""
        if aggregator_id in self._handlers:
            raise BackhaulError(f"{aggregator_id} already on the mesh")
        self._graph.add_node(aggregator_id)
        self._handlers[aggregator_id] = handler

    def _knows(self, aggregator_id: AggregatorId) -> bool:
        """Whether this mesh can route to ``aggregator_id``.

        The serial mesh only knows aggregators with a local handler; the
        shard proxy widens this to cover remote (other-shard) nodes so
        the full spec topology can be wired on every shard.
        """
        return aggregator_id in self._handlers

    def connect(self, link: BackhaulLink) -> None:
        """Add one mesh link."""
        for end in (link.a, link.b):
            if not self._knows(end):
                raise BackhaulError(f"{end} is not on the mesh")
        self._graph.add_edge(link.a, link.b, latency=link.latency_s)

    def latency_s(self, source: AggregatorId, destination: AggregatorId) -> float:
        """End-to-end latency along the best path."""
        if source == destination:
            return 0.0
        try:
            path = nx.shortest_path(self._graph, source, destination, weight="latency")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise BackhaulError(f"no backhaul path {source} -> {destination}") from exc
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self._graph.edges[a, b]["latency"]
        total += self._per_hop_cost_s * max(0, len(path) - 2)
        return total

    def _admit(
        self, source: AggregatorId, destination: AggregatorId, span: Any
    ) -> tuple[float, int]:
        """Fault gauntlet shared by :meth:`send` and the shard proxy.

        Returns ``(latency, copies)``; ``copies == 0`` means the message
        was dropped and the drop bookkeeping (counter, trace, span) has
        already happened.  A severed drop reports latency ``0.0``, an
        injector drop the path latency — matching what :meth:`send` has
        always returned in each case.
        """
        if self._severed(source, destination):
            self._messages_dropped += 1
            self.count("messages_dropped")
            self.trace(
                "backhaul.drop_severed", source=str(source), destination=str(destination)
            )
            if span is not None:
                self._spans.finish(span, "dropped", reason="severed")
            return 0.0, 0
        latency = self.latency_s(source, destination)
        copies = 1
        if self._link_injectors and source != destination:
            path = nx.shortest_path(self._graph, source, destination, weight="latency")
            for a, b in zip(path, path[1:]):
                injector = self._link_injectors.get(frozenset((a, b)))
                if injector is None:
                    continue
                verdict = injector.message_verdict()
                if verdict in (FaultAction.DROP, FaultAction.CORRUPT):
                    self._messages_dropped += 1
                    self.count("messages_dropped")
                    self.trace(
                        "backhaul.drop_fault",
                        source=str(source),
                        destination=str(destination),
                        verdict=verdict.value,
                    )
                    if span is not None:
                        self._spans.finish(span, "dropped", reason=verdict.value)
                    return latency, 0
                if verdict is FaultAction.DELAY:
                    latency += injector.extra_delay_s
                elif verdict is FaultAction.DUPLICATE:
                    copies = 2
        return latency, copies

    def send(self, source: AggregatorId, destination: AggregatorId, payload: Any) -> float:
        """Deliver ``payload`` to ``destination``; returns the latency.

        Injected faults apply here: messages crossing a partition or
        touching a crashed node are lost (counted, not raised — a
        partition is an operational condition, not a wiring error), and
        each traversed link's injector may drop, corrupt, delay or
        duplicate the message.
        """
        handler = self._handlers.get(destination)
        if handler is None:
            raise BackhaulError(f"unknown destination {destination}")
        span = None
        if self._spans.enabled:
            span = self._spans.begin(
                "backhaul.forward",
                self.name,
                source=source.name,
                destination=destination.name,
            )
        latency, copies = self._admit(source, destination, span)
        if copies == 0:
            return latency
        self._messages_sent += 1
        self.count("messages_sent")
        self.trace("backhaul.send", source=str(source), destination=str(destination))

        def _arrive() -> None:
            # finish() is idempotent, so a DUPLICATE fault's second copy
            # leaves the span's outcome to whichever copy landed first.
            if destination in self._down:
                # Crashed while the message was in flight.
                self._messages_dropped += 1
                self.count("messages_dropped")
                self.trace("backhaul.drop_down", destination=str(destination))
                if span is not None:
                    self._spans.finish(span, "dropped", reason="node_down")
                return
            if span is not None:
                self._spans.finish(span, "delivered")
            handler(source, payload)

        for _ in range(copies):
            self.sim.call_later(latency, _arrive, label=f"backhaul:{source}->{destination}")
        return latency

    def broadcast(self, source: AggregatorId, payload: Any) -> int:
        """Send ``payload`` to every other aggregator; returns fan-out."""
        others = [agg for agg in self._handlers if agg != source]
        for destination in others:
            self.send(source, destination, payload)
        return len(others)
