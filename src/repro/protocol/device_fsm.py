"""Device-side protocol state machine.

A pure transition system (no timers, no I/O) so it can be exhaustively
and property-tested; :class:`repro.device.stack.MeteringDevice` drives it
from simulator events.  Phases track the device's life per Fig. 3:

``UNREGISTERED`` → (join network) → ``REGISTERING`` → ``REPORTING``
        ↑                                                   |
        +--------------- leave network / removal -----------+

While roaming, the same machine handles the Nack → temporary
registration path: a report Nack'd with ``NOT_A_MEMBER`` moves the
machine back to ``REGISTERING`` with the master address attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.ids import DeviceId, NetworkAddress
from repro.protocol.messages import (
    Nack,
    NackReason,
    RegistrationRequest,
    RegistrationResponse,
)


class DevicePhase(enum.Enum):
    """Lifecycle phases of the device-side protocol."""

    IN_TRANSIT = "in_transit"
    JOINING = "joining"
    REGISTERING = "registering"
    REPORTING = "reporting"


@dataclass(frozen=True)
class FsmDecision:
    """What the stack should do after feeding an input to the FSM.

    Attributes:
        send_registration: A registration request to transmit, or None.
        resume_reporting: True when periodic reporting may (re)start.
        flush_buffer: True when locally stored records should be sent.
    """

    send_registration: RegistrationRequest | None = None
    resume_reporting: bool = False
    flush_buffer: bool = False


class DeviceFsm:
    """Tracks membership state and decides protocol reactions.

    Args:
        device_id: The device this machine belongs to.
    """

    def __init__(self, device_id: DeviceId) -> None:
        self._device_id = device_id
        self._phase = DevicePhase.IN_TRANSIT
        self._master: NetworkAddress | None = None
        self._temporary: NetworkAddress | None = None

    @property
    def device_id(self) -> DeviceId:
        """The owning device."""
        return self._device_id

    @property
    def phase(self) -> DevicePhase:
        """Current lifecycle phase."""
        return self._phase

    @property
    def master(self) -> NetworkAddress | None:
        """Home-network address, once registered."""
        return self._master

    @property
    def temporary(self) -> NetworkAddress | None:
        """Host-network address while roaming, else None."""
        return self._temporary

    @property
    def is_roaming(self) -> bool:
        """True when operating under a temporary membership."""
        return self._temporary is not None

    @property
    def has_home(self) -> bool:
        """True once the device ever registered with a home network."""
        return self._master is not None

    # -- inputs ---------------------------------------------------------

    def network_joined(self) -> FsmDecision:
        """Radio + broker connection established in some network.

        A first-time device immediately registers (master=None); a
        device with a home tries reporting first — per Fig. 3 it only
        re-registers after the host Nacks it, so returning to the *home*
        network needs no handshake.
        """
        if self._phase not in (DevicePhase.IN_TRANSIT, DevicePhase.JOINING):
            raise ProtocolError(
                f"network_joined in phase {self._phase.value}; must re-enter via network_left"
            )
        if self._master is None:
            self._phase = DevicePhase.REGISTERING
            return FsmDecision(
                send_registration=RegistrationRequest(self._device_id, master=None)
            )
        # The device cannot tell home from foreign yet; it resumes live
        # reporting and lets a Nack (foreign) or an Ack (home) decide.
        # Buffered data flushes only once a report is accepted.
        self._phase = DevicePhase.REPORTING
        return FsmDecision(resume_reporting=True)

    def network_left(self) -> None:
        """Electrical/communication detach: back to transit, drop temp."""
        self._phase = DevicePhase.IN_TRANSIT
        self._temporary = None

    def registration_response(self, response: RegistrationResponse) -> FsmDecision:
        """Master/Temp address granted by an aggregator."""
        if response.device_id != self._device_id:
            raise ProtocolError(
                f"response for {response.device_id} delivered to {self._device_id}"
            )
        if self._phase != DevicePhase.REGISTERING:
            # Duplicate grant (an aggregator answering a re-sent request
            # after the first answer already landed): idempotent no-op
            # when it confirms what we already hold.
            already_held = (
                response.address == self._temporary
                or (not response.temporary and response.address == self._master)
            )
            if self._phase == DevicePhase.REPORTING and already_held:
                return FsmDecision()
            raise ProtocolError(
                f"unexpected registration response in phase {self._phase.value}"
            )
        if response.temporary:
            if self._master is None:
                raise ProtocolError("temporary membership granted before any home exists")
            self._temporary = response.address
        else:
            self._master = response.address
            self._temporary = None
        self._phase = DevicePhase.REPORTING
        return FsmDecision(resume_reporting=True, flush_buffer=True)

    def report_nacked(self, nack: Nack) -> FsmDecision:
        """A consumption report was refused.

        ``NOT_A_MEMBER`` triggers the sequence-2 temporary registration,
        carrying the master address.  Verification or anomaly Nacks keep
        the machine reporting (the aggregator flagged the data, not the
        membership).
        """
        if nack.device_id != self._device_id:
            raise ProtocolError(f"nack for {nack.device_id} delivered to {self._device_id}")
        if self._phase is not DevicePhase.REPORTING:
            # Stale: a reply to a report sent before a removal or while a
            # registration is already in flight.  Acting on it would
            # re-register a device its master just deleted.
            return FsmDecision()
        if nack.reason == NackReason.NOT_A_MEMBER:
            # With a home this is the sequence-2 roaming case; without
            # one the membership truly vanished mid-flight — start over
            # with a fresh NULL registration either way.
            self._phase = DevicePhase.REGISTERING
            return FsmDecision(
                send_registration=RegistrationRequest(self._device_id, master=self._master)
            )
        return FsmDecision()

    def membership_transferred(self, new_master: NetworkAddress) -> None:
        """Sequence 3: home moved to a new master."""
        self._master = new_master
        self._temporary = None

    def removed(self) -> None:
        """Device was removed (loss/reset/transfer-of-ownership)."""
        self._master = None
        self._temporary = None
        self._phase = DevicePhase.IN_TRANSIT

    def begin_join(self) -> None:
        """Radio started scanning/associating in a new network."""
        if self._phase != DevicePhase.IN_TRANSIT:
            raise ProtocolError(f"begin_join in phase {self._phase.value}")
        self._phase = DevicePhase.JOINING

    @property
    def can_report(self) -> bool:
        """True when periodic reports may be transmitted."""
        return self._phase == DevicePhase.REPORTING
