"""Wire codec for protocol messages.

Messages travel over MQTT as UTF-8 JSON.  The codec is the single place
that turns dataclasses into bytes and back; it also reports the encoded
size, which the channel model uses for airtime.

In-process backends (the direct transport, the backhaul mesh) skip the
wire entirely and hand the frozen dataclasses through verbatim —
:func:`as_message` lets receive handlers accept either form.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import AddressError, CodecError, ProtocolError
from repro.protocol.messages import Message, message_from_dict

# json.dumps builds a fresh JSONEncoder on every call that passes
# non-default options; the wire format is fixed, so build it once.
_WIRE_ENCODER = json.JSONEncoder(sort_keys=True)


def encode_message(message: Message) -> bytes:
    """Serialise a message dataclass to wire bytes."""
    try:
        return _WIRE_ENCODER.encode(message.to_dict()).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot encode {type(message).__name__}: {exc}") from exc


def decode_message(payload: bytes) -> Message:
    """Parse wire bytes back into a message dataclass.

    Every malformed input — truncated UTF-8, non-JSON bytes, deeply
    nested JSON, a non-object top level, wrong-typed or missing fields —
    raises :class:`~repro.errors.CodecError`, never a bare
    ``KeyError``/``TypeError``: serve mode feeds this function bytes
    from untrusted network peers.
    """
    try:
        data: dict[str, Any] = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed message payload: {exc}") from exc
    except RecursionError:
        raise CodecError("message payload is nested too deeply") from None
    if not isinstance(data, dict):
        raise CodecError(f"message payload must be an object, got {type(data).__name__}")
    try:
        return message_from_dict(data)
    except CodecError:
        raise
    except (KeyError, TypeError, AttributeError, ValueError, AddressError,
            ProtocolError) as exc:
        raise CodecError(f"message payload missing/invalid fields: {exc}") from exc


def as_message(payload: Any) -> Message:
    """The message carried by ``payload``, whatever its wire form.

    Radio backends deliver encoded bytes and HTTP bodies arrive as
    UTF-8 JSON text (both decoded here); in-process backends deliver
    the frozen message dataclass itself, which passes through after a
    type check.  Anything else — a raw dict, ``None``, a stray object —
    raises :class:`~repro.errors.CodecError` instead of leaking an
    unvalidated payload into a receive handler.
    """
    if isinstance(payload, (bytes, bytearray)):
        return decode_message(bytes(payload))
    if isinstance(payload, str):
        return decode_message(payload.encode("utf-8"))
    if isinstance(payload, Message):
        return payload
    raise CodecError(
        f"payload is not a wire form or message dataclass: {type(payload).__name__}"
    )


def encoded_size(message: Message) -> int:
    """Wire size in bytes (drives airtime in the channel model)."""
    return len(encode_message(message))
