"""Wire codec for protocol messages.

Messages travel over MQTT as UTF-8 JSON.  The codec is the single place
that turns dataclasses into bytes and back; it also reports the encoded
size, which the channel model uses for airtime.

In-process backends (the direct transport, the backhaul mesh) skip the
wire entirely and hand the frozen dataclasses through verbatim —
:func:`as_message` lets receive handlers accept either form.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import CodecError, ProtocolError
from repro.protocol.messages import Message, message_from_dict

# json.dumps builds a fresh JSONEncoder on every call that passes
# non-default options; the wire format is fixed, so build it once.
_WIRE_ENCODER = json.JSONEncoder(sort_keys=True)


def encode_message(message: Message) -> bytes:
    """Serialise a message dataclass to wire bytes."""
    try:
        return _WIRE_ENCODER.encode(message.to_dict()).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot encode {type(message).__name__}: {exc}") from exc


def decode_message(payload: bytes) -> Message:
    """Parse wire bytes back into a message dataclass."""
    try:
        data: dict[str, Any] = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed message payload: {exc}") from exc
    if not isinstance(data, dict):
        raise CodecError(f"message payload must be an object, got {type(data).__name__}")
    try:
        return message_from_dict(data)
    except CodecError:
        raise
    except (KeyError, ValueError, ProtocolError) as exc:
        raise CodecError(f"message payload missing/invalid fields: {exc}") from exc


def as_message(payload: Any) -> Message:
    """The message carried by ``payload``, whatever its wire form.

    Radio backends deliver encoded bytes (decoded here); in-process
    backends deliver the frozen message dataclass itself, which passes
    through untouched.  Receive handlers should type-check the result as
    they would a decoded message.
    """
    if isinstance(payload, (bytes, bytearray)):
        return decode_message(bytes(payload))
    return payload


def encoded_size(message: Message) -> int:
    """Wire size in bytes (drives airtime in the channel model)."""
    return len(encode_message(message))
