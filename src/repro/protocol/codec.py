"""Wire codec for protocol messages.

Messages travel over MQTT as UTF-8 JSON.  The codec is the single place
that turns dataclasses into bytes and back; it also reports the encoded
size, which the channel model uses for airtime.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import CodecError, ProtocolError
from repro.protocol.messages import Message, message_from_dict


def encode_message(message: Message) -> bytes:
    """Serialise a message dataclass to wire bytes."""
    try:
        return json.dumps(message.to_dict(), sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot encode {type(message).__name__}: {exc}") from exc


def decode_message(payload: bytes) -> Message:
    """Parse wire bytes back into a message dataclass."""
    try:
        data: dict[str, Any] = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed message payload: {exc}") from exc
    if not isinstance(data, dict):
        raise CodecError(f"message payload must be an object, got {type(data).__name__}")
    try:
        return message_from_dict(data)
    except CodecError:
        raise
    except (KeyError, ValueError, ProtocolError) as exc:
        raise CodecError(f"message payload missing/invalid fields: {exc}") from exc


def encoded_size(message: Message) -> int:
    """Wire size in bytes (drives airtime in the channel model)."""
    return len(encode_message(message))
