"""The metering protocol of Fig. 3.

Message vocabulary (:mod:`repro.protocol.messages`), wire codec
(:mod:`repro.protocol.codec`) and the device-side state machine
(:mod:`repro.protocol.device_fsm`).  The aggregator side lives in
:mod:`repro.aggregator`, which composes membership, verification and
ledger writing around these messages.

Sequences implemented (numbering follows Fig. 3):

1. **Membership registration** — broadcast request, master-address
   response, periodic consumption reports each acknowledged.
2. **Network transition** — report to the host aggregator is Nack'd,
   device re-registers carrying its master address, the host verifies
   with the home aggregator over the backhaul, grants a temporary
   membership and forwards data home as a cost center.
3. **Membership transfer / removal** — home network changes, the old
   master is told to remove the device.
"""

from repro.protocol.codec import as_message, decode_message, encode_message
from repro.protocol.device_fsm import DeviceFsm, DevicePhase
from repro.protocol.messages import (
    Ack,
    ConsumptionReport,
    ForwardedConsumption,
    HeaderBatchRequest,
    HeaderBatchResponse,
    MembershipVerifyRequest,
    MembershipVerifyResponse,
    Nack,
    NackReason,
    RegistrationRequest,
    RegistrationResponse,
    RemoveDevice,
    TransferMembership,
)

__all__ = [
    "as_message",
    "decode_message",
    "encode_message",
    "DeviceFsm",
    "DevicePhase",
    "Ack",
    "ConsumptionReport",
    "ForwardedConsumption",
    "HeaderBatchRequest",
    "HeaderBatchResponse",
    "MembershipVerifyRequest",
    "MembershipVerifyResponse",
    "Nack",
    "NackReason",
    "RegistrationRequest",
    "RegistrationResponse",
    "RemoveDevice",
    "TransferMembership",
]
