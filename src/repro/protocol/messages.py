"""Protocol message types (Fig. 3).

Every message is a frozen dataclass with a ``to_dict`` JSON-compatible
form; :mod:`repro.protocol.codec` maps between the dataclasses and wire
dictionaries.  Field names mirror the figure's annotations: a
registration request carries ``ID + Request registration (NULL | Master)``,
a report carries ``ID + Addr(Master) + energy``, and so on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError
from repro.ids import (
    AggregatorId,
    DeviceId,
    NetworkAddress,
    interned_device_id,
    parse_address,
)


class NackReason(enum.Enum):
    """Why an aggregator refused a report or registration."""

    NOT_A_MEMBER = "not_a_member"
    UNKNOWN_MASTER = "unknown_master"
    VERIFICATION_FAILED = "verification_failed"
    ANOMALOUS_REPORT = "anomalous_report"
    NETWORK_FULL = "network_full"


@dataclass(frozen=True)
class RegistrationRequest:
    """``ID + Request registration (NULL | Master)``.

    ``master`` is None for a first-time (home) registration and carries
    the home aggregator's address when requesting *temporary* membership
    in a foreign network (sequence 2).
    """

    device_id: DeviceId
    master: NetworkAddress | None = None

    @property
    def is_temporary(self) -> bool:
        """True when this requests temporary (roaming) membership."""
        return self.master is not None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "registration_request",
            "device": self.device_id.name,
            "master": str(self.master) if self.master else None,
        }


@dataclass(frozen=True)
class RegistrationResponse:
    """``Master Addr`` / ``Temp Addr`` — the granted network address."""

    device_id: DeviceId
    address: NetworkAddress
    temporary: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "registration_response",
            "device": self.device_id.name,
            "address": str(self.address),
            "temporary": self.temporary,
        }


@dataclass(frozen=True)
class ConsumptionReport:
    """``ID + Addr (Master [+ Temp]) + energy`` — one measurement.

    Attributes:
        device_id: Reporting device.
        master: Home-network address (None only before first
            registration).
        temporary: Host-network address while roaming, else None.
        sequence: Per-device monotone sequence number; lets the
            aggregator spot replays and the device match Acks.
        measured_at: Device-RTC timestamp of the measurement window end.
        interval_s: Measurement window length.
        current_ma: Sensor current reading over the window.
        voltage_v: Device supply voltage used for energy computation.
        energy_mwh: Energy of the window (current x voltage x interval).
        buffered: True when this record was served from local storage
            after a connectivity gap (Fig. 6's backfill).
    """

    device_id: DeviceId
    master: NetworkAddress | None
    temporary: NetworkAddress | None
    sequence: int
    measured_at: float
    interval_s: float
    current_ma: float
    voltage_v: float
    energy_mwh: float
    buffered: bool = False

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ProtocolError(f"sequence must be >= 0, got {self.sequence}")
        if self.interval_s <= 0:
            raise ProtocolError(f"interval must be positive, got {self.interval_s}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "consumption_report",
            "device": self.device_id.name,
            "master": str(self.master) if self.master else None,
            "temporary": str(self.temporary) if self.temporary else None,
            "sequence": self.sequence,
            "measured_at": self.measured_at,
            "interval_s": self.interval_s,
            "current_ma": self.current_ma,
            "voltage_v": self.voltage_v,
            "energy_mwh": self.energy_mwh,
            "buffered": self.buffered,
        }

    def to_record(self) -> dict[str, Any]:
        """Ledger-record form stored inside blocks."""
        return {
            "device": self.device_id.name,
            "device_uid": self.device_id.uid,
            "sequence": self.sequence,
            "measured_at": self.measured_at,
            "interval_s": self.interval_s,
            "current_ma": self.current_ma,
            "voltage_v": self.voltage_v,
            "energy_mwh": self.energy_mwh,
            "buffered": self.buffered,
        }


@dataclass(frozen=True)
class Ack:
    """Positive acknowledgment of a report or registration step."""

    device_id: DeviceId
    sequence: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "ack",
            "device": self.device_id.name,
            "sequence": self.sequence,
        }


@dataclass(frozen=True)
class Nack:
    """Negative acknowledgment, e.g. report from a non-member (seq. 2)."""

    device_id: DeviceId
    reason: NackReason
    sequence: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "nack",
            "device": self.device_id.name,
            "reason": self.reason.value,
            "sequence": self.sequence,
        }


@dataclass(frozen=True)
class MembershipVerifyRequest:
    """Backhaul: host asks the claimed master to vouch for a device."""

    device_id: DeviceId
    claimed_master: AggregatorId
    host: AggregatorId

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "membership_verify_request",
            "device": self.device_id.name,
            "claimed_master": self.claimed_master.name,
            "host": self.host.name,
        }


@dataclass(frozen=True)
class MembershipVerifyResponse:
    """Backhaul: the master's verdict on a roaming device."""

    device_id: DeviceId
    master: AggregatorId
    valid: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "membership_verify_response",
            "device": self.device_id.name,
            "master": self.master.name,
            "valid": self.valid,
        }


@dataclass(frozen=True)
class ForwardedConsumption:
    """Backhaul: host forwards a roaming device's data home (cost center)."""

    report: ConsumptionReport
    host: AggregatorId

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "forwarded_consumption",
            "report": self.report.to_dict(),
            "host": self.host.name,
        }


@dataclass(frozen=True)
class MgmtCommand:
    """Remote-management command from the aggregator to a device.

    ``command`` is a small verb vocabulary handled by the device's
    :class:`~repro.device.app.remote_mgmt.RemoteManagement`:
    ``"status"``, ``"ping"``, ``"set-interval"`` (with ``argument`` as
    the new seconds value).
    """

    device_id: DeviceId
    request_id: int
    command: str
    argument: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "mgmt_command",
            "device": self.device_id.name,
            "request_id": self.request_id,
            "command": self.command,
            "argument": self.argument,
        }


@dataclass(frozen=True)
class MgmtResponse:
    """The device's reply to a management command."""

    device_id: DeviceId
    request_id: int
    ok: bool
    payload: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "mgmt_response",
            "device": self.device_id.name,
            "request_id": self.request_id,
            "ok": self.ok,
            "payload": self.payload,
        }


@dataclass(frozen=True)
class ReceiptRequest:
    """Device asks its aggregator to prove a record is in the ledger.

    Billing-dispute support: the answer carries a Merkle inclusion
    receipt the owner can verify without trusting the aggregator.
    """

    device_id: DeviceId
    sequence: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "receipt_request",
            "device": self.device_id.name,
            "sequence": self.sequence,
        }


@dataclass(frozen=True)
class ReceiptResponse:
    """The aggregator's answer: an inclusion receipt, or not-found.

    ``receipt`` is the JSON form of
    :class:`repro.chain.receipts.InclusionReceipt` (block coordinates,
    record, proof path) when ``found`` is True.
    """

    device_id: DeviceId
    sequence: int
    found: bool
    receipt: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "receipt_response",
            "device": self.device_id.name,
            "sequence": self.sequence,
            "found": self.found,
            "receipt": self.receipt,
        }


@dataclass(frozen=True)
class HeaderBatchRequest:
    """Lightweight-client sync: ask for a batch of block headers.

    The device tracks the common ledger without storing it — it fetches
    headers from ``from_height`` upward, at most ``max_count`` per
    round-trip (the Danzi batch-size knob).
    """

    device_id: DeviceId
    from_height: int
    max_count: int

    def __post_init__(self) -> None:
        if self.from_height < 0:
            raise ProtocolError(f"from_height must be >= 0, got {self.from_height}")
        if self.max_count < 1:
            raise ProtocolError(f"max_count must be >= 1, got {self.max_count}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "header_batch_request",
            "device": self.device_id.name,
            "from_height": self.from_height,
            "max_count": self.max_count,
        }


@dataclass(frozen=True)
class HeaderBatchResponse:
    """The aggregator's header batch, plus where the chain tip stands.

    ``headers`` holds JSON forms of
    :class:`repro.chain.sync.HeaderRecord` starting at ``from_height``.
    ``checkpoint`` (a :class:`repro.chain.sync.Checkpoint` JSON form) is
    offered to fresh clients facing a long chain so they can anchor past
    the ancient prefix instead of syncing from genesis.
    """

    device_id: DeviceId
    from_height: int
    tip_height: int
    headers: tuple[dict[str, Any], ...]
    checkpoint: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "header_batch_response",
            "device": self.device_id.name,
            "from_height": self.from_height,
            "tip_height": self.tip_height,
            "headers": [dict(header) for header in self.headers],
            "checkpoint": self.checkpoint,
        }


@dataclass(frozen=True)
class TransferMembership:
    """Sequence 3: move a device's home to a new master."""

    device_id: DeviceId
    new_master: NetworkAddress

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "transfer_membership",
            "device": self.device_id.name,
            "new_master": str(self.new_master),
        }


@dataclass(frozen=True)
class RemoveDevice:
    """Sequence 3: old master deletes a transferred/lost device."""

    device_id: DeviceId

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "remove_device",
            "device": self.device_id.name,
        }


Message = (
    RegistrationRequest
    | RegistrationResponse
    | ConsumptionReport
    | Ack
    | Nack
    | MembershipVerifyRequest
    | MembershipVerifyResponse
    | ForwardedConsumption
    | MgmtCommand
    | MgmtResponse
    | ReceiptRequest
    | ReceiptResponse
    | HeaderBatchRequest
    | HeaderBatchResponse
    | TransferMembership
    | RemoveDevice
)


def _opt_address(text: str | None) -> NetworkAddress | None:
    return parse_address(text) if text else None


def message_from_dict(data: dict[str, Any]) -> Message:
    """Rebuild a message dataclass from its ``to_dict`` form."""
    kind = data.get("type")
    device = interned_device_id(data["device"]) if "device" in data else None
    if kind == "registration_request":
        return RegistrationRequest(device, _opt_address(data.get("master")))
    if kind == "registration_response":
        return RegistrationResponse(
            device, parse_address(data["address"]), bool(data.get("temporary", False))
        )
    if kind == "consumption_report":
        return ConsumptionReport(
            device_id=device,
            master=_opt_address(data.get("master")),
            temporary=_opt_address(data.get("temporary")),
            sequence=int(data["sequence"]),
            measured_at=float(data["measured_at"]),
            interval_s=float(data["interval_s"]),
            current_ma=float(data["current_ma"]),
            voltage_v=float(data["voltage_v"]),
            energy_mwh=float(data["energy_mwh"]),
            buffered=bool(data.get("buffered", False)),
        )
    if kind == "ack":
        return Ack(device, data.get("sequence"))
    if kind == "nack":
        return Nack(device, NackReason(data["reason"]), data.get("sequence"))
    if kind == "membership_verify_request":
        return MembershipVerifyRequest(
            device, AggregatorId(data["claimed_master"]), AggregatorId(data["host"])
        )
    if kind == "membership_verify_response":
        return MembershipVerifyResponse(
            device, AggregatorId(data["master"]), bool(data["valid"])
        )
    if kind == "forwarded_consumption":
        report = message_from_dict(data["report"])
        if not isinstance(report, ConsumptionReport):
            raise ProtocolError("forwarded_consumption must wrap a consumption_report")
        return ForwardedConsumption(report, AggregatorId(data["host"]))
    if kind == "mgmt_command":
        argument = data.get("argument")
        return MgmtCommand(
            device, int(data["request_id"]), str(data["command"]),
            float(argument) if argument is not None else None,
        )
    if kind == "mgmt_response":
        return MgmtResponse(
            device, int(data["request_id"]), bool(data["ok"]), dict(data["payload"])
        )
    if kind == "receipt_request":
        return ReceiptRequest(device, int(data["sequence"]))
    if kind == "receipt_response":
        return ReceiptResponse(
            device, int(data["sequence"]), bool(data["found"]), data.get("receipt")
        )
    if kind == "header_batch_request":
        return HeaderBatchRequest(
            device, int(data["from_height"]), int(data["max_count"])
        )
    if kind == "header_batch_response":
        checkpoint = data.get("checkpoint")
        return HeaderBatchResponse(
            device_id=device,
            from_height=int(data["from_height"]),
            tip_height=int(data["tip_height"]),
            headers=tuple(dict(header) for header in data["headers"]),
            checkpoint=dict(checkpoint) if checkpoint is not None else None,
        )
    if kind == "transfer_membership":
        return TransferMembership(device, parse_address(data["new_master"]))
    if kind == "remove_device":
        return RemoveDevice(device)
    raise ProtocolError(f"unknown message type {kind!r}")
