"""Small load-flow helpers over the grid topology.

The feeder tree here is radial and low-voltage, so "load flow" reduces to
current summation with per-segment losses — but keeping it behind a
function boundary lets tests and experiments ask for network-level truth
without reaching into topology internals.
"""

from __future__ import annotations

from repro.grid.topology import GridNetwork, GridTopology
from repro.ids import AggregatorId


def network_true_current_ma(network: GridNetwork, at_time: float) -> float:
    """Ground-truth feeder current for one network."""
    return network.feeder_current_ma(at_time)


def topology_true_current_ma(topology: GridTopology, at_time: float) -> dict[AggregatorId, float]:
    """Ground-truth feeder current for every network in the topology."""
    return {
        net.network_id: net.feeder_current_ma(at_time)
        for net in topology.networks
    }


def device_share(network: GridNetwork, at_time: float) -> dict[str, float]:
    """Per-device terminal currents (mA) keyed by device name.

    Useful for the stacked-bar rendering of Fig. 5.
    """
    return {
        device_id.name: network.device_current_ma(device_id, at_time)
        for device_id in network.attached_devices
    }
