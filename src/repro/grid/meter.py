"""Feeder meter — the aggregator's system-level complementary measurement.

The aggregator "has a physical electrical connection with the rest of the
network and provides the total energy consumption for the network which
is analogous to a centralized meter" (paper §III-B).  We model it as an
INA219 with a wider range (the feeder carries the sum of all devices)
sampling the true feeder current.
"""

from __future__ import annotations

import numpy as np

from repro.grid.topology import GridNetwork
from repro.hw.ina219 import Ina219, Ina219Config


class FeederMeter:
    """Samples the network's true feeder current through a sensor model.

    Args:
        network: The grid-location this meter instruments.
        rng: Random stream for the sensor-error realisation.
        sensor_config: Sensor configuration; defaults to an INA219 on the
            3.2 A range (0.01 ohm shunt variant used for feeder-level
            monitoring).
    """

    def __init__(
        self,
        network: GridNetwork,
        rng: np.random.Generator,
        sensor_config: Ina219Config | None = None,
    ) -> None:
        # Feeder metering is revenue-grade: the INA219 runs with 128-sample
        # averaging (raising effective resolution beyond 12 bits) and a
        # factory gain calibration, so gain error is an order of magnitude
        # below a bare device sensor while the 0.5 mA offset remains.
        config = sensor_config or Ina219Config(
            shunt_ohms=0.01,
            range_ma=3200.0,
            adc_bits=14,
            offset_max_ma=0.5,
            gain_error_max=0.002,
            noise_std_ma=0.1,
        )
        self._network = network
        self._sensor = Ina219(config, rng)

    @property
    def network(self) -> GridNetwork:
        """The instrumented grid-location."""
        return self._network

    @property
    def sensor(self) -> Ina219:
        """The underlying sensor model."""
        return self._sensor

    def true_current_ma(self, at_time: float) -> float:
        """Ground-truth feeder current (no sensor error)."""
        return self._network.feeder_current_ma(at_time)

    def measure_ma(self, at_time: float) -> float:
        """Metered feeder current (through the sensor error model)."""
        return self._sensor.measure_ma(self.true_current_ma(at_time))
