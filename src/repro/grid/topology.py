"""Grid topology: networks, attachment points and device mobility.

A :class:`GridNetwork` is one grid-location (one WAN in Fig. 1): a feeder
bus behind a feeder meter, with devices attached through individual
:class:`~repro.hw.powerline.WireSegment` runs.  A
:class:`GridTopology` is the set of all networks plus the invariant that
a device is electrically attached to at most one network at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import GridError
from repro.hw.powerline import WireSegment
from repro.ids import AggregatorId, DeviceId

# A device's true terminal current as a function of simulated time (mA).
CurrentFn = Callable[[float], float]


@dataclass
class Attachment:
    """One device electrically attached to a network.

    Attributes:
        device_id: The attached device.
        current_fn: True terminal current draw of the device over time.
        segment: The wire run connecting the device to the feeder.
        attached_at: Simulated time of attachment.
    """

    device_id: DeviceId
    current_fn: CurrentFn
    segment: WireSegment
    attached_at: float


class GridNetwork:
    """One grid-location: a feeder bus with attached devices.

    Args:
        network_id: The aggregator that owns this grid-location.
        supply_voltage_v: Feeder supply voltage at the attachment points.
        host_load_ma: Constant draw of the aggregator host itself
            (an RPi in the testbed), seen by the feeder meter.
        default_segment: Wire model used when an attachment does not
            bring its own.
    """

    def __init__(
        self,
        network_id: AggregatorId,
        supply_voltage_v: float = 5.0,
        host_load_ma: float = 0.0,
        default_segment: WireSegment | None = None,
    ) -> None:
        if supply_voltage_v <= 0:
            raise GridError(f"supply voltage must be positive, got {supply_voltage_v}")
        if host_load_ma < 0:
            raise GridError(f"host load must be >= 0, got {host_load_ma}")
        self._network_id = network_id
        self._supply_voltage_v = supply_voltage_v
        self._host_load_ma = host_load_ma
        self._default_segment = default_segment or WireSegment()
        self._attachments: dict[DeviceId, Attachment] = {}

    @property
    def network_id(self) -> AggregatorId:
        """Owning aggregator / grid-location identifier."""
        return self._network_id

    @property
    def supply_voltage_v(self) -> float:
        """Feeder voltage at the attachment points."""
        return self._supply_voltage_v

    @property
    def host_load_ma(self) -> float:
        """Constant aggregator-host draw included in the feeder total."""
        return self._host_load_ma

    @property
    def attached_devices(self) -> list[DeviceId]:
        """IDs of currently attached devices, in attachment order."""
        return list(self._attachments)

    def is_attached(self, device_id: DeviceId) -> bool:
        """Whether ``device_id`` is currently on this feeder."""
        return device_id in self._attachments

    def attach(
        self,
        device_id: DeviceId,
        current_fn: CurrentFn,
        at_time: float,
        segment: WireSegment | None = None,
    ) -> Attachment:
        """Electrically connect a device to this feeder."""
        if device_id in self._attachments:
            raise GridError(f"{device_id} is already attached to {self._network_id}")
        attachment = Attachment(
            device_id=device_id,
            current_fn=current_fn,
            segment=segment or self._default_segment,
            attached_at=at_time,
        )
        self._attachments[device_id] = attachment
        return attachment

    def detach(self, device_id: DeviceId) -> None:
        """Disconnect a device from this feeder."""
        if device_id not in self._attachments:
            raise GridError(f"{device_id} is not attached to {self._network_id}")
        del self._attachments[device_id]

    def device_current_ma(self, device_id: DeviceId, at_time: float) -> float:
        """True terminal current of one attached device."""
        attachment = self._attachments.get(device_id)
        if attachment is None:
            raise GridError(f"{device_id} is not attached to {self._network_id}")
        current = attachment.current_fn(at_time)
        if current < 0:
            raise GridError(
                f"{device_id} reported negative draw {current} mA at t={at_time}"
            )
        return current

    def feeder_current_ma(self, at_time: float) -> float:
        """True total current at the feeder (ground truth).

        Sum over attached devices of terminal current plus wire losses,
        plus the aggregator host's own draw.
        """
        total = self._host_load_ma
        for attachment in self._attachments.values():
            device_current = self.device_current_ma(attachment.device_id, at_time)
            total += attachment.segment.feeder_current_ma(
                device_current, self._supply_voltage_v
            )
        return total


class GridTopology:
    """All grid-locations plus the single-attachment invariant."""

    def __init__(self) -> None:
        self._networks: dict[AggregatorId, GridNetwork] = {}
        self._location: dict[DeviceId, AggregatorId] = {}

    @property
    def networks(self) -> list[GridNetwork]:
        """All registered grid networks."""
        return list(self._networks.values())

    def add_network(self, network: GridNetwork) -> None:
        """Register one grid-location."""
        if network.network_id in self._networks:
            raise GridError(f"network {network.network_id} already exists")
        self._networks[network.network_id] = network

    def network(self, network_id: AggregatorId) -> GridNetwork:
        """Look up a grid-location by its aggregator id."""
        net = self._networks.get(network_id)
        if net is None:
            raise GridError(f"unknown network {network_id}")
        return net

    def location_of(self, device_id: DeviceId) -> AggregatorId | None:
        """The grid-location a device is attached to, or None (in transit)."""
        return self._location.get(device_id)

    def attach(
        self,
        device_id: DeviceId,
        network_id: AggregatorId,
        current_fn: CurrentFn,
        at_time: float,
        segment: WireSegment | None = None,
    ) -> Attachment:
        """Attach a device, enforcing at-most-one-location."""
        current_location = self._location.get(device_id)
        if current_location is not None:
            raise GridError(
                f"{device_id} is attached at {current_location}; detach first"
            )
        attachment = self.network(network_id).attach(
            device_id, current_fn, at_time, segment=segment
        )
        self._location[device_id] = network_id
        return attachment

    def detach(self, device_id: DeviceId) -> None:
        """Detach a device wherever it is attached."""
        network_id = self._location.get(device_id)
        if network_id is None:
            raise GridError(f"{device_id} is not attached anywhere")
        self.network(network_id).detach(device_id)
        del self._location[device_id]

    def move(
        self,
        device_id: DeviceId,
        to_network: AggregatorId,
        current_fn: CurrentFn,
        at_time: float,
        segment: WireSegment | None = None,
    ) -> Attachment:
        """Detach-then-attach convenience for mobility scenarios."""
        if self._location.get(device_id) is not None:
            self.detach(device_id)
        return self.attach(device_id, to_network, current_fn, at_time, segment=segment)
