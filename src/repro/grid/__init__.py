"""Electrical grid substrate.

Models the *physical* layer of Fig. 1 (blue solid lines): feeders, wire
segments, attachment points and the per-network feeder meter that gives
the aggregator its system-level complementary measurement.

The communication network is a separate substrate (:mod:`repro.net`);
a device can be electrically attached while communicatively disconnected
(that is exactly the buffering window of Fig. 6).
"""

from repro.grid.loadflow import network_true_current_ma
from repro.grid.meter import FeederMeter
from repro.grid.topology import Attachment, GridNetwork, GridTopology

__all__ = [
    "Attachment",
    "GridNetwork",
    "GridTopology",
    "FeederMeter",
    "network_true_current_ma",
]
