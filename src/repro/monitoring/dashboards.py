"""Text dashboards — terminal rendering of recorded series.

A unicode-block sparkline per series plus summary statistics.  Good
enough to eyeball a Fig. 6 timeline in a terminal without matplotlib
(which is not available offline).
"""

from __future__ import annotations

import numpy as np

from repro.monitoring.timeseries import SeriesBank, TimeSeries

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 60) -> str:
    """Render values as a fixed-width unicode sparkline."""
    if not values:
        return "(empty)"
    data = np.asarray(values, dtype=float)
    if len(data) > width:
        # Mean-pool down to the target width.
        edges = np.linspace(0, len(data), width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() if b > a else data[min(a, len(data) - 1)]
             for a, b in zip(edges, edges[1:])]
        )
    lo, hi = float(data.min()), float(data.max())
    if hi - lo < 1e-12:
        return _BLOCKS[1] * len(data)
    scaled = (data - lo) / (hi - lo) * (len(_BLOCKS) - 2)
    return "".join(_BLOCKS[1 + int(round(v))] for v in scaled)


def render_series(series: TimeSeries, width: int = 60) -> str:
    """One-series panel: name, stats line, sparkline."""
    values = series.values
    if not values:
        return f"{series.name}: (no data)"
    arr = np.asarray(values)
    stats = (
        f"n={len(arr)} min={arr.min():.3f} mean={arr.mean():.3f} "
        f"max={arr.max():.3f} {series.unit}"
    )
    return f"{series.name}\n  {stats}\n  {sparkline(values, width)}"


def render_dashboard(bank: SeriesBank, width: int = 60) -> str:
    """All series in the bank as stacked panels."""
    panels = [render_series(bank[name], width) for name in bank.names]
    if not panels:
        return "(no series recorded)"
    return "\n\n".join(panels)
