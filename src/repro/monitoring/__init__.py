"""Monitoring — the reproduction's Grafana substitute.

The testbed used Grafana to watch live transmissions; here a
:class:`~repro.monitoring.timeseries.TimeSeries` records any named
quantity over simulated time, :mod:`repro.monitoring.dashboards` renders
text sparkline dashboards, and :mod:`repro.monitoring.export` writes
CSV/JSON for external plotting.
"""

from repro.monitoring.alerts import Alert, AlertCondition, AlertManager, AlertRule
from repro.monitoring.counters import CounterBank
from repro.monitoring.dashboards import render_dashboard, render_series
from repro.monitoring.export import series_to_csv, series_to_json
from repro.monitoring.html import render_dashboard_html, save_dashboard_html
from repro.monitoring.timeseries import SeriesBank, TimeSeries

__all__ = [
    "Alert",
    "AlertCondition",
    "AlertManager",
    "AlertRule",
    "CounterBank",
    "render_dashboard",
    "render_dashboard_html",
    "render_series",
    "save_dashboard_html",
    "series_to_csv",
    "series_to_json",
    "SeriesBank",
    "TimeSeries",
]
