"""Self-contained HTML dashboard export.

The testbed's Grafana showed live charts; this renderer produces a
single dependency-free HTML file with inline SVG line charts for every
recorded series — openable anywhere, attachable to reports.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.errors import ConfigError
from repro.monitoring.timeseries import SeriesBank, TimeSeries

_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; background: #fafafa; }}
 .panel {{ background: #fff; border: 1px solid #ddd; border-radius: 6px;
           padding: 1em; margin-bottom: 1.5em; }}
 .panel h2 {{ margin: 0 0 0.2em 0; font-size: 1.0em; }}
 .stats {{ color: #666; font-size: 0.85em; margin-bottom: 0.5em; }}
 svg {{ width: 100%; height: 140px; }}
 polyline {{ fill: none; stroke: #2a6fb0; stroke-width: 1.5; }}
 .axis {{ stroke: #ccc; stroke-width: 1; }}
 .label {{ fill: #888; font-size: 10px; }}
</style></head><body>
<h1>{title}</h1>
{panels}
</body></html>
"""

_PANEL = """<div class="panel">
<h2>{name}</h2>
<div class="stats">n={n} &middot; min={lo:.3f} &middot; mean={mean:.3f}
 &middot; max={hi:.3f} {unit}</div>
<svg viewBox="0 0 800 140" preserveAspectRatio="none">
<line class="axis" x1="0" y1="130" x2="800" y2="130"/>
<polyline points="{points}"/>
<text class="label" x="2" y="12">{hi:.1f}</text>
<text class="label" x="2" y="128">{lo:.1f}</text>
</svg></div>
"""


def _svg_points(series: TimeSeries, width: int = 800, height: int = 120, top: int = 10) -> str:
    times = series.times
    values = series.values
    if not times:
        return ""
    t_lo, t_hi = times[0], times[-1]
    v_lo, v_hi = min(values), max(values)
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0
    # Downsample long series: one point per horizontal pixel is plenty.
    step = max(1, len(times) // width)
    points = []
    for i in range(0, len(times), step):
        x = (times[i] - t_lo) / t_span * width
        y = top + (1.0 - (values[i] - v_lo) / v_span) * height
        points.append(f"{x:.1f},{y:.1f}")
    return " ".join(points)


def render_series_html(series: TimeSeries) -> str:
    """One panel's HTML for a single series."""
    values = series.values
    if not values:
        return _PANEL.format(
            name=html.escape(series.name), n=0, lo=0.0, mean=0.0, hi=0.0,
            unit=html.escape(series.unit), points="",
        )
    return _PANEL.format(
        name=html.escape(series.name),
        n=len(values),
        lo=min(values),
        mean=sum(values) / len(values),
        hi=max(values),
        unit=html.escape(series.unit),
        points=_svg_points(series),
    )


def render_dashboard_html(bank: SeriesBank, title: str = "repro dashboard") -> str:
    """The full page for every series in the bank."""
    panels = "".join(render_series_html(bank[name]) for name in bank.names)
    if not panels:
        panels = "<p>(no series recorded)</p>"
    return _PAGE.format(title=html.escape(title), panels=panels)


def save_dashboard_html(bank: SeriesBank, path: str | Path, title: str = "repro dashboard") -> Path:
    """Write the dashboard page to ``path``; returns it."""
    target = Path(path)
    if target.suffix != ".html":
        raise ConfigError(f"dashboard path should end in .html, got {target}")
    target.write_text(render_dashboard_html(bank, title))
    return target
