"""Named monotonic counters (the fault/retry observability surface).

Where :class:`~repro.monitoring.timeseries.TimeSeries` records values
over time, a :class:`CounterBank` holds monotonically increasing named
counts — fault injections, retries, timeouts, drops.  Injectors and
recovery paths increment counters; experiments and dashboards read one
snapshot at the end (or sample periodically into a
:class:`~repro.monitoring.timeseries.SeriesBank`).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.monitoring.timeseries import SeriesBank


class CounterBank:
    """Named monotonic counters with hierarchical dotted names."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def names(self) -> list[str]:
        """Sorted counter names."""
        return sorted(self._counts)

    def increment(self, name: str, by: int = 1) -> int:
        """Add ``by`` to ``name`` (creating it at 0); returns the new value."""
        if not name:
            raise ConfigError("counter name must be non-empty")
        if by < 0:
            raise ConfigError(f"counters are monotonic; cannot add {by}")
        value = self._counts.get(name, 0) + by
        self._counts[name] = value
        return value

    def get(self, name: str, default: int = 0) -> int:
        """Current value of ``name`` (``default`` when never incremented)."""
        return self._counts.get(name, default)

    def snapshot(self, prefix: str = "") -> dict[str, int]:
        """Copy of all counters, optionally filtered by name prefix."""
        return {
            name: value
            for name, value in sorted(self._counts.items())
            if name.startswith(prefix)
        }

    def total(self, prefix: str = "") -> int:
        """Sum of every counter matching ``prefix``."""
        counts = self._counts
        if not prefix:
            return sum(counts.values())
        return sum(
            value for name, value in counts.items() if name.startswith(prefix)
        )

    def record_into(self, bank: SeriesBank, time: float) -> None:
        """Append the current value of every counter to ``bank``.

        Sampling the bank periodically turns the counters into ordinary
        time series for dashboards and CSV export.
        """
        for name, value in self._counts.items():
            bank.record(f"counter:{name}", time, float(value), "count")
