"""Series export to CSV and JSON for external tooling."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.monitoring.timeseries import SeriesBank, TimeSeries


def series_to_csv(series: TimeSeries) -> str:
    """CSV text with ``time,value`` rows and a header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s", f"value_{series.unit or 'raw'}"])
    for time, value in zip(series.times, series.values):
        writer.writerow([f"{time:.6f}", f"{value:.9g}"])
    return buffer.getvalue()


def series_to_json(series: TimeSeries) -> str:
    """JSON document with metadata and parallel arrays."""
    return json.dumps(
        {
            "name": series.name,
            "unit": series.unit,
            "times": series.times,
            "values": series.values,
        }
    )


def export_bank(bank: SeriesBank, directory: str | Path) -> list[Path]:
    """Write every series in ``bank`` as CSV files; returns the paths.

    Sanitising collapses distinct names (``a/b`` and ``a:b`` both map to
    ``a_b``), so colliding filenames get a numeric suffix — every series
    keeps its own file and the returned paths are distinct.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    taken: set[str] = set()
    for name in bank.names:
        safe = name.replace("/", "_").replace(" ", "_").replace(":", "_")
        filename = f"{safe}.csv"
        suffix = 0
        while filename in taken:
            suffix += 1
            filename = f"{safe}.{suffix}.csv"
        taken.add(filename)
        path = target / filename
        path.write_text(series_to_csv(bank[name]))
        written.append(path)
    return written
