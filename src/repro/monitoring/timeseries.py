"""Time-series recording.

Append-only (time, value) series with the query helpers experiments
need: windowed means, resampling to fixed buckets, and alignment of two
series for comparison (device sum vs aggregator measurement in Fig. 5).
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import ConfigError


class TimeSeries:
    """Append-only series of (time, value) samples.

    Args:
        name: Series identity (used by dashboards and exports).
        unit: Unit label, e.g. ``"mA"``.
    """

    def __init__(self, name: str, unit: str = "") -> None:
        if not name:
            raise ConfigError("series name must be non-empty")
        self._name = name
        self._unit = unit
        self._times: list[float] = []
        self._values: list[float] = []

    @property
    def name(self) -> str:
        """Series identity."""
        return self._name

    @property
    def unit(self) -> str:
        """Unit label."""
        return self._unit

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> list[float]:
        """Sample times (copy)."""
        return list(self._times)

    @property
    def values(self) -> list[float]:
        """Sample values (copy)."""
        return list(self._values)

    def append(self, time: float, value: float) -> None:
        """Add one sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ConfigError(
                f"series {self._name}: time {time} < last {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def window(self, start: float, end: float) -> tuple[list[float], list[float]]:
        """Samples with ``start <= time < end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._times[lo:hi], self._values[lo:hi]

    def mean(self, start: float | None = None, end: float | None = None) -> float:
        """Mean value, optionally over a window.  0.0 when empty."""
        if start is None and end is None:
            values = self._values
        else:
            _, values = self.window(
                start if start is not None else float("-inf"),
                end if end is not None else float("inf"),
            )
        if not values:
            return 0.0
        return float(np.mean(values))

    def integrate(self, start: float, end: float) -> float:
        """Trapezoidal integral of value over time within [start, end]."""
        times, values = self.window(start, end)
        if len(times) < 2:
            return 0.0
        return float(np.trapezoid(values, times))

    def resample(self, bucket_s: float) -> "TimeSeries":
        """Mean-per-bucket resampling onto a fixed grid."""
        if bucket_s <= 0:
            raise ConfigError(f"bucket must be positive, got {bucket_s}")
        out = TimeSeries(f"{self._name}@{bucket_s}s", self._unit)
        if not self._times:
            return out
        start = self._times[0]
        end = self._times[-1]
        # Edges are computed as start + i * bucket_s with an integer i:
        # a running `edge += bucket_s` accumulates float error, so late
        # samples drift into the wrong bucket and the final bucket can
        # be dropped.  Adjacent buckets share the exact same edge value,
        # so every sample lands in exactly one bucket.
        i = 0
        lo = start
        while lo <= end:
            hi = start + (i + 1) * bucket_s
            _, values = self.window(lo, hi)
            if values:
                out.append(lo + bucket_s / 2.0, float(np.mean(values)))
            i += 1
            lo = start + i * bucket_s
        return out

    def last_value(self) -> float | None:
        """The most recent sample value, or None when empty."""
        return self._values[-1] if self._values else None


class SeriesBank:
    """Named collection of series, creating them on first use."""

    def __init__(self) -> None:
        self._series: dict[str, TimeSeries] = {}

    def series(self, name: str, unit: str = "") -> TimeSeries:
        """Get or create the series called ``name``.

        The empty-string unit is a wildcard: it matches any existing
        unit, and a series created without a unit adopts the first
        concrete one it sees.  Two different concrete units for the
        same name would mislabel every export, so that is an error.
        """
        existing = self._series.get(name)
        if existing is None:
            existing = TimeSeries(name, unit)
            self._series[name] = existing
        elif unit:
            if not existing.unit:
                existing._unit = unit
            elif unit != existing.unit:
                raise ConfigError(
                    f"series {name!r} is recorded in {existing.unit!r}; "
                    f"refusing conflicting unit {unit!r}"
                )
        return existing

    def record(self, name: str, time: float, value: float, unit: str = "") -> None:
        """Append to the named series, creating it if needed."""
        self.series(name, unit).append(time, value)

    @property
    def names(self) -> list[str]:
        """All series names, in creation order."""
        return list(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __getitem__(self, name: str) -> TimeSeries:
        if name not in self._series:
            raise ConfigError(f"no series named {name!r}")
        return self._series[name]
