"""Alerting over recorded series — the operational half of monitoring.

Grafana in the testbed was used for live observation; an operator would
also configure alerts.  An :class:`AlertRule` watches one series for a
threshold condition sustained over a window; the :class:`AlertManager`
evaluates all rules against a :class:`~repro.monitoring.timeseries.
SeriesBank` and keeps a deduplicated alert log (fire once per
excursion, re-arm after recovery).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.monitoring.timeseries import SeriesBank


class AlertCondition(enum.Enum):
    """Supported threshold conditions."""

    ABOVE = "above"
    BELOW = "below"


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule.

    Attributes:
        name: Rule identity (used in the alert log).
        series: Name of the watched series in the bank.
        condition: Fire when the windowed mean is above/below...
        threshold: ...this value...
        window_s: ...over a trailing window of this length.
    """

    name: str
    series: str
    condition: AlertCondition
    threshold: float
    window_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("rule name must be non-empty")
        if self.window_s <= 0:
            raise ConfigError(f"window must be positive, got {self.window_s}")

    def breached(self, value: float) -> bool:
        """Whether ``value`` violates the threshold."""
        if self.condition is AlertCondition.ABOVE:
            return value > self.threshold
        return value < self.threshold


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    rule: str
    time: float
    value: float
    message: str


@dataclass
class _RuleState:
    firing: bool = False


class AlertManager:
    """Evaluates rules against a series bank with re-arm semantics.

    Args:
        bank: The monitored series.
    """

    def __init__(self, bank: SeriesBank) -> None:
        self._bank = bank
        self._rules: dict[str, AlertRule] = {}
        self._states: dict[str, _RuleState] = {}
        self._alerts: list[Alert] = []

    @property
    def alerts(self) -> list[Alert]:
        """Every alert fired so far, in order."""
        return list(self._alerts)

    @property
    def firing(self) -> list[str]:
        """Names of rules currently in the firing state."""
        return [name for name, state in self._states.items() if state.firing]

    def add_rule(self, rule: AlertRule) -> None:
        """Register a rule (names are unique)."""
        if rule.name in self._rules:
            raise ConfigError(f"duplicate rule name {rule.name!r}")
        self._rules[rule.name] = rule
        self._states[rule.name] = _RuleState()

    def evaluate(self, now: float) -> list[Alert]:
        """Evaluate every rule at time ``now``; returns newly fired alerts.

        A rule fires once when its condition first holds and re-arms
        when the condition clears — no alert storms while an excursion
        persists.

        No-data semantics: a window with no samples (or a series that
        does not exist yet) clears the firing state.  A series that
        stops producing samples therefore re-arms after one empty
        evaluation instead of staying "firing" forever, and fires a
        fresh alert if the breach is still present when data returns.
        """
        fired: list[Alert] = []
        for name, rule in self._rules.items():
            if rule.series not in self._bank:
                self._states[name].firing = False
                continue
            series = self._bank[rule.series]
            _, values = series.window(now - rule.window_s, now + 1e-12)
            if not values:
                self._states[name].firing = False
                continue
            mean = sum(values) / len(values)
            state = self._states[name]
            if rule.breached(mean):
                if not state.firing:
                    state.firing = True
                    alert = Alert(
                        rule=name,
                        time=now,
                        value=mean,
                        message=(
                            f"{rule.series} mean {mean:.3f} "
                            f"{rule.condition.value} {rule.threshold} "
                            f"over {rule.window_s}s"
                        ),
                    )
                    self._alerts.append(alert)
                    fired.append(alert)
            else:
                state.firing = False
        return fired
