"""The simulation run loop.

:class:`Simulator` ties together the clock, the event queue, the random
streams and the trace recorder.  Components schedule work with
:meth:`Simulator.schedule` (absolute) / :meth:`Simulator.call_later`
(relative) / :meth:`Simulator.every` (periodic), and the experiment
harness drives the loop with :meth:`Simulator.run_until` or
:meth:`Simulator.run`.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError
from repro.obs.spans import SpanTracer
from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceRecorder


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        callback: Callable[[], Any],
        label: str,
        priority: int,
    ) -> None:
        self._sim = simulator
        self._interval = interval
        self._callback = callback
        self._label = label
        self._priority = priority
        self._event: Event | None = None
        self._stopped = False

    @property
    def interval(self) -> float:
        """Seconds between firings."""
        return self._interval

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped

    def start(self, first_at: float) -> None:
        """Arm the task; first firing at absolute time ``first_at``.

        A task may be armed only once — a second ``start`` while an
        event is pending would create two concurrent firing chains.
        """
        if self._stopped:
            raise SchedulingError("cannot start a stopped periodic task")
        if self._event is not None:
            raise SchedulingError(
                f"periodic task {self._label!r} is already armed"
            )
        self._event = self._sim.schedule(
            first_at, self._fire, priority=self._priority, label=self._label
        )

    def stop(self) -> None:
        """Cancel future firings.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reschedule(self, interval: float) -> None:
        """Change the firing interval.

        When an event is pending it is re-armed at ``now + interval``,
        so a shortened interval takes effect immediately instead of
        waiting out the previously scheduled (longer) gap.
        """
        if interval <= 0:
            raise SchedulingError(f"interval must be positive, got {interval}")
        self._interval = interval
        if self._stopped or self._event is None:
            return
        self._event.cancel()
        self._event = self._sim.call_later(
            interval, self._fire, priority=self._priority, label=self._label
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        # The pending event just popped; clear it so a reschedule from
        # inside the callback only updates the interval (the re-arm
        # below uses whatever interval the callback left behind).
        self._event = None
        self._callback()
        if not self._stopped and self._event is None:
            self._event = self._sim.call_later(
                self._interval, self._fire, priority=self._priority, label=self._label
            )


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: Master seed for all random streams.
        trace: Whether to capture trace records.
        trace_categories: Optional whitelist of trace categories.
        spans: Whether to record protocol-conversation spans
            (:class:`~repro.obs.spans.SpanTracer`).  Off by default; a
            disabled tracer is method-swapped no-ops, so instrumented
            code stays out of the hot path's way.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        trace_categories: list[str] | None = None,
        spans: bool = False,
    ) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.rng = RngStreams(seed)
        self.trace = TraceRecorder(enabled=trace, categories=trace_categories)
        self.spans = SpanTracer(self.clock, enabled=spans)
        self._running = False
        self._events_executed = 0
        self._profiler = None

    @property
    def profiler(self):
        """The installed :class:`~repro.obs.profiler.KernelProfiler`, if any."""
        return self._profiler

    def set_profiler(self, profiler) -> None:
        """Install (or, with ``None``, remove) a kernel profiler.

        The profiler substitutes its own instrumented copy of the run
        loop; with none installed the only cost is one ``is not None``
        check per ``run_until``/``run`` call.
        """
        self._profiler = profiler

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Total events the loop has executed so far."""
        return self._events_executed

    # -- scheduling ----------------------------------------------------

    def schedule(
        self,
        at: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``at``.

        Inlines the queue push: this runs once per scheduled event, and
        the single chained comparison rejects every invalid time at once
        (NaN fails both bounds, the past fails the left one, ``±inf``
        each fail one side).
        """
        if not (self.clock.now <= at < math.inf):
            self._reject_time(at)
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        at = float(at)  # the run loop assigns event times to clock.now verbatim
        queue = self.queue
        sequence = next(queue._counter)
        event = Event(at, priority, sequence, callback, label)
        heappush(queue._heap, (at, priority, sequence, event))
        return event

    def _reject_time(self, at: float) -> None:
        if math.isnan(at) or math.isinf(at):
            raise SchedulingError(f"event time must be finite, got {at}")
        raise SchedulingError(
            f"cannot schedule at {at} before current time {self.clock.now}"
        )

    def call_later(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``now + delay``.

        Duplicates :meth:`schedule`'s inline push: this is the single
        most-called scheduling entry point, and the extra frame showed
        up in fleet profiles.  ``delay >= 0`` already guarantees the
        not-in-the-past invariant, so only the finiteness check remains
        (``now + inf`` and ``now + nan`` both fail ``at < inf``).
        """
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay}")
        at = self.clock.now + delay
        if not (at < math.inf):
            self._reject_time(at)
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        queue = self.queue
        sequence = next(queue._counter)
        event = Event(at, priority, sequence, callback, label)
        heappush(queue._heap, (at, priority, sequence, event))
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        first_at: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> PeriodicTask:
        """Create and start a periodic task firing every ``interval`` seconds.

        The first firing defaults to ``now + interval``.
        """
        if interval <= 0:
            raise SchedulingError(f"interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, label, priority)
        task.start(self.clock.now + interval if first_at is None else first_at)
        return task

    # -- run loop ------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.  Returns False when queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._events_executed += 1
        event.callback()
        return True

    def _execute(self, end_time: float, max_events: int | None, guard: str) -> None:
        """The hot loop shared by :meth:`run_until` and :meth:`run`.

        One heap scan per event: the loop inspects the head entry once,
        pops it, and dispatches — there is no separate peek-then-pop
        pass.  Same-instant events batch through consecutive iterations
        without touching the clock (``advance_to`` runs only when the
        head's time actually moves), and the head is re-read after every
        callback, so an event scheduled *during* the batch at the same
        instant but a lower priority still fires in exact
        ``(time, priority, sequence)`` order — the order is bit-identical
        to the pre-tuple-heap kernel.
        """
        profiler = self._profiler
        if profiler is not None:
            # The profiler runs its own instrumented replica of this
            # loop; delegating here keeps the uninstrumented path free
            # of per-event timing branches.
            profiler.execute(self, end_time, max_events, guard)
            return
        heap = self.queue._heap
        clock = self.clock
        now = clock.now
        executed = 0
        try:
            if max_events is None:
                # Unguarded loop: no bound bookkeeping per event.
                while heap:
                    entry = heap[0]
                    event = entry[3]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    time = entry[0]
                    if time > end_time:
                        break
                    heappop(heap)
                    if time != now:
                        # Direct write: heap pop order is nondecreasing
                        # in time, so the monotonicity check advance_to()
                        # does is already guaranteed here.
                        clock.now = now = time
                    executed += 1
                    event.callback()
                return
            while heap:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if time > end_time:
                    break
                heappop(heap)
                if time != now:
                    clock.now = now = time
                executed += 1
                event.callback()
                if executed >= max_events:
                    raise SimulationError(
                        f"{guard} exceeded max_events={max_events}; "
                        "suspected runaway event loop"
                    )
        finally:
            # Flushed once per run, not once per event; every reader
            # samples the counter between runs.
            self._events_executed += executed

    def run_until(self, end_time: float, max_events: int | None = None) -> None:
        """Run events with time <= ``end_time``; clock lands on ``end_time``.

        ``max_events`` guards against runaway zero-delay loops.
        """
        if end_time < self.clock.now:
            raise SimulationError(
                f"end_time {end_time} is before current time {self.clock.now}"
            )
        if self._running:
            raise SimulationError("run loop re-entered; simulator is not reentrant")
        self._running = True
        try:
            self._execute(end_time, max_events, "run_until")
            self.clock.advance_to(end_time)
        finally:
            self._running = False

    def run_window(self, end_time: float, max_events: int | None = None) -> None:
        """Run events with time strictly < ``end_time``; clock lands on it.

        The conservative-synchronization hook for sharded execution: a
        shard executes the half-open window ``[now, end_time)`` and then
        parks exactly on the boundary, where cross-shard messages with
        ``deliver_at >= end_time`` can be injected before the next
        window starts.  Implemented as :meth:`run_until` to the largest
        float below ``end_time`` — any event at time ``t < end_time``
        satisfies ``t <= nextafter(end_time, -inf)``, so the strict-<
        semantics cost nothing in the hot loop.
        """
        if end_time < self.clock.now:
            raise SimulationError(
                f"end_time {end_time} is before current time {self.clock.now}"
            )
        boundary = math.nextafter(end_time, -math.inf)
        if boundary >= self.clock.now:
            self.run_until(boundary, max_events)
        self.clock.advance_to(end_time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("run loop re-entered; simulator is not reentrant")
        self._running = True
        try:
            self._execute(math.inf, max_events, "run")
        finally:
            self._running = False
