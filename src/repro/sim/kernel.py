"""The simulation run loop.

:class:`Simulator` ties together the clock, the event queue, the random
streams and the trace recorder.  Components schedule work with
:meth:`Simulator.schedule` (absolute) / :meth:`Simulator.call_later`
(relative) / :meth:`Simulator.every` (periodic), and the experiment
harness drives the loop with :meth:`Simulator.run_until` or
:meth:`Simulator.run`.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceRecorder


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        callback: Callable[[], Any],
        label: str,
        priority: int,
    ) -> None:
        self._sim = simulator
        self._interval = interval
        self._callback = callback
        self._label = label
        self._priority = priority
        self._event: Event | None = None
        self._stopped = False

    @property
    def interval(self) -> float:
        """Seconds between firings."""
        return self._interval

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped

    def start(self, first_at: float) -> None:
        """Arm the task; first firing at absolute time ``first_at``.

        A task may be armed only once — a second ``start`` while an
        event is pending would create two concurrent firing chains.
        """
        if self._stopped:
            raise SchedulingError("cannot start a stopped periodic task")
        if self._event is not None:
            raise SchedulingError(
                f"periodic task {self._label!r} is already armed"
            )
        self._event = self._sim.schedule(
            first_at, self._fire, priority=self._priority, label=self._label
        )

    def stop(self) -> None:
        """Cancel future firings.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reschedule(self, interval: float) -> None:
        """Change the firing interval.

        When an event is pending it is re-armed at ``now + interval``,
        so a shortened interval takes effect immediately instead of
        waiting out the previously scheduled (longer) gap.
        """
        if interval <= 0:
            raise SchedulingError(f"interval must be positive, got {interval}")
        self._interval = interval
        if self._stopped or self._event is None:
            return
        self._event.cancel()
        self._event = self._sim.call_later(
            interval, self._fire, priority=self._priority, label=self._label
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        # The pending event just popped; clear it so a reschedule from
        # inside the callback only updates the interval (the re-arm
        # below uses whatever interval the callback left behind).
        self._event = None
        self._callback()
        if not self._stopped and self._event is None:
            self._event = self._sim.call_later(
                self._interval, self._fire, priority=self._priority, label=self._label
            )


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: Master seed for all random streams.
        trace: Whether to capture trace records.
        trace_categories: Optional whitelist of trace categories.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        trace_categories: list[str] | None = None,
    ) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()
        self.rng = RngStreams(seed)
        self.trace = TraceRecorder(enabled=trace, categories=trace_categories)
        self._running = False
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Total events the loop has executed so far."""
        return self._events_executed

    # -- scheduling ----------------------------------------------------

    def schedule(
        self,
        at: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``at``."""
        if math.isnan(at) or math.isinf(at):
            raise SchedulingError(f"event time must be finite, got {at}")
        if at < self.clock.now:
            raise SchedulingError(
                f"cannot schedule at {at} before current time {self.clock.now}"
            )
        return self.queue.push(at, callback, priority=priority, label=label)

    def call_later(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``now + delay``."""
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.clock.now + delay, callback, priority=priority, label=label)

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        first_at: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> PeriodicTask:
        """Create and start a periodic task firing every ``interval`` seconds.

        The first firing defaults to ``now + interval``.
        """
        if interval <= 0:
            raise SchedulingError(f"interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, label, priority)
        task.start(self.clock.now + interval if first_at is None else first_at)
        return task

    # -- run loop ------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.  Returns False when queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._events_executed += 1
        event.callback()
        return True

    def run_until(self, end_time: float, max_events: int | None = None) -> None:
        """Run events with time <= ``end_time``; clock lands on ``end_time``.

        ``max_events`` guards against runaway zero-delay loops.
        """
        if end_time < self.clock.now:
            raise SimulationError(
                f"end_time {end_time} is before current time {self.clock.now}"
            )
        if self._running:
            raise SimulationError("run loop re-entered; simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while True:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"run_until exceeded max_events={max_events}; "
                        "suspected runaway event loop"
                    )
            self.clock.advance_to(end_time)
        finally:
            self._running = False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("run loop re-entered; simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while self.step():
                executed += 1
                if executed >= max_events:
                    raise SimulationError(
                        f"run exceeded max_events={max_events}; "
                        "suspected runaway event loop"
                    )
        finally:
            self._running = False
