"""Simulated wall clock.

There is exactly one :class:`SimClock` per :class:`~repro.sim.kernel.Simulator`.
Only the kernel advances it; every other component holds a read-only
reference.  Time is a float number of seconds since simulation start.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulated clock owned by the kernel."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        The kernel calls this when it pops the next event.  Moving
        backwards is a kernel bug and raises immediately rather than
        silently corrupting causality.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"clock moved backwards: {self._now} -> {timestamp}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
