"""Simulated wall clock.

There is exactly one :class:`SimClock` per :class:`~repro.sim.kernel.Simulator`.
Only the kernel advances it; every other component holds a read-only
reference.  Time is a float number of seconds since simulation start.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulated clock owned by the kernel.

    ``now`` is a plain attribute (it is read on every event, every
    trace record and every schedule call — a property's descriptor
    dispatch is measurable at fleet scale).  Only the kernel may write
    it, and only through :meth:`advance_to`.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before zero, got {start}")
        self.now = float(start)

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        The kernel calls this when it pops the next event.  Moving
        backwards is a kernel bug and raises immediately rather than
        silently corrupting causality.
        """
        if timestamp < self.now:
            raise SimulationError(
                f"clock moved backwards: {self.now} -> {timestamp}"
            )
        self.now = float(timestamp)

    def __repr__(self) -> str:
        return f"SimClock(now={self.now:.6f})"
