"""Named, independently seeded random streams.

Every component that needs randomness asks the kernel for a *named*
stream (``"channel"``, ``"sensor:escooter-1"``, ...).  Each stream is a
``numpy.random.Generator`` seeded from the master seed and the stream
name, so:

* runs are reproducible given the master seed, and
* adding a new consumer of randomness (a new device, a new noise source)
  never shifts the sequence another component sees.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigError


class RngStreams:
    """Factory and cache of named random generators."""

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, int) or master_seed < 0:
            raise ConfigError(f"master seed must be a non-negative int, got {master_seed!r}")
        self._master_seed = master_seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The seed all streams are derived from."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if not name:
            raise ConfigError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive_seed(name))
            self._streams[name] = generator
        return generator

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, salt: str) -> "RngStreams":
        """Derive an independent family of streams (e.g. per run index)."""
        return RngStreams(self._derive_seed(f"fork:{salt}"))
