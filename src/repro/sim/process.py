"""Base class for simulated actors.

A :class:`Process` is anything with a name that lives on a simulator:
devices, aggregators, brokers, channels.  It standardises access to the
clock, per-actor random streams and tracing so subclasses stay small.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.sim.kernel import Simulator


class Process:
    """A named actor bound to a :class:`~repro.sim.kernel.Simulator`."""

    def __init__(self, simulator: Simulator, name: str) -> None:
        self._sim = simulator
        self._name = name

    @property
    def sim(self) -> Simulator:
        """The simulator this process runs on."""
        return self._sim

    @property
    def name(self) -> str:
        """Human-readable actor name (used in traces)."""
        return self._name

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._sim.now

    def rng(self, purpose: str = "default") -> np.random.Generator:
        """Random stream private to this actor and ``purpose``."""
        return self._sim.rng.stream(f"{self._name}:{purpose}")

    def trace(self, category: str, **detail: Any) -> None:
        """Emit a trace record attributed to this actor."""
        self._sim.trace.record(self.now, category, self._name, **detail)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self._name!r})"
