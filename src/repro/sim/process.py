"""Base class for simulated actors.

A :class:`Process` is anything with a name that lives on a simulator:
devices, aggregators, brokers, channels.  It standardises access to the
clock, per-actor random streams, tracing and the shared counter bank so
subclasses stay small.

A process is constructed from either a bare
:class:`~repro.sim.kernel.Simulator` (it gets a private
:class:`~repro.runtime.context.SimContext` with its own counter bank —
the unit-test path) or a shared ``SimContext`` (what
:func:`repro.runtime.build.build` passes), in which case every actor in
the world emits into the same counters and trace stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.sim.kernel import Simulator

if TYPE_CHECKING:
    from repro.monitoring.counters import CounterBank
    from repro.runtime.context import SimContext


class Process:
    """A named actor bound to a kernel via a :class:`SimContext`."""

    def __init__(self, runtime: "Simulator | SimContext", name: str) -> None:
        # Imported lazily: repro.runtime imports repro.sim at module
        # level, so the reverse edge must resolve at call time.
        from repro.runtime.context import coerce_context

        self._context = coerce_context(runtime)
        self._sim = self._context.simulator
        self._name = name
        # Hot-path caches: the per-event report path must do zero string
        # formatting, so stream handles and fully-qualified counter
        # names are resolved once per (actor, purpose) pair.
        self._rng_cache: dict[str, np.random.Generator] = {}
        self._counter_names: dict[str, str] = {}
        self._increment = self._context.counters.increment
        self._counts = self._context.counters._counts
        self._trace_record = self._sim.trace.record
        self._clock = self._sim.clock
        self._spans = self._sim.spans

    @property
    def sim(self) -> Simulator:
        """The simulator this process runs on."""
        return self._sim

    @property
    def context(self) -> "SimContext":
        """The runtime context this process was constructed from."""
        return self._context

    @property
    def counters(self) -> "CounterBank":
        """The counter bank this actor emits into (shared via context)."""
        return self._context.counters

    @property
    def name(self) -> str:
        """Human-readable actor name (used in traces and counters)."""
        return self._name

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._clock.now

    def rng(self, purpose: str = "default") -> np.random.Generator:
        """Random stream private to this actor and ``purpose``.

        The generator is the same object :meth:`RngStreams.stream` would
        hand out for ``"{name}:{purpose}"``; it is cached on the actor so
        repeated draws skip the key formatting and registry lookup.
        """
        generator = self._rng_cache.get(purpose)
        if generator is None:
            generator = self._sim.rng.stream(f"{self._name}:{purpose}")
            self._rng_cache[purpose] = generator
        return generator

    def count(self, metric: str, by: int = 1) -> int:
        """Increment this actor's ``metric`` in the shared counter bank.

        Counters are namespaced by actor name (``device1.report_timeouts``,
        ``backhaul.messages_dropped``) so one
        :meth:`~repro.monitoring.counters.CounterBank.snapshot` shows the
        whole world.  The qualified name is formatted once per metric and
        cached.
        """
        name = self._counter_names.get(metric)
        if name is None:
            name = f"{self._name}.{metric}"
            self._counter_names[metric] = name
        if by < 0:
            # Monotonicity violation: let the bank raise its error.
            return self._increment(name, by)
        counts = self._counts
        value = counts.get(name, 0) + by
        counts[name] = value
        return value

    def trace(self, category: str, **detail: Any) -> None:
        """Emit a trace record attributed to this actor."""
        self._trace_record(self._clock.now, category, self._name, **detail)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self._name!r})"
