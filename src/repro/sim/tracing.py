"""Structured trace recording for simulations.

Traces serve two purposes: debugging (what happened, in order) and
verification in tests (assert a handshake emitted the expected message
sequence).  Records are cheap frozen dataclasses; recording can be
disabled wholesale, or filtered by category.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time: Simulated time of the event.
        category: Dotted subsystem tag, e.g. ``"protocol.report"``.
        actor: Name of the component that emitted the record.
        detail: Free-form structured payload (kept small).
    """

    time: float
    category: str
    actor: str
    detail: dict[str, Any] = field(default_factory=dict)


def _record_time(record: "TraceRecord") -> float:
    return record.time


def _discard_record(time: float, category: str, actor: str, **detail: Any) -> None:
    """The disabled recorder's ``record``: a true no-op."""


class TraceRecorder:
    """Appends :class:`TraceRecord` entries and answers queries over them.

    A recorder constructed with ``enabled=False`` swaps :meth:`record`
    for a module-level no-op on the instance, so hot paths that cache
    the bound method (:class:`~repro.sim.process.Process` does) pay a
    plain function call and nothing else per suppressed record.
    """

    def __init__(self, enabled: bool = True, categories: Iterable[str] | None = None) -> None:
        self._enabled = enabled
        self._categories = set(categories) if categories is not None else None
        self._records: list[TraceRecord] = []
        if not enabled:
            self.record = _discard_record  # type: ignore[method-assign]

    @property
    def enabled(self) -> bool:
        """Whether records are currently being captured."""
        return self._enabled

    def record(self, time: float, category: str, actor: str, **detail: Any) -> None:
        """Capture one record if tracing is on and the category is kept."""
        if self._categories is not None and category not in self._categories:
            return
        self._records.append(TraceRecord(time, category, actor, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records with exactly this category, in time order."""
        return [r for r in self._records if r.category == category]

    def by_actor(self, actor: str) -> list[TraceRecord]:
        """All records emitted by ``actor``, in time order."""
        return [r for r in self._records if r.actor == actor]

    def between(self, start: float, end: float) -> list[TraceRecord]:
        """Records with ``start <= time < end``.

        Records are appended in non-decreasing simulated time (the
        kernel never runs backwards), so both boundaries resolve by
        bisection instead of a full scan.
        """
        records = self._records
        lo = bisect_left(records, start, key=_record_time)
        hi = bisect_left(records, end, lo=lo, key=_record_time)
        return records[lo:hi]

    def first(self, category: str) -> TraceRecord | None:
        """Earliest record of ``category``, or None."""
        for record in self._records:
            if record.category == category:
                return record
        return None

    def last(self, category: str) -> TraceRecord | None:
        """Latest record of ``category``, or None."""
        for record in reversed(self._records):
            if record.category == category:
                return record
        return None

    def clear(self) -> None:
        """Drop all captured records."""
        self._records.clear()

    def to_jsonl(self) -> str:
        """Serialise every record as JSON lines (one record per line)."""
        import json

        lines = [
            json.dumps(
                {
                    "time": record.time,
                    "category": record.category,
                    "actor": record.actor,
                    "detail": record.detail,
                },
                sort_keys=True,
                default=str,
            )
            for record in self._records
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def save_jsonl(self, path) -> int:
        """Write the trace to ``path``; returns the record count."""
        from pathlib import Path

        Path(path).write_text(self.to_jsonl())
        return len(self._records)
