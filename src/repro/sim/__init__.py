"""Discrete-event simulation kernel.

The kernel is the substrate every other subsystem runs on.  It provides:

* :class:`~repro.sim.clock.SimClock` — the single source of simulated time,
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue`
  — a deterministic priority queue of timestamped callbacks,
* :class:`~repro.sim.kernel.Simulator` — the run loop with scheduling,
  periodic tasks and stop conditions,
* :class:`~repro.sim.process.Process` — a base class for simulated actors
  (devices, aggregators, brokers),
* :class:`~repro.sim.rng.RngStreams` — named, independently seeded random
  streams so adding randomness to one component never perturbs another,
* :class:`~repro.sim.tracing.TraceRecorder` — structured event tracing.

Determinism contract: two runs with the same scenario and the same seed
produce byte-identical traces and ledgers.  Ties in the event queue are
broken by insertion order.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceRecord, TraceRecorder

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "Simulator",
    "Process",
    "RngStreams",
    "TraceRecord",
    "TraceRecorder",
]
