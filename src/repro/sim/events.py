"""Timestamped events and the deterministic event queue.

Events order by ``(time, priority, sequence)``.  ``sequence`` is a global
insertion counter, so events scheduled for the same instant at the same
priority fire in the order they were scheduled — this is what makes runs
reproducible.

The heap stores plain ``(time, priority, sequence, event)`` tuples
rather than rich objects: sequence numbers are unique, so every sift
resolves on the first three scalar fields with C tuple comparison and
the :class:`Event` handle itself is never compared.  The handle is a
``__slots__`` class, keeping per-event memory to the six fields the
kernel actually needs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SchedulingError


class Event:
    """A scheduled callback handle.

    Attributes:
        time: Simulated time at which the callback fires.
        priority: Lower fires first among same-time events.
        sequence: Insertion order tiebreaker (assigned by the queue).
        callback: Zero-argument callable invoked by the kernel.
        label: Human-readable tag for traces and debugging.
        cancelled: Cancelled events are skipped when popped.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], Any],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the kernel skips it.

        Cancellation is O(1); the entry stays in the heap until popped.
        """
        self.cancelled = True

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"sequence={self.sequence}, label={self.label!r}, "
            f"cancelled={self.cancelled})"
        )


class EventQueue:
    """Priority queue of :class:`Event` with deterministic tie-breaking.

    The kernel's run loop reaches into :attr:`_heap` directly (same
    package, hot path); every entry is ``(time, priority, sequence,
    event)`` and the first three fields reproduce exactly the ordering
    the original rich-comparison implementation had.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return its handle."""
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        time = float(time)  # the kernel assigns event times to the clock verbatim
        sequence = next(self._counter)
        event = Event(time, priority, sequence, callback, label)
        heapq.heappush(self._heap, (time, priority, sequence, event))
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty.

        Skips over cancelled events lazily so the answer is always the
        time of an event that will actually run.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None when empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event.cancelled:
                return event
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
