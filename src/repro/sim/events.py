"""Timestamped events and the deterministic event queue.

Events order by ``(time, priority, sequence)``.  ``sequence`` is a global
insertion counter, so events scheduled for the same instant at the same
priority fire in the order they were scheduled — this is what makes runs
reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SchedulingError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulated time at which the callback fires.
        priority: Lower fires first among same-time events.
        sequence: Insertion order tiebreaker (assigned by the queue).
        callback: Zero-argument callable invoked by the kernel.
        label: Human-readable tag for traces and debugging.
        cancelled: Cancelled events are skipped when popped.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it.

        Cancellation is O(1); the entry stays in the heap until popped.
        """
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``time`` and return its handle."""
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is empty.

        Skips over cancelled events lazily so the answer is always the
        time of an event that will actually run.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
