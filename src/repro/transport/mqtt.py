"""Full-fidelity backend: MQTT broker/client over the Wi-Fi models.

This wraps the existing :mod:`repro.net.mqtt` / :mod:`repro.net.wifi` /
:mod:`repro.net.channel` pieces unchanged in behaviour — the pinned
determinism digest of the paper testbed is bit-identical through this
backend, because every factory reproduces the exact actor names and RNG
stream names the pre-refactor constructors used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError
from repro.net.channel import WirelessChannel
from repro.net.mqtt import MqttBroker, MqttClient
from repro.net.wifi import WifiParams, WifiRadio
from repro.transport.base import DeviceLink, Endpoint, RadioModel, Transport

if TYPE_CHECKING:
    from repro.faults.injectors import LinkFaultInjector
    from repro.runtime.context import SimContext
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class MqttRadio(RadioModel):
    """A Wi-Fi radio whose RSSI comes from the shared shadowed channel."""

    def __init__(self, wifi: WifiRadio, channel: WirelessChannel) -> None:
        self._wifi = wifi
        self._channel = channel

    @property
    def wifi(self) -> WifiRadio:
        """The underlying Wi-Fi latency model."""
        return self._wifi

    def scan_duration_s(self) -> float:
        """One full scan: passes x channels x dwell."""
        return self._wifi.scan_duration_s()

    def association_duration_s(self) -> float:
        """Auth + association + DHCP latency with lognormal jitter."""
        return self._wifi.association_duration_s()

    def disconnect_detect_duration_s(self) -> float:
        """Time until the radio declares the old AP lost."""
        return self._wifi.disconnect_detect_duration_s()

    def rssi_dbm(self, distance_m: float) -> float:
        """One shadowed RSSI sample from the scenario channel."""
        return self._channel.rssi_dbm(distance_m)


class MqttTransport(Transport):
    """MQTT over modelled Wi-Fi: airtime, RSSI loss, connect jitter.

    Args:
        channel: The wireless channel shared by the scenario.  Optional
            for endpoint-only use (an aggregator under unit test hosts a
            broker without any radio environment); device links and
            radios require it.
        wifi: Wi-Fi join latency model applied to every device radio.
    """

    kind = "mqtt"

    def __init__(
        self,
        channel: WirelessChannel | None = None,
        wifi: WifiParams | None = None,
    ) -> None:
        self._channel = channel
        self._wifi = wifi or WifiParams()

    @property
    def channel(self) -> WirelessChannel | None:
        """The wireless channel, when one is attached."""
        return self._channel

    def _require_channel(self, what: str) -> WirelessChannel:
        if self._channel is None:
            raise ConfigError(f"MqttTransport needs a WirelessChannel to {what}")
        return self._channel

    def make_endpoint(self, runtime: "Simulator | SimContext", owner_name: str) -> Endpoint:
        """The broker hosted on aggregator ``owner_name``."""
        return MqttBroker(runtime, f"{owner_name}-broker")

    def make_link(self, runtime: "Simulator | SimContext", device_name: str) -> DeviceLink:
        """An MQTT client publishing over the wireless channel."""
        channel = self._require_channel(f"make a link for {device_name}")
        return MqttClient(runtime, f"{device_name}-mqtt", channel)

    def make_radio(self, process: "Process") -> RadioModel:
        """A Wi-Fi radio drawing jitter from the device's own stream."""
        channel = self._require_channel(f"make a radio for {process.name}")
        return MqttRadio(WifiRadio(self._wifi, process.rng("wifi")), channel)

    def set_fault_injector(self, injector: "LinkFaultInjector | None") -> None:
        """Environment-scale faults install on the shared channel."""
        self._require_channel("install a fault injector").set_fault_injector(injector)

    def describe(self) -> dict[str, Any]:
        """Backend kind plus the Wi-Fi latency parameters."""
        return {
            "kind": self.kind,
            "assoc_latency_s": self._wifi.assoc_latency_s,
            "scan_channels": self._wifi.channels,
        }
