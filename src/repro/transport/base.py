"""Transport abstraction: what the protocol layers see of the wire.

The paper's architecture (Fig. 2) layers the device stack — application,
data, network — but the reproduction's actors were originally hard-wired
to the MQTT-over-Wi-Fi models.  This module names the seam instead:

* :class:`Endpoint` — the aggregator-hosted message hub (topic-based
  routing with MQTT wildcard filters, downtime and fault-injection
  hooks, a connect-latency model),
* :class:`DeviceLink` — the device-side session (connect / publish /
  disconnect with :class:`QoS` delivery semantics),
* :class:`RadioModel` — the network-entry latencies (scan, association)
  and the RSSI a device sees at a distance,
* :class:`Transport` — the backend factory tying the three together,
* :class:`Mesh` — the structural interface of the inter-aggregator
  backhaul that the roaming/consensus layers speak.

Concrete backends live in :mod:`repro.transport.mqtt` (full radio
fidelity, wraps :mod:`repro.net.mqtt` / :mod:`repro.net.wifi`) and
:mod:`repro.transport.direct` (in-process router with fixed latencies
for large-fleet runs).  Protocol code — :mod:`repro.device.stack`,
:mod:`repro.aggregator.unit` — talks only to the interfaces here and
never names a backend module.
"""

from __future__ import annotations

import abc
import enum
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.errors import NetworkError

if TYPE_CHECKING:
    from repro.faults.injectors import LinkFaultInjector
    from repro.ids import AggregatorId
    from repro.runtime.context import SimContext
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process

Subscriber = Callable[[str, Any], None]


class QoS(enum.IntEnum):
    """Delivery semantics of one published message (MQTT levels)."""

    AT_MOST_ONCE = 0
    AT_LEAST_ONCE = 1


def topic_matches(pattern: str, topic: str) -> bool:
    """MQTT topic-filter matching with ``+`` and trailing ``#``."""
    pattern_parts = pattern.split("/")
    topic_parts = topic.split("/")
    for i, part in enumerate(pattern_parts):
        if part == "#":
            if i != len(pattern_parts) - 1:
                raise NetworkError(f"'#' must be the last level in filter {pattern!r}")
            return True
        if i >= len(topic_parts):
            return False
        if part != "+" and part != topic_parts[i]:
            return False
    return len(pattern_parts) == len(topic_parts)


def compile_topic_filter(pattern: str) -> Callable[[str], bool]:
    """Precompile ``pattern`` into a ``topic -> bool`` matcher.

    Splits and validates the filter once at subscribe time instead of on
    every routed message; the returned matcher gives exactly
    ``topic_matches(pattern, topic)`` answers.  Raises
    :class:`~repro.errors.NetworkError` for a non-terminal ``#`` — the
    same eager-validation contract brokers apply on subscribe.
    """
    parts = pattern.split("/")
    if "#" in parts:
        if parts.index("#") != len(parts) - 1:
            raise NetworkError(f"'#' must be the last level in filter {pattern!r}")
        prefix = tuple(parts[:-1])

        def match_hash(topic: str, _prefix: tuple[str, ...] = prefix) -> bool:
            topic_parts = topic.split("/")
            if len(topic_parts) < len(_prefix):
                return False
            for want, got in zip(_prefix, topic_parts):
                if want != "+" and want != got:
                    return False
            return True

        return match_hash
    if "+" not in parts:
        return pattern.__eq__
    levels = tuple(parts)

    def match_plus(topic: str, _levels: tuple[str, ...] = levels) -> bool:
        topic_parts = topic.split("/")
        if len(topic_parts) != len(_levels):
            return False
        for want, got in zip(_levels, topic_parts):
            if want != "+" and want != got:
                return False
        return True

    return match_plus


class Endpoint(abc.ABC):
    """The aggregator-hosted message hub of one network.

    Devices connect their :class:`DeviceLink` here; the aggregator
    subscribes its uplink handlers and publishes downlink control
    messages.  Every backend must honour the same contract the MQTT
    broker set: topic filters with ``+``/``#``, deliveries are
    *scheduled* (never synchronous), a downed endpoint drops everything,
    and an installed fault injector rules on each routed message.
    """

    #: Whether this endpoint carries encoded wire bytes.  In-process
    #: backends set this False and payloads pass through as the frozen
    #: message dataclasses themselves — senders consult the flag to skip
    #: the codec, receivers accept either form via
    #: :func:`repro.protocol.codec.as_message`.
    wire_bytes: bool = True

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Endpoint name (appears in traces and counters)."""

    @property
    @abc.abstractmethod
    def down(self) -> bool:
        """Whether the endpoint host is currently crashed."""

    @abc.abstractmethod
    def set_down(self, down: bool) -> None:
        """Crash/restore the endpoint host (fault injection)."""

    @abc.abstractmethod
    def set_fault_injector(self, injector: "LinkFaultInjector | None") -> None:
        """Install (or clear) a fault injector on the routing path."""

    @abc.abstractmethod
    def connect_duration_s(self) -> float:
        """Sample one client connect latency."""

    @abc.abstractmethod
    def subscribe(self, pattern: str, callback: Subscriber) -> None:
        """Register ``callback`` for topics matching ``pattern``."""

    @abc.abstractmethod
    def unsubscribe(self, pattern: str, callback: Subscriber) -> None:
        """Remove a previously registered subscription."""

    @abc.abstractmethod
    def deliver(self, topic: str, payload: Any, after_s: float = 0.0) -> None:
        """Route ``payload`` to matching subscribers after a delay."""

    @property
    @abc.abstractmethod
    def messages_routed(self) -> int:
        """Messages delivered to at least one subscriber."""

    @property
    @abc.abstractmethod
    def messages_dropped(self) -> int:
        """Messages lost to downtime or injected faults."""


class DeviceLink(abc.ABC):
    """The device-side session with one :class:`Endpoint`.

    A link is connected to at most one endpoint at a time; publishing
    while disconnected raises :class:`~repro.errors.NetworkError` so the
    device data layer buffers instead of transmitting blind.
    """

    #: Mirror of :attr:`Endpoint.wire_bytes` for the device side: when
    #: False the link's endpoint takes message dataclasses verbatim and
    #: publishers skip the codec.
    wire_bytes: bool = True

    @property
    @abc.abstractmethod
    def connected(self) -> bool:
        """Whether the link currently has an endpoint session."""

    @property
    @abc.abstractmethod
    def stats(self) -> dict[str, int]:
        """Counters: published, dropped, retransmissions."""

    @abc.abstractmethod
    def connect(
        self,
        endpoint: Endpoint,
        rssi_dbm: float,
        on_connected: Callable[[], None] | None = None,
    ) -> float:
        """Open a session to ``endpoint``; returns the connect latency."""

    @abc.abstractmethod
    def disconnect(self) -> None:
        """Drop the endpoint session (e.g. on leaving the network)."""

    @abc.abstractmethod
    def set_fault_injector(self, injector: "LinkFaultInjector | None") -> None:
        """Install (or clear) a fault injector on this link's uplink."""

    @abc.abstractmethod
    def publish(
        self,
        topic: str,
        payload: Any,
        qos: QoS = QoS.AT_LEAST_ONCE,
        payload_bytes: int = 64,
    ) -> bool:
        """Publish one message; True when handed to the endpoint."""


class RadioModel(abc.ABC):
    """Network-entry latencies and signal strength for one device."""

    @abc.abstractmethod
    def scan_duration_s(self) -> float:
        """One full network scan."""

    @abc.abstractmethod
    def association_duration_s(self) -> float:
        """Association/admission latency after the scan."""

    @abc.abstractmethod
    def disconnect_detect_duration_s(self) -> float:
        """Time until the old network is declared lost."""

    @abc.abstractmethod
    def rssi_dbm(self, distance_m: float) -> float:
        """Received signal strength at ``distance_m`` from the endpoint."""


class Transport(abc.ABC):
    """Factory for one wire backend: endpoints, links and radios.

    One transport instance is shared by a whole scenario; the builder
    threads it into every aggregator (which makes its endpoint from it)
    and every device (which makes its link and radio from it).  Fault
    injection at environment scale — a jammer, an AP power loss —
    installs through :meth:`set_fault_injector` so chaos schedules work
    on every backend.
    """

    #: Backend identifier (matches ``TransportSpec.kind``).
    kind: str = "abstract"

    @abc.abstractmethod
    def make_endpoint(self, runtime: "Simulator | SimContext", owner_name: str) -> Endpoint:
        """Create the hub hosted by aggregator ``owner_name``."""

    @abc.abstractmethod
    def make_link(self, runtime: "Simulator | SimContext", device_name: str) -> DeviceLink:
        """Create the device-side link for ``device_name``."""

    @abc.abstractmethod
    def make_radio(self, process: "Process") -> RadioModel:
        """Create the radio model for one device actor."""

    @abc.abstractmethod
    def set_fault_injector(self, injector: "LinkFaultInjector | None") -> None:
        """Install (or clear) an environment-wide uplink fault injector."""

    def describe(self) -> dict[str, Any]:
        """Provenance: backend kind plus backend-specific parameters."""
        return {"kind": self.kind}


@runtime_checkable
class Mesh(Protocol):
    """What the roaming/consensus layers need of the backhaul.

    Structural: :class:`repro.net.backhaul.BackhaulMesh` satisfies it
    unchanged; an alternative backhaul only has to route payloads
    between registered aggregators and expose the kernel for timers.
    """

    @property
    def sim(self) -> "Simulator": ...

    def add_aggregator(self, aggregator_id: "AggregatorId", handler: Any) -> None: ...

    def send(self, source: "AggregatorId", destination: "AggregatorId", payload: Any) -> float: ...

    def broadcast(self, source: "AggregatorId", payload: Any) -> int: ...

    def connect(self, link: Any) -> None: ...

    def set_node_down(self, aggregator_id: "AggregatorId", down: bool) -> None: ...

    def latency_s(self, source: "AggregatorId", destination: "AggregatorId") -> float: ...

    def trace(self, kind: str, **fields: Any) -> None: ...
