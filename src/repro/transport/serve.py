"""Serve backend: the in-process router with a real wire boundary.

Serve mode (:mod:`repro.serve`) fronts an :class:`~repro.aggregator.unit.
AggregatorUnit` over HTTP, so every payload that crosses its endpoint
must be *encoded wire bytes* — an external client's report arrives as
UTF-8 JSON, and the aggregator's downlink replies must leave as bytes
the HTTP layer can hand back verbatim.

``ServeTransport`` is therefore the :class:`~repro.transport.direct`
router with ``wire_bytes = True``: routing, batching, downtime and
fault-injection semantics are inherited unchanged, but protocol code on
both sides runs the full :mod:`repro.protocol.codec` encode/decode path
on every message — the same boundary the MQTT backend exercises, without
the radio model.  That makes it the third backend of the PR-3 seam:

=========  ===========  ==============
backend    wire bytes   delivery model
=========  ===========  ==============
mqtt       yes          radio airtime, RSSI loss, broker
direct     no           in-process reference passing
serve      yes          in-process routing, codec on every hop
=========  ===========  ==============
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.transport.base import DeviceLink, Endpoint, RadioModel
from repro.transport.direct import DirectHub, DirectLink, DirectTransport

if TYPE_CHECKING:
    from repro.runtime.context import SimContext
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class ServeHub(DirectHub):
    """The direct router, carrying encoded wire bytes.

    ``wire_bytes = True`` makes the aggregator encode every downlink
    message and run :func:`~repro.protocol.codec.as_message` on every
    uplink — the serve layer injects raw HTTP bodies here and reads
    encoded replies back out.
    """

    wire_bytes = True


class ServeLink(DirectLink):
    """Device-side session that publishes encoded wire bytes."""

    wire_bytes = True


class ServeTransport(DirectTransport):
    """In-process transport whose endpoints carry encoded wire bytes.

    Shares every parameter and semantic of
    :class:`~repro.transport.direct.DirectTransport`; only the payload
    form differs.  Simulated devices built on this backend pay the codec
    on each message exactly like external HTTP clients do, so a served
    world screens both through one boundary.
    """

    kind = "serve"

    def make_endpoint(self, runtime: "Simulator | SimContext", owner_name: str) -> Endpoint:
        """The wire-bytes hub hosted on aggregator ``owner_name``."""
        return ServeHub(runtime, f"{owner_name}-broker", connect_s=self.connect_s)

    def make_link(self, runtime: "Simulator | SimContext", device_name: str) -> DeviceLink:
        """A wire-bytes link for ``device_name``."""
        return ServeLink(runtime, f"{device_name}-link", self)

    def make_radio(self, process: "Process") -> RadioModel:
        """Deterministic entry latencies (inherited from direct)."""
        return super().make_radio(process)
