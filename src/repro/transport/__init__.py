"""Pluggable transport layer: protocol code speaks interfaces, not wires.

Interfaces (:class:`Transport`, :class:`Endpoint`, :class:`DeviceLink`,
:class:`RadioModel`, :class:`Mesh`) import eagerly from
:mod:`repro.transport.base`; the concrete backends load lazily so that
``repro.net.mqtt`` can import the interfaces without a cycle:

* :class:`MqttTransport` — full radio fidelity (airtime, RSSI, jitter),
* :class:`DirectTransport` — in-process routing for large fleets.
"""

from typing import Any

from repro.transport.base import (
    DeviceLink,
    Endpoint,
    Mesh,
    QoS,
    RadioModel,
    Subscriber,
    Transport,
    topic_matches,
)

_BACKENDS = {
    "MqttTransport": "repro.transport.mqtt",
    "MqttRadio": "repro.transport.mqtt",
    "DirectTransport": "repro.transport.direct",
    "DirectHub": "repro.transport.direct",
    "DirectLink": "repro.transport.direct",
    "DirectRadio": "repro.transport.direct",
}

__all__ = [
    "DeviceLink",
    "Endpoint",
    "Mesh",
    "QoS",
    "RadioModel",
    "Subscriber",
    "Transport",
    "topic_matches",
    *sorted(_BACKENDS),
]


def __getattr__(name: str) -> Any:
    module_name = _BACKENDS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
