"""Lightweight backend: in-process topic router, no radio model.

``DirectTransport`` trades radio fidelity for throughput so large-fleet
scalability runs stop paying the full per-frame cost:

* routing is an exact-topic dict plus a short wildcard list instead of
  an O(#subscriptions) filter scan per message,
* link latency and loss are fixed parameters (no airtime computation,
  no RSSI draw, no shadowing — the zero-loss default draws no RNG at
  all on the publish path),
* deliveries due at the same instant share one kernel event (the hub
  drains a per-instant batch), so a burst of reports costs one heap
  operation instead of one per message,
* network-entry latencies are the Wi-Fi means without jitter, so
  handshake-time reports stay comparable across backends.

Delivery semantics match the MQTT backend: deliveries are scheduled
(never synchronous), a downed hub drops everything, QoS 1 retries up to
the budget, and fault injectors rule on links and routing alike — chaos
scenarios run unchanged on either backend.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigError, NetworkError
from repro.faults.injectors import FaultAction, LinkFaultInjector
from repro.sim.process import Process
from repro.transport.base import (
    DeviceLink,
    Endpoint,
    QoS,
    RadioModel,
    Subscriber,
    Transport,
    compile_topic_filter,
)

if TYPE_CHECKING:
    from repro.runtime.context import SimContext
    from repro.sim.kernel import Simulator


class DirectHub(Process, Endpoint):
    """Topic router hosted by one aggregator, without a broker model.

    Exact topics (the common case: per-device control topics) route by
    dict lookup; only patterns containing ``+``/``#`` pay a filter scan.

    Args:
        runtime: The kernel, or a shared :class:`SimContext`.
        name: Hub name for traces (usually ``{aggregator}-broker``).
        connect_s: Fixed client connect latency.
    """

    #: In-process router: payloads pass through by reference, protocol
    #: code skips the JSON wire codec entirely.
    wire_bytes = False

    def __init__(
        self,
        runtime: "Simulator | SimContext",
        name: str,
        connect_s: float = 0.35,
    ) -> None:
        super().__init__(runtime, name)
        if connect_s <= 0:
            raise NetworkError(f"connect latency must be positive, got {connect_s}")
        self._connect_s = connect_s
        self._exact: dict[str, list[Subscriber]] = {}
        # (pattern, callback, compiled matcher) — compiled once at
        # subscribe time so draining never re-splits the filter.
        self._wildcards: list[tuple[str, Subscriber, Callable[[str], bool]]] = []
        # topic -> resolved subscriber tuple, filled lazily on first
        # routing of each topic and cleared whenever the subscription
        # table changes — routing a hot topic is then one dict lookup.
        self._route_cache: dict[str, tuple[Subscriber, ...]] = {}
        # Batches keyed by absolute due time: every message scheduled
        # for the same instant rides one kernel event.
        self._batches: dict[float, list[tuple[str, Any]]] = {}
        self._drain_label = f"direct-drain:{name}"
        self._messages_routed = 0
        self._messages_dropped = 0
        self._down = False
        self._injector: LinkFaultInjector | None = None
        # Called with this hub on every routing-state change (crash,
        # restore, injector install/clear).  The vectorized fleet hangs
        # de-vectorization off these; empty for everyone else.
        self._state_watchers: list[Callable[["DirectHub"], None]] = []

    @property
    def messages_routed(self) -> int:
        """Messages delivered to at least one subscriber."""
        return self._messages_routed

    @property
    def messages_dropped(self) -> int:
        """Messages lost to hub downtime or injected faults."""
        return self._messages_dropped

    @property
    def down(self) -> bool:
        """Whether the hub host is currently crashed."""
        return self._down

    def set_down(self, down: bool) -> None:
        """Crash/restore the hub host (fault injection)."""
        self._down = down
        self.trace("direct.hub_down" if down else "direct.hub_up")
        for watcher in self._state_watchers:
            watcher(self)

    def set_fault_injector(self, injector: LinkFaultInjector | None) -> None:
        """Install (or clear) a fault injector on the routing path."""
        self._injector = injector
        for watcher in self._state_watchers:
            watcher(self)

    def connect_duration_s(self) -> float:
        """Fixed connect latency (no jitter draw)."""
        return self._connect_s

    def subscribe(self, pattern: str, callback: Subscriber) -> None:
        """Register ``callback`` for topics matching ``pattern``."""
        # Compiling validates the filter eagerly so a bad '#' placement
        # fails here, not on first publish (same contract as the MQTT
        # broker).
        matcher = compile_topic_filter(pattern)
        if "+" in pattern or "#" in pattern:
            self._wildcards.append((pattern, callback, matcher))
        else:
            self._exact.setdefault(pattern, []).append(callback)
        self._route_cache.clear()

    def unsubscribe(self, pattern: str, callback: Subscriber) -> None:
        """Remove a previously registered subscription."""
        if "+" in pattern or "#" in pattern:
            for i, (sub_pattern, sub_callback, _) in enumerate(self._wildcards):
                if sub_pattern == pattern and sub_callback == callback:
                    del self._wildcards[i]
                    self._route_cache.clear()
                    return
            raise NetworkError(f"no subscription {pattern!r} to remove")
        callbacks = self._exact.get(pattern, [])
        if callback not in callbacks:
            raise NetworkError(f"no subscription {pattern!r} to remove")
        callbacks.remove(callback)
        if not callbacks:
            del self._exact[pattern]
        self._route_cache.clear()

    def deliver(self, topic: str, payload: Any, after_s: float = 0.0) -> None:
        """Route ``payload`` to matching subscribers after a delay."""
        if self._down:
            self._messages_dropped += 1
            self.trace("direct.drop_down", topic=topic)
            return
        if self._injector is None:
            # No fault injector: enqueue directly (the _enqueue body,
            # inlined for the per-message fleet hot path).
            due = self._clock.now + after_s
            batch = self._batches.get(due)
            if batch is None:
                self._batches[due] = batch = []
                self.sim.call_later(
                    after_s, lambda: self._drain(due), label=self._drain_label
                )
            batch.append((topic, payload))
            return
        delay = after_s
        copies = 1
        if self._injector is not None:
            verdict = self._injector.message_verdict()
            if verdict in (FaultAction.DROP, FaultAction.CORRUPT):
                self._messages_dropped += 1
                self.trace("direct.drop_fault", topic=topic, verdict=verdict.value)
                return
            if verdict is FaultAction.DELAY:
                delay += self._injector.extra_delay_s
            elif verdict is FaultAction.DUPLICATE:
                copies = 2

        for _ in range(copies):
            self._enqueue(topic, payload, delay)

    def _enqueue(self, topic: str, payload: Any, delay: float) -> None:
        # Same kernel step + same delay => bitwise-identical due time, so
        # a burst of simultaneous reports shares one scheduled event.
        due = self._clock.now + delay
        batch = self._batches.get(due)
        if batch is None:
            self._batches[due] = batch = []
            self.sim.call_later(
                delay, lambda: self._drain(due), label=self._drain_label
            )
        batch.append((topic, payload))

    def _drain(self, due: float) -> None:
        batch = self._batches.pop(due, ())
        if self._down:
            self._messages_dropped += len(batch)
            for topic, _ in batch:
                self.trace("direct.drop_down", topic=topic)
            return
        cache = self._route_cache
        spans = self._spans
        routed = 0
        for topic, payload in batch:
            targets = cache.get(topic)
            if targets is None:
                # First routing of this topic since the subscription
                # table last changed: resolve exact + wildcard matches
                # once, then route by dict lookup.  A mid-drain
                # (un)subscribe clears the cache, so later messages in
                # the batch re-resolve against the updated table.
                callbacks = self._exact.get(topic)
                merged = list(callbacks) if callbacks else []
                for _pattern, callback, matcher in self._wildcards:
                    if matcher(topic):
                        merged.append(callback)
                targets = cache[topic] = tuple(merged)
            if targets:
                routed += 1
                if spans.enabled:
                    spans.event(
                        "transport.deliver", self.name, backend="direct", topic=topic
                    )
                for callback in targets:
                    callback(topic, payload)
        self._messages_routed += routed


class DirectLink(Process, DeviceLink):
    """A device-side session with fixed latency and configurable loss.

    Mirrors the MQTT client's QoS semantics — QoS 1 retries up to the
    budget with backoff, counters fold into the shared bank — but each
    attempt costs a fixed latency instead of airtime, and the loss draw
    is skipped entirely at the zero-loss default.

    Args:
        runtime: The kernel, or a shared :class:`SimContext`.
        name: Link name (usually ``{device}-link``).
        transport: The owning transport (fixed parameters and the
            environment-wide fault injector live there).
        max_retries: QoS 1 retransmission budget.
        retry_backoff_s: Delay before a QoS 1 retransmission.
    """

    #: The hub takes message dataclasses verbatim (see DirectHub).
    wire_bytes = False

    def __init__(
        self,
        runtime: "Simulator | SimContext",
        name: str,
        transport: "DirectTransport",
        max_retries: int = 5,
        retry_backoff_s: float = 0.2,
    ) -> None:
        super().__init__(runtime, name)
        if max_retries < 0:
            raise NetworkError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s <= 0:
            raise NetworkError(f"retry backoff must be positive, got {retry_backoff_s}")
        self._transport = transport
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._endpoint: Endpoint | None = None
        self._injector: LinkFaultInjector | None = None
        # Called on injector install/clear (vectorized-fleet hook).
        self._state_watchers: list[Callable[[], None]] = []

    @property
    def connected(self) -> bool:
        """Whether the link currently has an endpoint session."""
        return self._endpoint is not None

    @property
    def stats(self) -> dict[str, int]:
        """Counters: published, dropped, retransmissions."""
        return {
            "published": self.counters.get(f"{self.name}.published"),
            "dropped": self.counters.get(f"{self.name}.dropped"),
            "retransmissions": self.counters.get(f"{self.name}.retransmissions"),
        }

    def connect(
        self,
        endpoint: Endpoint,
        rssi_dbm: float,
        on_connected: Callable[[], None] | None = None,
    ) -> float:
        """Open a session to ``endpoint``; returns the connect latency."""
        latency = endpoint.connect_duration_s()

        def _established() -> None:
            self._endpoint = endpoint
            self.trace("direct.connected", endpoint=endpoint.name, rssi_dbm=rssi_dbm)
            if on_connected is not None:
                on_connected()

        self.sim.call_later(latency, _established, label=f"direct-connect:{self.name}")
        return latency

    def disconnect(self) -> None:
        """Drop the endpoint session (e.g. on leaving the network)."""
        self._endpoint = None
        self.trace("direct.disconnected")

    def set_fault_injector(self, injector: LinkFaultInjector | None) -> None:
        """Install (or clear) a fault injector on this link's uplink."""
        self._injector = injector
        for watcher in self._state_watchers:
            watcher()

    def _attempt_lost(self) -> bool:
        """One transmission attempt's fate: blocked, lost, or through."""
        if self._injector is not None and self._injector.packet_blocked():
            return True
        env = self._transport.fault_injector
        if env is not None and env.packet_blocked():
            return True
        loss_p = self._transport.loss_p
        if loss_p > 0.0:
            return bool(self.rng("loss").random() < loss_p)
        return False

    def publish(
        self,
        topic: str,
        payload: Any,
        qos: QoS = QoS.AT_LEAST_ONCE,
        payload_bytes: int = 64,
    ) -> bool:
        """Publish one message; True when handed to the endpoint."""
        if self._endpoint is None:
            raise NetworkError(f"link {self.name} is not connected")
        if self._spans.enabled:
            self._spans.event(
                "transport.send", self.name, backend="direct", topic=topic
            )
        transport = self._transport
        if (
            self._injector is None
            and transport._injector is None
            and transport.loss_p == 0.0
        ):
            # Nothing can lose the attempt: skip the loss machinery
            # entirely (the common zero-loss fleet configuration).
            self._endpoint.deliver(topic, payload, after_s=transport.latency_s)
            self.count("published")
            return True
        attempts = 1 + (self._max_retries if qos == QoS.AT_LEAST_ONCE else 0)
        latency = transport.latency_s
        delay = 0.0
        for attempt in range(attempts):
            delay += latency
            if not self._attempt_lost():
                self._endpoint.deliver(topic, payload, after_s=delay)
                self.count("published")
                if attempt > 0:
                    self.count("retransmissions", attempt)
                return True
            delay += self._retry_backoff_s
        self.count("dropped")
        self.trace("direct.drop", topic=topic)
        return False


class DirectRadio(RadioModel):
    """Deterministic network-entry latencies, no jitter draws.

    The RSSI is the zero-shadowing log-distance mean of the default
    channel model, so RSSI-based network selection still ranks closer
    access points higher on this backend.
    """

    def __init__(self, scan_s: float, assoc_s: float, disconnect_detect_s: float = 1.0) -> None:
        self._scan_s = scan_s
        self._assoc_s = assoc_s
        self._disconnect_detect_s = disconnect_detect_s

    def scan_duration_s(self) -> float:
        """Fixed scan latency."""
        return self._scan_s

    def association_duration_s(self) -> float:
        """Fixed association latency."""
        return self._assoc_s

    def disconnect_detect_duration_s(self) -> float:
        """Fixed loss-detection latency."""
        return self._disconnect_detect_s

    def rssi_dbm(self, distance_m: float) -> float:
        """Unshadowed log-distance RSSI (tx 16 dBm, exponent 3)."""
        if distance_m <= 0:
            raise NetworkError(f"distance must be positive, got {distance_m}")
        return 16.0 - (40.0 + 30.0 * math.log10(max(distance_m, 1.0)))


class DirectTransport(Transport):
    """In-process router with fixed latency/loss, no radio model.

    Args:
        latency_s: One-way per-attempt link latency.
        loss_p: Per-attempt loss probability (0 disables the RNG draw).
        connect_s: Fixed session-connect latency.
        scan_s: Fixed network-scan latency (default: the Wi-Fi mean,
            3 passes x 13 channels x 110 ms).
        assoc_s: Fixed association latency (default: the Wi-Fi median).
    """

    kind = "direct"

    def __init__(
        self,
        latency_s: float = 0.0005,
        loss_p: float = 0.0,
        connect_s: float = 0.35,
        scan_s: float = 4.29,
        assoc_s: float = 1.2,
    ) -> None:
        if latency_s < 0:
            raise ConfigError(f"latency must be >= 0, got {latency_s}")
        if not 0.0 <= loss_p < 1.0:
            raise ConfigError(f"loss probability must be in [0, 1), got {loss_p}")
        if connect_s <= 0:
            raise ConfigError(f"connect latency must be positive, got {connect_s}")
        if scan_s < 0 or assoc_s < 0:
            raise ConfigError(f"scan/assoc latencies must be >= 0, got {scan_s}/{assoc_s}")
        self.latency_s = latency_s
        self.loss_p = loss_p
        self.connect_s = connect_s
        self.scan_s = scan_s
        self.assoc_s = assoc_s
        self._injector: LinkFaultInjector | None = None
        # Called on environment-injector install/clear (fleet hook).
        self._state_watchers: list[Callable[[], None]] = []

    @property
    def fault_injector(self) -> LinkFaultInjector | None:
        """The environment-wide fault injector, if any."""
        return self._injector

    def make_endpoint(self, runtime: "Simulator | SimContext", owner_name: str) -> Endpoint:
        """The hub hosted on aggregator ``owner_name``."""
        return DirectHub(runtime, f"{owner_name}-broker", connect_s=self.connect_s)

    def make_link(self, runtime: "Simulator | SimContext", device_name: str) -> DeviceLink:
        """A fixed-latency link for ``device_name``."""
        return DirectLink(runtime, f"{device_name}-link", self)

    def make_radio(self, process: "Process") -> RadioModel:
        """Deterministic entry latencies; no per-device RNG stream."""
        return DirectRadio(self.scan_s, self.assoc_s)

    def set_fault_injector(self, injector: LinkFaultInjector | None) -> None:
        """Environment-scale faults: every link consults this injector."""
        self._injector = injector
        for watcher in self._state_watchers:
            watcher()

    def describe(self) -> dict[str, Any]:
        """Backend kind plus the fixed link parameters."""
        return {
            "kind": self.kind,
            "latency_s": self.latency_s,
            "loss_p": self.loss_p,
            "connect_s": self.connect_s,
        }
