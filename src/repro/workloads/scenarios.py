"""Scenario builders.

:func:`build_paper_testbed` reconstructs the paper's experimental setup
(§III-A): two networks, each with one aggregator and two devices,
reporting every 100 ms, aggregators joined by a ~1 ms backhaul.
:func:`build_scaled_scenario` generalises to N networks x M devices for
the scalability experiments.

The chaos builders put the same worlds under deterministic fault
schedules (:mod:`repro.faults`): :func:`build_blackout_scenario` (a
link blackout the §II-B buffering must cover),
:func:`build_crash_scenario` (aggregator crash+restart) and
:func:`build_partition_scenario` (a backhaul partition under roaming).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aggregator.unit import AggregatorConfig, AggregatorUnit
from repro.chain.ledger import Blockchain
from repro.device.stack import DeviceConfig, LoadProfile, MeteringDevice
from repro.errors import ConfigError
from repro.faults import FaultPlan, RetryPolicy
from repro.grid.topology import GridNetwork, GridTopology
from repro.hw.powerline import WireSegment
from repro.ids import AggregatorId, DeviceId
from repro.net.backhaul import BackhaulLink, BackhaulMesh
from repro.net.channel import ChannelParams, WirelessChannel
from repro.sim.kernel import Simulator
from repro.workloads.mobility import MobilityDriver, MobilityTrace
from repro.workloads.profiles import DutyCycleProfile, SinusoidProfile


@dataclass
class Scenario:
    """A fully wired simulation world.

    Attributes map one-to-one onto the architecture of Fig. 1; the
    experiment harnesses only ever talk to a Scenario.
    """

    simulator: Simulator
    grid: GridTopology
    chain: Blockchain
    mesh: BackhaulMesh
    channel: WirelessChannel
    aggregators: dict[str, AggregatorUnit] = field(default_factory=dict)
    devices: dict[str, MeteringDevice] = field(default_factory=dict)

    def aggregator(self, name: str) -> AggregatorUnit:
        """Aggregator by name, with a helpful error."""
        unit = self.aggregators.get(name)
        if unit is None:
            raise ConfigError(f"no aggregator named {name!r} (have {list(self.aggregators)})")
        return unit

    def device(self, name: str) -> MeteringDevice:
        """Device by name, with a helpful error."""
        dev = self.devices.get(name)
        if dev is None:
            raise ConfigError(f"no device named {name!r} (have {list(self.devices)})")
        return dev

    def schedule_mobility(self, device_name: str, trace: MobilityTrace) -> None:
        """Arm a mobility itinerary for one device."""
        driver = MobilityDriver(self.simulator, self.device(device_name), self.aggregators)
        driver.schedule(trace)

    def enter_at(self, device_name: str, network: str, at_time: float, distance_m: float = 5.0) -> None:
        """Schedule a single network entry."""
        device = self.device(device_name)
        unit = self.aggregator(network)
        self.simulator.schedule(
            at_time,
            lambda: device.enter_network(unit, distance_m),
            label=f"{device_name}:enter:{network}",
        )

    def run_until(self, end_time: float) -> None:
        """Advance the world to ``end_time``."""
        self.simulator.run_until(end_time)

    def summary(self) -> dict:
        """Quick run snapshot: ledger, per-device and per-network counters."""
        return {
            "time": self.simulator.now,
            "chain_height": self.chain.height,
            "total_energy_mwh": self.chain.total_energy_mwh(),
            "devices": {
                name: {
                    "phase": device.fsm.phase.value,
                    "reports_sent": device.reports_sent,
                    "acked": device.acked_count,
                    "buffered_pending": device.store.pending,
                    "energy_mwh": device.meter.total_energy_mwh,
                }
                for name, device in self.devices.items()
            },
            "aggregators": {
                name: {
                    "members": unit.registry.member_count,
                    "acks": unit.acks_sent,
                    "nacks": unit.nacks_sent,
                    "blocks": unit.writer.blocks_written,
                    "network_anomalies": unit.verifier.stats.network_anomalies,
                }
                for name, unit in self.aggregators.items()
            },
        }

    def export_monitoring(self, directory) -> list:
        """Write every aggregator's recorded series as CSV files.

        Returns the written paths; files are named
        ``<aggregator>__<series>.csv``.
        """
        from pathlib import Path

        from repro.monitoring.export import series_to_csv

        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written = []
        for name, unit in self.aggregators.items():
            for series_name in unit.monitoring.names:
                safe = series_name.replace("/", "_").replace(":", "_")
                path = target / f"{name}__{safe}.csv"
                path.write_text(series_to_csv(unit.monitoring[series_name]))
                written.append(path)
        return written


def _add_network(
    scenario: Scenario,
    name: str,
    aggregator_config: AggregatorConfig,
    supply_voltage_v: float,
    segment: WireSegment,
) -> AggregatorUnit:
    aggregator_id = AggregatorId(name)
    network = GridNetwork(
        aggregator_id,
        supply_voltage_v=supply_voltage_v,
        default_segment=segment,
    )
    scenario.grid.add_network(network)
    unit = AggregatorUnit(
        scenario.simulator,
        aggregator_id,
        scenario.chain,
        scenario.mesh,
        network,
        aggregator_config,
    )
    scenario.aggregators[name] = unit
    unit.start()
    return unit


def _add_device(
    scenario: Scenario,
    name: str,
    profile: LoadProfile,
    device_config: DeviceConfig,
) -> MeteringDevice:
    device = MeteringDevice(
        scenario.simulator,
        DeviceId(name),
        device_config,
        scenario.grid,
        scenario.channel,
        profile,
    )
    scenario.devices[name] = device
    return device


def build_paper_testbed(
    seed: int = 0,
    t_measure_s: float = 0.1,
    enter_devices: bool = True,
    device_config: DeviceConfig | None = None,
    aggregator_config: AggregatorConfig | None = None,
    segment: WireSegment | None = None,
) -> Scenario:
    """The paper's testbed: 2 networks ("agg1", "agg2") x 2 devices each.

    Devices ``device1``/``device2`` start in network agg1 and
    ``device3``/``device4`` in agg2, with duty-cycled load profiles that
    span a wide dynamic range (that range is what spreads the Fig. 5
    per-interval gap over ~1-8 %).

    Args:
        seed: Master seed for every random stream.
        t_measure_s: Reporting interval (paper: 0.1 s).
        enter_devices: Schedule all four devices to enter their home
            networks at t=0 (disable for custom itineraries).
        device_config / aggregator_config / segment: Overrides.
    """
    simulator = Simulator(seed=seed)
    scenario = Scenario(
        simulator=simulator,
        grid=GridTopology(),
        chain=Blockchain(authorized=set()),
        mesh=BackhaulMesh(simulator),
        channel=WirelessChannel(ChannelParams(), simulator.rng.stream("channel")),
    )
    agg_config = aggregator_config or AggregatorConfig(t_measure_s=t_measure_s)
    dev_config = device_config or DeviceConfig(t_measure_s=t_measure_s)
    # Wiring losses sized so the per-interval feeder overhead spans the
    # paper's observed 0.9-8.2 % across low/high load phases: constant
    # leakage dominates at light load (large relative gap), I2R adds
    # little even at heavy load (small relative gap).
    wire = segment or WireSegment(resistance_ohms=0.1, leakage_ma=2.5)

    _add_network(scenario, "agg1", agg_config, 5.0, wire)
    _add_network(scenario, "agg2", agg_config, 5.0, wire)
    scenario.mesh.connect(
        BackhaulLink(AggregatorId("agg1"), AggregatorId("agg2"), latency_s=0.001)
    )

    # Smooth wide-range profiles: the network load sweeps from tens of mA
    # to hundreds across intervals, which is what spreads the Fig. 5 gap.
    profiles: dict[str, LoadProfile] = {
        "device1": SinusoidProfile(mean_ma=120.0, amplitude_ma=100.0, period_s=13.0),
        "device2": SinusoidProfile(
            mean_ma=60.0, amplitude_ma=45.0, period_s=17.0, phase_s=5.0
        ),
        "device3": SinusoidProfile(
            mean_ma=90.0, amplitude_ma=70.0, period_s=11.0, phase_s=2.0
        ),
        "device4": SinusoidProfile(
            mean_ma=70.0, amplitude_ma=55.0, period_s=19.0, phase_s=7.0
        ),
    }
    homes = {"device1": "agg1", "device2": "agg1", "device3": "agg2", "device4": "agg2"}
    for name, profile in profiles.items():
        _add_device(scenario, name, profile, dev_config)
        if enter_devices:
            scenario.enter_at(name, homes[name], 0.0)
    return scenario


def build_scaled_scenario(
    n_networks: int,
    devices_per_network: int,
    seed: int = 0,
    t_measure_s: float = 0.1,
    slot_count: int | None = None,
    enter_devices: bool = True,
    mesh_topology: str = "full",
) -> Scenario:
    """N networks with M duty-cycled devices each.

    Device ``dev-<i>-<j>`` lives in network ``net-<i>``.  The backhaul
    ("mesh/cloud network" in the paper) can be shaped:

    * ``"full"`` — every aggregator pair directly linked (the default),
    * ``"line"`` — a chain net-0 — net-1 — ... (worst-case hop count),
    * ``"star"`` — everyone through net-0 (the "cloud" reading: one
      central broker/exchange).

    Used by the A4 scalability experiments and the multi-hop roaming
    tests.
    """
    if n_networks < 1:
        raise ConfigError(f"need at least one network, got {n_networks}")
    if devices_per_network < 0:
        raise ConfigError(f"devices per network must be >= 0, got {devices_per_network}")
    if mesh_topology not in ("full", "line", "star"):
        raise ConfigError(
            f"mesh topology must be full/line/star, got {mesh_topology!r}"
        )
    simulator = Simulator(seed=seed)
    scenario = Scenario(
        simulator=simulator,
        grid=GridTopology(),
        chain=Blockchain(authorized=set()),
        mesh=BackhaulMesh(simulator),
        channel=WirelessChannel(ChannelParams(), simulator.rng.stream("channel")),
    )
    slots = slot_count if slot_count is not None else max(16, devices_per_network + 4)
    agg_config = AggregatorConfig(t_measure_s=t_measure_s, slot_count=slots)
    dev_config = DeviceConfig(t_measure_s=t_measure_s)
    wire = WireSegment(resistance_ohms=0.15, leakage_ma=1.0)

    names = [f"net-{i}" for i in range(n_networks)]
    for name in names:
        _add_network(scenario, name, agg_config, 5.0, wire)
    if mesh_topology == "full":
        links = [
            (a, b) for i, a in enumerate(names) for b in names[i + 1 :]
        ]
    elif mesh_topology == "line":
        links = list(zip(names, names[1:]))
    else:  # star
        links = [(names[0], other) for other in names[1:]]
    for a, b in links:
        scenario.mesh.connect(
            BackhaulLink(AggregatorId(a), AggregatorId(b), latency_s=0.001)
        )

    for i, network in enumerate(names):
        for j in range(devices_per_network):
            device_name = f"dev-{i}-{j}"
            profile = DutyCycleProfile(
                high_ma=40.0 + 10.0 * (j % 5),
                low_ma=5.0 + (j % 3),
                period_s=4.0 + (j % 7),
                duty=0.3 + 0.1 * (j % 4),
                phase_s=0.7 * j,
            )
            _add_device(scenario, device_name, profile, dev_config)
            if enter_devices:
                scenario.enter_at(device_name, network, 0.0)
    return scenario


# -- chaos scenarios -----------------------------------------------------


def _chaos_device_config(t_measure_s: float, retry: bool) -> DeviceConfig:
    return DeviceConfig(
        t_measure_s=t_measure_s,
        retry=RetryPolicy() if retry else None,
    )


def build_blackout_scenario(
    seed: int = 0,
    blackout_at: float = 10.0,
    blackout_s: float = 30.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
) -> tuple[Scenario, FaultPlan]:
    """Paper testbed under a radio blackout window.

    Every uplink frame during ``[blackout_at, blackout_at +
    blackout_s)`` is lost; sampling continues, so the §II-B
    store-and-forward path must buffer the whole window and backfill
    (``buffered=True``) once the link returns — the Fig. 6 shape,
    caused by a fault instead of mobility.
    """
    scenario = build_paper_testbed(
        seed=seed,
        t_measure_s=t_measure_s,
        device_config=_chaos_device_config(t_measure_s, retry),
    )
    plan = FaultPlan(scenario.simulator)
    injector = plan.make_injector("radio")
    scenario.channel.set_fault_injector(injector)
    plan.link_blackout("radio-blackout", injector, blackout_at, blackout_s)
    return scenario, plan


def build_crash_scenario(
    seed: int = 0,
    crash_at: float = 10.0,
    outage_s: float = 15.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
    aggregator: str = "agg1",
) -> tuple[Scenario, FaultPlan]:
    """Paper testbed with one aggregator crashing and restarting.

    During the outage the broker drops everything, so in-flight reports
    go unacknowledged; the devices' retry path re-buffers them and the
    post-restart ``Nack(NOT_A_MEMBER)`` → re-registration sequence
    (vouched by the surviving ledger) backfills the window.
    """
    scenario = build_paper_testbed(
        seed=seed,
        t_measure_s=t_measure_s,
        device_config=_chaos_device_config(t_measure_s, retry),
    )
    plan = FaultPlan(scenario.simulator)
    plan.aggregator_crash(
        f"{aggregator}-crash", scenario.aggregator(aggregator), crash_at, outage_s
    )
    return scenario, plan


def build_partition_scenario(
    seed: int = 0,
    partition_at: float = 18.0,
    partition_s: float = 20.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
) -> tuple[Scenario, FaultPlan]:
    """Roaming into a partitioned backhaul.

    ``device1`` moves from agg1 to agg2 while the mesh is split, so the
    host cannot verify the claimed master: the verify retry path times
    out, the device keeps buffering under registration retries, and
    membership (plus the backfill) completes only after the heal.
    """
    scenario = build_paper_testbed(
        seed=seed,
        t_measure_s=t_measure_s,
        device_config=_chaos_device_config(t_measure_s, retry),
        enter_devices=False,
    )
    scenario.enter_at("device2", "agg1", 0.0)
    scenario.enter_at("device3", "agg2", 0.0)
    scenario.enter_at("device4", "agg2", 0.0)
    scenario.schedule_mobility(
        "device1",
        MobilityTrace.single_move(
            home="agg1",
            destination="agg2",
            enter_home_at=0.0,
            leave_home_at=partition_at + 2.0,
            idle_s=5.0,
        ),
    )
    plan = FaultPlan(scenario.simulator)
    plan.backhaul_partition(
        "mesh-split",
        scenario.mesh,
        [{AggregatorId("agg1")}, {AggregatorId("agg2")}],
        partition_at,
        partition_s,
    )
    return scenario, plan
