"""Canonical scenario shapes as :class:`ScenarioSpec` factories.

:func:`paper_testbed_spec` describes the paper's experimental setup
(§III-A): two networks, each with one aggregator and two devices,
reporting every 100 ms, aggregators joined by a ~1 ms backhaul.
:func:`scaled_spec` generalises to N networks x M devices for the
scalability experiments, and :func:`blackout_spec` /
:func:`crash_spec` / :func:`partition_spec` put the testbed under
deterministic fault schedules.

Every factory returns plain data; :func:`repro.runtime.build.build`
compiles it into a wired world.  The ``build_*`` wrappers keep the
historical imperative entry points (same signatures, same returns, same
bit-identical worlds at a given seed) as one-liners over spec + build.
"""

from __future__ import annotations

from repro.aggregator.unit import AggregatorConfig
from repro.device.stack import DeviceConfig
from repro.errors import ConfigError
from repro.faults import FaultPlan, RetryPolicy
from repro.hw.powerline import WireSegment
from repro.runtime.build import build
from repro.runtime.scenario import Scenario
from repro.runtime.spec import (
    DeviceSpec,
    FaultSpec,
    MeshSpec,
    NetworkSpec,
    ProfileSpec,
    ScenarioSpec,
    TransportSpec,
)
from repro.workloads.mobility import MobilityTrace

__all__ = [
    "Scenario",
    "paper_testbed_spec",
    "scaled_spec",
    "blackout_spec",
    "crash_spec",
    "partition_spec",
    "build_paper_testbed",
    "build_scaled_scenario",
    "build_blackout_scenario",
    "build_crash_scenario",
    "build_partition_scenario",
]

# Smooth wide-range profiles: the network load sweeps from tens of mA
# to hundreds across intervals, which is what spreads the Fig. 5 gap
# over ~1-8 %.
_PAPER_PROFILES: dict[str, ProfileSpec] = {
    "device1": ProfileSpec(
        "sinusoid", {"mean_ma": 120.0, "amplitude_ma": 100.0, "period_s": 13.0}
    ),
    "device2": ProfileSpec(
        "sinusoid",
        {"mean_ma": 60.0, "amplitude_ma": 45.0, "period_s": 17.0, "phase_s": 5.0},
    ),
    "device3": ProfileSpec(
        "sinusoid",
        {"mean_ma": 90.0, "amplitude_ma": 70.0, "period_s": 11.0, "phase_s": 2.0},
    ),
    "device4": ProfileSpec(
        "sinusoid",
        {"mean_ma": 70.0, "amplitude_ma": 55.0, "period_s": 19.0, "phase_s": 7.0},
    ),
}
_PAPER_HOMES = {
    "device1": "agg1",
    "device2": "agg1",
    "device3": "agg2",
    "device4": "agg2",
}


def paper_testbed_spec(
    seed: int = 0,
    t_measure_s: float = 0.1,
    enter_devices: bool = True,
    device_retry: bool = True,
    faults: tuple[FaultSpec, ...] = (),
    name: str = "paper-testbed",
    transport: TransportSpec | None = None,
) -> ScenarioSpec:
    """The paper's testbed: 2 networks ("agg1", "agg2") x 2 devices each.

    Devices ``device1``/``device2`` start in network agg1 and
    ``device3``/``device4`` in agg2, with sinusoid load profiles that
    span a wide dynamic range.

    Args:
        seed: Master seed for every random stream.
        t_measure_s: Reporting interval (paper: 0.1 s).
        enter_devices: Schedule all four devices to enter their home
            networks at t=0 (disable for custom itineraries).
        device_retry: Whether devices run the Ack-timeout retry path.
        faults: Optional deterministic fault schedule.
        name: Scenario name recorded in provenance.
        transport: Wire backend (default: full-fidelity ``mqtt``).
    """
    # Wiring losses sized so the per-interval feeder overhead spans the
    # paper's observed 0.9-8.2 % across low/high load phases: constant
    # leakage dominates at light load (large relative gap), I2R adds
    # little even at heavy load (small relative gap).
    return ScenarioSpec(
        name=name,
        seed=seed,
        t_measure_s=t_measure_s,
        device_retry=device_retry,
        networks=(
            NetworkSpec("agg1", wire_resistance_ohms=0.1, wire_leakage_ma=2.5),
            NetworkSpec("agg2", wire_resistance_ohms=0.1, wire_leakage_ma=2.5),
        ),
        devices=tuple(
            DeviceSpec(
                name=device,
                network=_PAPER_HOMES[device],
                profile=profile,
                enter_at=0.0 if enter_devices else None,
            )
            for device, profile in _PAPER_PROFILES.items()
        ),
        mesh=MeshSpec(topology="full", latency_s=0.001),
        transport=transport if transport is not None else TransportSpec(),
        faults=faults,
    )


def scaled_spec(
    n_networks: int,
    devices_per_network: int,
    seed: int = 0,
    t_measure_s: float = 0.1,
    slot_count: int | None = None,
    enter_devices: bool = True,
    mesh_topology: str = "full",
    transport: TransportSpec | None = None,
) -> ScenarioSpec:
    """N networks with M duty-cycled devices each.

    Device ``dev-<i>-<j>`` lives in network ``net-<i>``.  The backhaul
    ("mesh/cloud network" in the paper) can be shaped:

    * ``"full"`` — every aggregator pair directly linked (the default),
    * ``"line"`` — a chain net-0 — net-1 — ... (worst-case hop count),
    * ``"star"`` — everyone through net-0 (the "cloud" reading: one
      central broker/exchange).

    Used by the A4 scalability experiments and the multi-hop roaming
    tests.
    """
    if n_networks < 1:
        raise ConfigError(f"need at least one network, got {n_networks}")
    if devices_per_network < 0:
        raise ConfigError(f"devices per network must be >= 0, got {devices_per_network}")
    if mesh_topology not in ("full", "line", "star"):
        raise ConfigError(
            f"mesh topology must be full/line/star, got {mesh_topology!r}"
        )
    slots = slot_count if slot_count is not None else max(16, devices_per_network + 4)
    return ScenarioSpec(
        name=f"scaled-{n_networks}x{devices_per_network}",
        seed=seed,
        t_measure_s=t_measure_s,
        networks=tuple(
            NetworkSpec(
                f"net-{i}",
                wire_resistance_ohms=0.15,
                wire_leakage_ma=1.0,
                slot_count=slots,
            )
            for i in range(n_networks)
        ),
        devices=tuple(
            DeviceSpec(
                name=f"dev-{i}-{j}",
                network=f"net-{i}",
                profile=ProfileSpec(
                    "duty_cycle",
                    {
                        "high_ma": 40.0 + 10.0 * (j % 5),
                        "low_ma": 5.0 + (j % 3),
                        "period_s": 4.0 + (j % 7),
                        "duty": 0.3 + 0.1 * (j % 4),
                        "phase_s": 0.7 * j,
                    },
                ),
                enter_at=0.0 if enter_devices else None,
            )
            for i in range(n_networks)
            for j in range(devices_per_network)
        ),
        mesh=MeshSpec(topology=mesh_topology, latency_s=0.001),
        transport=transport if transport is not None else TransportSpec(),
    )


def build_paper_testbed(
    seed: int = 0,
    t_measure_s: float = 0.1,
    enter_devices: bool = True,
    device_config: DeviceConfig | None = None,
    aggregator_config: AggregatorConfig | None = None,
    segment: WireSegment | None = None,
) -> Scenario:
    """Compile the paper testbed (see :func:`paper_testbed_spec`).

    ``device_config`` / ``aggregator_config`` / ``segment`` override
    every device/aggregator/wire with a non-serializable config object;
    the recorded spec still describes the world shape.
    """
    return build(
        paper_testbed_spec(
            seed=seed, t_measure_s=t_measure_s, enter_devices=enter_devices
        ),
        device_config=device_config,
        aggregator_config=aggregator_config,
        segment=segment,
    )


def build_scaled_scenario(
    n_networks: int,
    devices_per_network: int,
    seed: int = 0,
    t_measure_s: float = 0.1,
    slot_count: int | None = None,
    enter_devices: bool = True,
    mesh_topology: str = "full",
    transport: TransportSpec | None = None,
) -> Scenario:
    """Compile the scaled N x M world (see :func:`scaled_spec`)."""
    return build(
        scaled_spec(
            n_networks,
            devices_per_network,
            seed=seed,
            t_measure_s=t_measure_s,
            slot_count=slot_count,
            enter_devices=enter_devices,
            mesh_topology=mesh_topology,
            transport=transport,
        )
    )


# -- chaos scenarios -----------------------------------------------------


def _chaos_device_config(t_measure_s: float, retry: bool) -> DeviceConfig:
    return DeviceConfig(
        t_measure_s=t_measure_s,
        retry=RetryPolicy() if retry else None,
    )


def blackout_spec(
    seed: int = 0,
    blackout_at: float = 10.0,
    blackout_s: float = 30.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
) -> ScenarioSpec:
    """Paper testbed under a radio blackout window.

    Every uplink frame during ``[blackout_at, blackout_at +
    blackout_s)`` is lost; sampling continues, so the §II-B
    store-and-forward path must buffer the whole window and backfill
    (``buffered=True``) once the link returns — the Fig. 6 shape,
    caused by a fault instead of mobility.
    """
    return paper_testbed_spec(
        seed=seed,
        t_measure_s=t_measure_s,
        device_retry=retry,
        name="paper-testbed-blackout",
        faults=(
            FaultSpec(
                kind="channel_blackout",
                name="radio-blackout",
                start_at=blackout_at,
                duration_s=blackout_s,
                target="radio",
            ),
        ),
    )


def crash_spec(
    seed: int = 0,
    crash_at: float = 10.0,
    outage_s: float = 15.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
    aggregator: str = "agg1",
) -> ScenarioSpec:
    """Paper testbed with one aggregator crashing and restarting.

    During the outage the broker drops everything, so in-flight reports
    go unacknowledged; the devices' retry path re-buffers them and the
    post-restart ``Nack(NOT_A_MEMBER)`` → re-registration sequence
    (vouched by the surviving ledger) backfills the window.
    """
    return paper_testbed_spec(
        seed=seed,
        t_measure_s=t_measure_s,
        device_retry=retry,
        name="paper-testbed-crash",
        faults=(
            FaultSpec(
                kind="aggregator_crash",
                name=f"{aggregator}-crash",
                start_at=crash_at,
                duration_s=outage_s,
                target=aggregator,
            ),
        ),
    )


def partition_spec(
    seed: int = 0,
    partition_at: float = 18.0,
    partition_s: float = 20.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
) -> ScenarioSpec:
    """Roaming into a partitioned backhaul.

    ``device1`` does not auto-enter (its mobility itinerary is
    imperative — see :func:`build_partition_scenario`); the mesh splits
    into {agg1} | {agg2} during the window, so the host cannot verify
    the claimed master until the heal.
    """
    base = paper_testbed_spec(
        seed=seed,
        t_measure_s=t_measure_s,
        device_retry=retry,
        enter_devices=False,
        name="paper-testbed-partition",
        faults=(
            FaultSpec(
                kind="backhaul_partition",
                name="mesh-split",
                start_at=partition_at,
                duration_s=partition_s,
                groups=(("agg1",), ("agg2",)),
            ),
        ),
    )
    # device2/3/4 enter their homes at t=0; device1 rides mobility.
    devices = tuple(
        device if device.name == "device1"
        else DeviceSpec(
            name=device.name,
            network=device.network,
            profile=device.profile,
            enter_at=0.0,
            distance_m=device.distance_m,
        )
        for device in base.devices
    )
    return ScenarioSpec(
        name=base.name,
        seed=base.seed,
        t_measure_s=base.t_measure_s,
        device_retry=base.device_retry,
        networks=base.networks,
        devices=devices,
        mesh=base.mesh,
        transport=base.transport,
        faults=base.faults,
    )


def build_blackout_scenario(
    seed: int = 0,
    blackout_at: float = 10.0,
    blackout_s: float = 30.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
) -> tuple[Scenario, FaultPlan]:
    """Compile :func:`blackout_spec`; returns ``(scenario, plan)``."""
    scenario = build(
        blackout_spec(
            seed=seed,
            blackout_at=blackout_at,
            blackout_s=blackout_s,
            t_measure_s=t_measure_s,
            retry=retry,
        )
    )
    return scenario, scenario.fault_plan


def build_crash_scenario(
    seed: int = 0,
    crash_at: float = 10.0,
    outage_s: float = 15.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
    aggregator: str = "agg1",
) -> tuple[Scenario, FaultPlan]:
    """Compile :func:`crash_spec`; returns ``(scenario, plan)``."""
    scenario = build(
        crash_spec(
            seed=seed,
            crash_at=crash_at,
            outage_s=outage_s,
            t_measure_s=t_measure_s,
            retry=retry,
            aggregator=aggregator,
        )
    )
    return scenario, scenario.fault_plan


def build_partition_scenario(
    seed: int = 0,
    partition_at: float = 18.0,
    partition_s: float = 20.0,
    t_measure_s: float = 0.1,
    retry: bool = True,
) -> tuple[Scenario, FaultPlan]:
    """Compile :func:`partition_spec` and arm device1's move.

    The itinerary (agg1 → agg2, leaving two seconds into the partition)
    stays imperative: mobility traces are callables over scenario state,
    not spec data.
    """
    scenario = build(
        partition_spec(
            seed=seed,
            partition_at=partition_at,
            partition_s=partition_s,
            t_measure_s=t_measure_s,
            retry=retry,
        )
    )
    scenario.schedule_mobility(
        "device1",
        MobilityTrace.single_move(
            home="agg1",
            destination="agg2",
            enter_home_at=0.0,
            leave_home_at=partition_at + 2.0,
            idle_s=5.0,
        ),
    )
    return scenario, scenario.fault_plan
