"""Load-current profiles.

A profile is a deterministic callable ``t -> mA`` giving the grid-side
load current of a device's *function* (the MCU's own draw is added by
the device stack).  Determinism in *time* matters: the grid, the device
sensor and any evaluation code may all sample the same instant and must
see the same truth.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError
from repro.hw.battery import Battery, CcCvCharger


class ConstantProfile:
    """A fixed load current."""

    def __init__(self, current_ma: float) -> None:
        if current_ma < 0:
            raise ConfigError(f"current must be >= 0, got {current_ma}")
        self._current_ma = current_ma

    def __call__(self, at_time: float) -> float:
        return self._current_ma


class DutyCycleProfile:
    """Square-wave load: ``high_ma`` for a fraction of each period.

    Models the duty-cycled sensing/compute tasks the testbed's ESP32
    devices run.  A phase offset decorrelates multiple devices.
    """

    def __init__(
        self,
        high_ma: float,
        low_ma: float = 0.0,
        period_s: float = 2.0,
        duty: float = 0.5,
        phase_s: float = 0.0,
    ) -> None:
        if high_ma < low_ma:
            raise ConfigError(f"high {high_ma} must be >= low {low_ma}")
        if low_ma < 0:
            raise ConfigError(f"low current must be >= 0, got {low_ma}")
        if period_s <= 0:
            raise ConfigError(f"period must be positive, got {period_s}")
        if not 0.0 <= duty <= 1.0:
            raise ConfigError(f"duty must be in [0, 1], got {duty}")
        self._high_ma = high_ma
        self._low_ma = low_ma
        self._period_s = period_s
        self._duty = duty
        self._phase_s = phase_s

    def __call__(self, at_time: float) -> float:
        offset = (at_time + self._phase_s) % self._period_s
        if offset < self._duty * self._period_s:
            return self._high_ma
        return self._low_ma


class SinusoidProfile:
    """Slow sinusoidal load around a mean (thermal-style variation)."""

    def __init__(
        self,
        mean_ma: float,
        amplitude_ma: float,
        period_s: float = 60.0,
        phase_s: float = 0.0,
    ) -> None:
        if mean_ma < amplitude_ma:
            raise ConfigError(
                f"mean {mean_ma} must be >= amplitude {amplitude_ma} to stay non-negative"
            )
        if period_s <= 0:
            raise ConfigError(f"period must be positive, got {period_s}")
        self._mean_ma = mean_ma
        self._amplitude_ma = amplitude_ma
        self._period_s = period_s
        self._phase_s = phase_s

    def __call__(self, at_time: float) -> float:
        angle = 2.0 * math.pi * (at_time + self._phase_s) / self._period_s
        return self._mean_ma + self._amplitude_ma * math.sin(angle)


class EscooterChargeProfile:
    """The e-scooter's grid-side charge current over time.

    Pre-integrates a :class:`~repro.hw.battery.CcCvCharger` against a
    :class:`~repro.hw.battery.Battery` on a fine grid at construction,
    then answers point queries by interpolation — deterministic and
    O(log n) per call.

    Args:
        capacity_mah: Battery capacity.
        initial_soc: State of charge when charging starts.
        cc_current_ma: Bulk charge current.
        start_s: When charging begins (profile is 0 before).
        dt_s: Integration step of the precomputed curve.
        max_duration_s: Horizon of the precomputed curve.
    """

    def __init__(
        self,
        capacity_mah: float = 50.0,
        initial_soc: float = 0.1,
        cc_current_ma: float = 150.0,
        start_s: float = 0.0,
        dt_s: float = 1.0,
        max_duration_s: float = 7200.0,
    ) -> None:
        if dt_s <= 0:
            raise ConfigError(f"dt must be positive, got {dt_s}")
        if max_duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {max_duration_s}")
        self._start_s = start_s
        battery = Battery(capacity_mah, initial_soc)
        charger = CcCvCharger(cc_current_ma)
        steps = int(max_duration_s / dt_s) + 1
        times = np.arange(steps, dtype=float) * dt_s
        currents = np.empty(steps, dtype=float)
        for i in range(steps):
            currents[i] = charger.charge_current_ma(battery.soc)
            charger.step(battery, dt_s)
        self._times = times
        self._currents = currents

    def __call__(self, at_time: float) -> float:
        elapsed = at_time - self._start_s
        if elapsed < 0:
            return 0.0
        if elapsed >= self._times[-1]:
            return float(self._currents[-1])
        return float(np.interp(elapsed, self._times, self._currents))


class ApplianceProfile:
    """Stochastic on/off appliance with a pre-drawn schedule.

    The on/off switching times are drawn once at construction from a
    seeded generator, producing a deterministic piecewise-constant
    function of time — randomness in the *profile*, not in the *query*.

    Args:
        rng: Seeded generator for the schedule draw.
        on_ma: Current while on.
        mean_on_s / mean_off_s: Exponential dwell means.
        horizon_s: Schedule length (constant ``off`` beyond it).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        on_ma: float = 80.0,
        mean_on_s: float = 20.0,
        mean_off_s: float = 40.0,
        horizon_s: float = 3600.0,
    ) -> None:
        if on_ma < 0:
            raise ConfigError(f"on current must be >= 0, got {on_ma}")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigError("dwell means must be positive")
        if horizon_s <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon_s}")
        self._on_ma = on_ma
        edges = [0.0]
        is_on = [False]
        t = 0.0
        on = False
        while t < horizon_s:
            dwell = float(rng.exponential(mean_on_s if on else mean_off_s))
            t += max(dwell, 1e-3)
            on = not on
            edges.append(t)
            is_on.append(on)
        self._edges = np.asarray(edges)
        self._is_on = is_on

    def __call__(self, at_time: float) -> float:
        if at_time < 0 or at_time >= self._edges[-1]:
            return 0.0
        index = int(np.searchsorted(self._edges, at_time, side="right") - 1)
        return self._on_ma if self._is_on[index] else 0.0


class CompositeProfile:
    """Sum of component profiles (e.g. base load + appliance)."""

    def __init__(self, *components) -> None:
        if not components:
            raise ConfigError("composite needs at least one component")
        self._components = components

    def __call__(self, at_time: float) -> float:
        return sum(component(at_time) for component in self._components)
