"""Workloads: consumption profiles, mobility traces, ready scenarios.

* :mod:`repro.workloads.profiles` — deterministic load-current functions
  (duty-cycled ESP32 tasks, the e-scooter CC/CV charge curve, stochastic
  appliances, composites),
* :mod:`repro.workloads.mobility` — timed enter/leave traces and the
  driver that schedules them on a simulator,
* :mod:`repro.workloads.scenarios` — builders, including the paper's
  exact testbed (2 networks x 2 devices) and a scalable variant.
"""

from repro.workloads.mobility import MobilityDriver, MobilityEvent, MobilityTrace
from repro.workloads.profiles import (
    ApplianceProfile,
    CompositeProfile,
    ConstantProfile,
    DutyCycleProfile,
    EscooterChargeProfile,
    SinusoidProfile,
)
from repro.workloads.scenarios import Scenario, build_paper_testbed, build_scaled_scenario
from repro.workloads.traces import MarkovApplianceModel, TraceProfile

__all__ = [
    "MobilityDriver",
    "MobilityEvent",
    "MobilityTrace",
    "ApplianceProfile",
    "CompositeProfile",
    "ConstantProfile",
    "DutyCycleProfile",
    "EscooterChargeProfile",
    "SinusoidProfile",
    "Scenario",
    "build_paper_testbed",
    "build_scaled_scenario",
    "MarkovApplianceModel",
    "TraceProfile",
]
