"""Workloads: consumption profiles, mobility traces, ready scenarios.

* :mod:`repro.workloads.profiles` — deterministic load-current functions
  (duty-cycled ESP32 tasks, the e-scooter CC/CV charge curve, stochastic
  appliances, composites),
* :mod:`repro.workloads.mobility` — timed enter/leave traces and the
  driver that schedules them on a simulator,
* :mod:`repro.workloads.scenarios` — :class:`ScenarioSpec` factories
  for the canonical shapes (the paper's exact 2x2 testbed, scaled N x M
  worlds, chaos variants) plus the imperative ``build_*`` wrappers.
"""

from repro.workloads.mobility import MobilityDriver, MobilityEvent, MobilityTrace
from repro.workloads.profiles import (
    ApplianceProfile,
    CompositeProfile,
    ConstantProfile,
    DutyCycleProfile,
    EscooterChargeProfile,
    SinusoidProfile,
)
from repro.workloads.scenarios import (
    Scenario,
    blackout_spec,
    build_blackout_scenario,
    build_crash_scenario,
    build_paper_testbed,
    build_partition_scenario,
    build_scaled_scenario,
    crash_spec,
    paper_testbed_spec,
    partition_spec,
    scaled_spec,
)
from repro.workloads.traces import MarkovApplianceModel, TraceProfile

__all__ = [
    "MobilityDriver",
    "MobilityEvent",
    "MobilityTrace",
    "ApplianceProfile",
    "CompositeProfile",
    "ConstantProfile",
    "DutyCycleProfile",
    "EscooterChargeProfile",
    "SinusoidProfile",
    "Scenario",
    "paper_testbed_spec",
    "scaled_spec",
    "blackout_spec",
    "crash_spec",
    "partition_spec",
    "build_paper_testbed",
    "build_scaled_scenario",
    "build_blackout_scenario",
    "build_crash_scenario",
    "build_partition_scenario",
    "MarkovApplianceModel",
    "TraceProfile",
]
