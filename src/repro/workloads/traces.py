"""Trace-driven and multi-state stochastic load profiles.

For users with real measurement data, :class:`TraceProfile` replays a
recorded ``(time, current)`` trace as a load profile, with CSV
round-tripping.  For richer synthetic households,
:class:`MarkovApplianceModel` generates multi-state appliance behaviour
(off / standby / active / burst) with a pre-drawn schedule, so the
resulting profile is still a deterministic function of time.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.errors import ConfigError


class TraceProfile:
    """Replays a recorded trace as a step-interpolated profile.

    Args:
        times: Breakpoint times (strictly increasing, seconds).
        currents_ma: Current from each breakpoint until the next.
        repeat: Loop the trace past its end (else hold 0 after it).
    """

    def __init__(
        self,
        times: list[float],
        currents_ma: list[float],
        repeat: bool = False,
    ) -> None:
        if len(times) != len(currents_ma):
            raise ConfigError(
                f"times ({len(times)}) and currents ({len(currents_ma)}) differ"
            )
        if not times:
            raise ConfigError("trace must have at least one breakpoint")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigError("trace times must be strictly increasing")
        if times[0] != 0.0:
            raise ConfigError(f"trace must start at t=0, got {times[0]}")
        if any(c < 0 for c in currents_ma):
            raise ConfigError("trace currents must be >= 0")
        self._times = np.asarray(times)
        self._currents = np.asarray(currents_ma)
        self._repeat = repeat
        # The trace's span: last breakpoint defines the loop period by
        # holding its value for the same duration as the mean step.
        if len(times) > 1:
            mean_step = (times[-1] - times[0]) / (len(times) - 1)
        else:
            mean_step = 1.0
        self._span = times[-1] + mean_step

    @property
    def span_s(self) -> float:
        """Duration covered by one pass of the trace."""
        return self._span

    def __call__(self, at_time: float) -> float:
        if at_time < 0:
            return 0.0
        if self._repeat:
            at_time = at_time % self._span
        elif at_time >= self._span:
            return 0.0
        index = int(np.searchsorted(self._times, at_time, side="right") - 1)
        index = max(0, index)
        return float(self._currents[index])

    def to_csv(self) -> str:
        """CSV text with a header and one breakpoint per row."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time_s", "current_ma"])
        for t, c in zip(self._times, self._currents):
            # repr round-trips floats exactly; fixed-point would lose
            # precision and break trace-replay determinism.
            writer.writerow([repr(float(t)), repr(float(c))])
        return buffer.getvalue()

    @staticmethod
    def from_csv(text: str, repeat: bool = False) -> "TraceProfile":
        """Parse the :meth:`to_csv` format (header required)."""
        reader = csv.reader(io.StringIO(text))
        rows = [row for row in reader if row]
        if not rows or rows[0][:2] != ["time_s", "current_ma"]:
            raise ConfigError("trace CSV must start with 'time_s,current_ma'")
        times: list[float] = []
        currents: list[float] = []
        for line_no, row in enumerate(rows[1:], start=2):
            try:
                times.append(float(row[0]))
                currents.append(float(row[1]))
            except (IndexError, ValueError) as exc:
                raise ConfigError(f"bad trace row {line_no}: {row}") from exc
        return TraceProfile(times, currents, repeat=repeat)

    @staticmethod
    def load(path: str | Path, repeat: bool = False) -> "TraceProfile":
        """Load a trace CSV from disk."""
        return TraceProfile.from_csv(Path(path).read_text(), repeat=repeat)

    def save(self, path: str | Path) -> None:
        """Write the trace CSV to disk."""
        Path(path).write_text(self.to_csv())


APPLIANCE_STATES = ("off", "standby", "active", "burst")


class MarkovApplianceModel:
    """Multi-state appliance behaviour with a pre-drawn schedule.

    States and typical draws: off (0), standby (a few mA), active (the
    appliance's working draw), burst (compressor / heater peaks).  The
    transition matrix is row-stochastic over those four states; dwell
    times are exponential per state.  The whole schedule is drawn at
    construction, keeping the profile deterministic in time.

    Args:
        rng: Seeded generator for the schedule draw.
        standby_ma / active_ma / burst_ma: Per-state draws.
        mean_dwell_s: Mean dwell per state (same order as
            ``APPLIANCE_STATES``).
        transitions: Row-stochastic 4x4 matrix; default favours
            off<->active cycles with occasional bursts.
        horizon_s: Schedule length (off beyond it).
    """

    _DEFAULT_TRANSITIONS = np.array(
        [
            [0.0, 0.5, 0.5, 0.0],   # off -> standby/active
            [0.4, 0.0, 0.6, 0.0],   # standby -> off/active
            [0.3, 0.2, 0.0, 0.5],   # active -> off/standby/burst
            [0.0, 0.0, 1.0, 0.0],   # burst -> active
        ]
    )

    def __init__(
        self,
        rng: np.random.Generator,
        standby_ma: float = 3.0,
        active_ma: float = 60.0,
        burst_ma: float = 150.0,
        mean_dwell_s: tuple[float, float, float, float] = (30.0, 10.0, 20.0, 4.0),
        transitions: np.ndarray | None = None,
        horizon_s: float = 3600.0,
    ) -> None:
        for name, value in (
            ("standby", standby_ma), ("active", active_ma), ("burst", burst_ma)
        ):
            if value < 0:
                raise ConfigError(f"{name} draw must be >= 0, got {value}")
        if any(d <= 0 for d in mean_dwell_s):
            raise ConfigError("dwell means must be positive")
        if horizon_s <= 0:
            raise ConfigError(f"horizon must be positive, got {horizon_s}")
        matrix = (
            np.asarray(transitions)
            if transitions is not None
            else self._DEFAULT_TRANSITIONS
        )
        if matrix.shape != (4, 4):
            raise ConfigError(f"transition matrix must be 4x4, got {matrix.shape}")
        if not np.allclose(matrix.sum(axis=1), 1.0):
            raise ConfigError("transition matrix rows must sum to 1")
        if np.any(matrix < 0):
            raise ConfigError("transition probabilities must be >= 0")

        draws = {"off": 0.0, "standby": standby_ma, "active": active_ma,
                 "burst": burst_ma}
        self._draw_by_state = draws
        edges = [0.0]
        currents = []
        state = 0
        t = 0.0
        while t < horizon_s:
            currents.append(draws[APPLIANCE_STATES[state]])
            dwell = float(rng.exponential(mean_dwell_s[state]))
            t += max(dwell, 0.1)
            edges.append(t)
            state = int(rng.choice(4, p=matrix[state]))
        self._edges = np.asarray(edges)
        self._currents = currents
        self._horizon = horizon_s

    def __call__(self, at_time: float) -> float:
        if at_time < 0 or at_time >= self._edges[-1] or at_time >= self._horizon:
            return 0.0
        index = int(np.searchsorted(self._edges, at_time, side="right") - 1)
        if index >= len(self._currents):
            return 0.0
        return self._currents[index]

    def occupancy(self, resolution_s: float = 1.0) -> dict[str, float]:
        """Fraction of the horizon spent in each state (sampled).

        States are identified by their exact construction draws, so the
        breakdown is exact up to the sampling resolution.
        """
        if resolution_s <= 0:
            raise ConfigError(f"resolution must be positive, got {resolution_s}")
        samples = int(self._horizon / resolution_s)
        if samples == 0:
            raise ConfigError("resolution coarser than the horizon")
        state_by_draw = {draw: name for name, draw in self._draw_by_state.items()}
        if len(state_by_draw) < len(self._draw_by_state):
            raise ConfigError(
                "state draws must be pairwise distinct for an occupancy breakdown"
            )
        counts = dict.fromkeys(APPLIANCE_STATES, 0)
        for i in range(samples):
            value = self(i * resolution_s)
            counts[state_by_draw[value]] += 1
        return {name: count / samples for name, count in counts.items()}
