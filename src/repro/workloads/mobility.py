"""Mobility traces.

A :class:`MobilityTrace` is the timed itinerary of one device — enter
this network at t0, leave at t1, enter that one at t2 — and the
:class:`MobilityDriver` schedules it on the simulator.  The gap between
a leave and the next enter is the paper's *Idle time* (in transit, no
grid connection, no consumption).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aggregator.unit import AggregatorUnit
from repro.device.stack import MeteringDevice
from repro.errors import ConfigError
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class MobilityEvent:
    """One itinerary entry.

    Attributes:
        at_time: When the event fires.
        action: ``"enter"`` or ``"leave"``.
        network: Target aggregator name for ``enter`` (ignored on leave).
        distance_m: Radio distance to the AP on entry.
    """

    at_time: float
    action: str
    network: str | None = None
    distance_m: float = 5.0

    def __post_init__(self) -> None:
        if self.action not in ("enter", "leave"):
            raise ConfigError(f"action must be enter/leave, got {self.action!r}")
        if self.action == "enter" and not self.network:
            raise ConfigError("enter events need a target network")
        if self.at_time < 0:
            raise ConfigError(f"event time must be >= 0, got {self.at_time}")


class MobilityTrace:
    """Ordered itinerary with alternating-action validation."""

    def __init__(self, events: list[MobilityEvent]) -> None:
        ordered = sorted(events, key=lambda e: e.at_time)
        expecting = "enter"
        for event in ordered:
            if event.action != expecting:
                raise ConfigError(
                    f"itinerary must alternate enter/leave; got {event.action!r} "
                    f"at t={event.at_time} while expecting {expecting!r}"
                )
            expecting = "leave" if expecting == "enter" else "enter"
        self._events = ordered

    @property
    def events(self) -> list[MobilityEvent]:
        """The validated, time-ordered events."""
        return list(self._events)

    @staticmethod
    def single_move(
        home: str,
        destination: str,
        enter_home_at: float = 0.0,
        leave_home_at: float = 60.0,
        idle_s: float = 10.0,
        distance_m: float = 5.0,
    ) -> "MobilityTrace":
        """The paper's Fig. 6 itinerary: home, transit, foreign network."""
        return MobilityTrace(
            [
                MobilityEvent(enter_home_at, "enter", home, distance_m),
                MobilityEvent(leave_home_at, "leave"),
                MobilityEvent(leave_home_at + idle_s, "enter", destination, distance_m),
            ]
        )


class MobilityDriver:
    """Schedules a trace's events against a device and aggregators.

    Args:
        simulator: The kernel.
        device: The moving device.
        aggregators: Name-to-unit map used to resolve enter targets.
    """

    def __init__(
        self,
        simulator: Simulator,
        device: MeteringDevice,
        aggregators: dict[str, AggregatorUnit],
    ) -> None:
        self._sim = simulator
        self._device = device
        self._aggregators = dict(aggregators)

    def schedule(self, trace: MobilityTrace) -> None:
        """Arm every event of ``trace`` on the simulator."""
        for event in trace.events:
            if event.action == "enter":
                unit = self._aggregators.get(event.network)
                if unit is None:
                    raise ConfigError(f"unknown network {event.network!r}")
                self._sim.schedule(
                    event.at_time,
                    lambda u=unit, d=event.distance_m: self._device.enter_network(u, d),
                    label=f"{self._device.name}:enter:{event.network}",
                )
            else:
                self._sim.schedule(
                    event.at_time,
                    self._device.leave_network,
                    label=f"{self._device.name}:leave",
                )
