"""Command-line entry point: ``repro-experiments``.

Regenerates the paper's figures/statistics as text, or runs a
spec-file-described scenario end to end:

.. code-block:: console

    $ repro-experiments --list
    $ repro-experiments fig5 fig6
    $ repro-experiments            # everything
    $ repro-experiments --scenario spec.json --until 30
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS, run_all


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Real-Time Energy Monitoring in "
            "IoT-enabled Mobile Devices' (DATE 2020)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all). Available: {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write each experiment's output to DIR/<name>.txt",
    )
    parser.add_argument(
        "--scenario",
        metavar="SPEC_JSON",
        help=(
            "build the ScenarioSpec in this JSON file, run it and print the "
            "snapshot as JSON (ignores experiment names)"
        ),
    )
    parser.add_argument(
        "--until",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="simulated time to run a --scenario world to (default: 30)",
    )
    parser.add_argument(
        "--workers",
        default="1",
        metavar="N",
        help=(
            "run experiments across N worker processes (outputs are "
            "identical for any N; 'auto' or 0 detects the usable CPU "
            "count; default: 1)"
        ),
    )
    parser.add_argument(
        "--shards",
        default=None,
        metavar="N",
        help=(
            "run a --scenario world partitioned across N kernel shards "
            "('auto' detects the usable CPU count; requires transport "
            "'direct' for N > 1; output is byte-identical for any N; "
            "default: the spec's sharding block, i.e. serial)"
        ),
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help=(
            "enable the vectorized fleet actor for a --scenario run "
            "(array-backed steady-state devices; requires transport "
            "'direct'; output is byte-identical to the scalar path)"
        ),
    )
    parser.add_argument(
        "--obs-dir",
        metavar="DIR",
        help=(
            "capture observability artifacts (spans.jsonl, metrics.prom, "
            "metrics.jsonl, profile.json, manifest.json) into DIR"
        ),
    )
    return parser


def run_scenario_file(
    path: str,
    until: float,
    obs_dir: str | None = None,
    shards: int | str | None = None,
    vector: bool = False,
) -> dict:
    """Build the spec in ``path``, run it and return the snapshot.

    With ``obs_dir``, observability is force-enabled for the run (a
    spec's own ``obs`` block still wins) and the artifact directory is
    written there.  With ``shards`` (a count or ``"auto"``), the run
    goes through :func:`~repro.shard.runner.run_sharded` — the snapshot
    gains a ``sharding`` block but is otherwise the same world, merged
    back to the serial view.  With ``vector``, the vectorized fleet
    actor is force-enabled on top of the spec's own ``vector`` block.
    """
    import dataclasses

    from repro.runtime import ObsSpec, ScenarioSpec, build

    spec = ScenarioSpec.from_json(Path(path).read_text())
    if vector and not spec.vector.enabled:
        spec = dataclasses.replace(
            spec, vector=dataclasses.replace(spec.vector, enabled=True)
        )
    if shards is not None or spec.sharding.shards > 1:
        from repro.shard.runner import run_sharded

        return run_sharded(spec, until, shards, obs_dir=obs_dir).snapshot()
    if obs_dir is None:
        scenario = build(spec)
        scenario.run_until(until)
        return scenario.snapshot()
    from repro.obs import capture

    with capture(ObsSpec(enabled=True)) as session:
        scenario = build(spec)
        scenario.run_until(until)
        snapshot = scenario.snapshot()
    session.write(obs_dir)
    return snapshot


def _parse_count(value: str | None, flag: str) -> int | str | None:
    """``'auto'``/``'0'`` mean autodetect; otherwise a positive count."""
    if value is None or value == "auto":
        return value
    try:
        count = int(value)
    except ValueError:
        raise SystemExit(f"{flag} must be an integer or 'auto', got {value!r}")
    return "auto" if count == 0 else count


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.scenario:
        snapshot = run_scenario_file(
            args.scenario,
            args.until,
            obs_dir=args.obs_dir,
            shards=_parse_count(args.shards, "--shards"),
            vector=args.vector,
        )
        text = json.dumps(snapshot, indent=2, default=str)
        print(text)
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / "scenario_snapshot.json").write_text(text + "\n")
        return 0
    names = args.experiments or None
    workers = _parse_count(args.workers, "--workers")
    outputs = run_all(
        names,
        workers=None if workers == "auto" else workers,
        obs_dir=args.obs_dir,
    )
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name, text in outputs.items():
        print(f"=== {name} {'=' * max(0, 60 - len(name))}")
        print(text)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
