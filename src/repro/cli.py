"""Command-line entry point: ``repro-experiments``.

Regenerates the paper's figures/statistics as text, or runs a
spec-file-described scenario end to end:

.. code-block:: console

    $ repro-experiments --list
    $ repro-experiments fig5 fig6
    $ repro-experiments            # everything
    $ repro-experiments --scenario spec.json --until 30
    $ repro-experiments serve --scenario spec.json --port 8080
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS, run_all


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Real-Time Energy Monitoring in "
            "IoT-enabled Mobile Devices' (DATE 2020)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all). Available: {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write each experiment's output to DIR/<name>.txt",
    )
    parser.add_argument(
        "--scenario",
        metavar="SPEC_JSON",
        help=(
            "build the ScenarioSpec in this JSON file, run it and print the "
            "snapshot as JSON (ignores experiment names)"
        ),
    )
    parser.add_argument(
        "--until",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="simulated time to run a --scenario world to (default: 30)",
    )
    parser.add_argument(
        "--workers",
        default="1",
        metavar="N",
        help=(
            "run experiments across N worker processes (outputs are "
            "identical for any N; 'auto' or 0 detects the usable CPU "
            "count; default: 1)"
        ),
    )
    parser.add_argument(
        "--shards",
        default=None,
        metavar="N",
        help=(
            "run a --scenario world partitioned across N kernel shards "
            "('auto' detects the usable CPU count; requires transport "
            "'direct' for N > 1; output is byte-identical for any N; "
            "default: the spec's sharding block, i.e. serial)"
        ),
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help=(
            "enable the vectorized fleet actor for a --scenario run "
            "(array-backed steady-state devices; requires transport "
            "'direct'; output is byte-identical to the scalar path)"
        ),
    )
    parser.add_argument(
        "--obs-dir",
        metavar="DIR",
        help=(
            "capture observability artifacts (spans.jsonl, metrics.prom, "
            "metrics.jsonl, profile.json, manifest.json) into DIR"
        ),
    )
    return parser


def run_scenario_file(
    path: str,
    until: float,
    obs_dir: str | None = None,
    shards: int | str | None = None,
    vector: bool = False,
) -> dict:
    """Build the spec in ``path``, run it and return the snapshot.

    With ``obs_dir``, observability is force-enabled for the run (a
    spec's own ``obs`` block still wins) and the artifact directory is
    written there.  With ``shards`` (a count or ``"auto"``), the run
    goes through :func:`~repro.shard.runner.run_sharded` — the snapshot
    gains a ``sharding`` block but is otherwise the same world, merged
    back to the serial view.  With ``vector``, the vectorized fleet
    actor is force-enabled on top of the spec's own ``vector`` block.
    """
    import dataclasses

    from repro.runtime import ObsSpec, ScenarioSpec, build

    spec = ScenarioSpec.from_json(Path(path).read_text())
    if vector and not spec.vector.enabled:
        spec = dataclasses.replace(
            spec, vector=dataclasses.replace(spec.vector, enabled=True)
        )
    if shards is not None or spec.sharding.shards > 1:
        from repro.shard.runner import run_sharded

        return run_sharded(spec, until, shards, obs_dir=obs_dir).snapshot()
    if obs_dir is None:
        scenario = build(spec)
        scenario.run_until(until)
        return scenario.snapshot()
    from repro.obs import capture

    with capture(ObsSpec(enabled=True)) as session:
        scenario = build(spec)
        scenario.run_until(until)
        snapshot = scenario.snapshot()
    session.write(obs_dir)
    return snapshot


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``serve`` subcommand's parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description=(
            "Serve an aggregator over HTTP: membership, batched report "
            "ingestion, alert long-polling, ledger sync and metrics."
        ),
    )
    parser.add_argument(
        "--scenario",
        metavar="SPEC_JSON",
        help=(
            "ScenarioSpec JSON file to serve (default: the paper testbed "
            "with no simulated device entries)"
        ),
    )
    parser.add_argument(
        "--host", default=None, metavar="ADDR",
        help="bind address (default: the spec's serve block, 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="bind port; 0 picks an ephemeral one (default: the spec's)",
    )
    parser.add_argument(
        "--network", default=None, metavar="NAME",
        help="aggregator network to serve (default: the spec's first)",
    )
    parser.add_argument(
        "--for", dest="duration", type=float, default=None, metavar="SECONDS",
        help="serve for this many wall seconds then exit (default: forever)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    return parser


def run_serve(argv: list[str]) -> int:
    """``serve`` subcommand: host a world over HTTP until interrupted."""
    import time

    from repro.runtime import ScenarioSpec
    from repro.serve import AggregatorService, ServeRunner

    args = build_serve_parser().parse_args(argv)
    if args.scenario:
        spec = ScenarioSpec.from_json(Path(args.scenario).read_text())
    else:
        from repro.workloads.scenarios import paper_testbed_spec

        spec = paper_testbed_spec(enter_devices=False)
    service = AggregatorService(spec, network=args.network)
    host = args.host if args.host is not None else spec.serve.host
    port = args.port if args.port is not None else spec.serve.port
    runner = ServeRunner(service, host=host, port=port, verbose=args.verbose)
    runner.start()
    bound_host, bound_port = runner.address
    print(f"serving {service.healthz()['network']} on http://{bound_host}:{bound_port}")
    sys.stdout.flush()
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        runner.stop()
    print("serve: clean shutdown")
    return 0


def _parse_count(value: str | None, flag: str) -> int | str | None:
    """``'auto'``/``'0'`` mean autodetect; otherwise a positive count."""
    if value is None or value == "auto":
        return value
    try:
        count = int(value)
    except ValueError:
        raise SystemExit(f"{flag} must be an integer or 'auto', got {value!r}")
    return "auto" if count == 0 else count


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.scenario:
        snapshot = run_scenario_file(
            args.scenario,
            args.until,
            obs_dir=args.obs_dir,
            shards=_parse_count(args.shards, "--shards"),
            vector=args.vector,
        )
        text = json.dumps(snapshot, indent=2, default=str)
        print(text)
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / "scenario_snapshot.json").write_text(text + "\n")
        return 0
    names = args.experiments or None
    workers = _parse_count(args.workers, "--workers")
    outputs = run_all(
        names,
        workers=None if workers == "auto" else workers,
        obs_dir=args.obs_dir,
    )
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name, text in outputs.items():
        print(f"=== {name} {'=' * max(0, 60 - len(name))}")
        print(text)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
