"""Command-line entry point: ``repro-experiments``.

Regenerates the paper's figures/statistics as text:

.. code-block:: console

    $ repro-experiments --list
    $ repro-experiments fig5 fig6
    $ repro-experiments            # everything
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS, run_all


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Real-Time Energy Monitoring in "
            "IoT-enabled Mobile Devices' (DATE 2020)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiments to run (default: all). Available: {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write each experiment's output to DIR/<name>.txt",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.experiments or None
    outputs = run_all(names)
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name, text in outputs.items():
        print(f"=== {name} {'=' * max(0, 60 - len(name))}")
        print(text)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
