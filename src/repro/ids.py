"""Identifiers used across the system.

The paper's protocol (Fig. 3) exchanges a device *ID* and network
*addresses* (the "Master address" of the home aggregator and a temporary
address in a host network).  We give both their own value types so that a
device ID can never be passed where an address is expected.

Identifiers are deterministic: they are derived from human-readable names
chosen by scenario builders, never from random UUIDs, so repeated
simulation runs produce identical ledgers.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import AddressError

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@lru_cache(maxsize=None)
def _uid_digest(kind: str, name: str) -> str:
    """Stable 16-hex-digit hash of ``kind:name`` (cached — the protocol
    hot path reads uids once per message)."""
    return hashlib.sha256(f"{kind}:{name}".encode()).hexdigest()[:16]


def _validate_name(name: str, kind: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise AddressError(
            f"{kind} name must be a non-empty alphanumeric/._- string, got {name!r}"
        )
    return name


@dataclass(frozen=True, order=True)
class DeviceId:
    """Globally unique identifier of a metered device.

    ``name`` is the scenario-level label (e.g. ``"escooter-1"``); ``uid``
    is a short stable hash used inside protocol messages and ledger
    entries.
    """

    name: str

    def __post_init__(self) -> None:
        _validate_name(self.name, "device")
        # Same value the generated dataclass __hash__ would produce,
        # computed once: device ids key half a dozen registry/series
        # dicts per report, and rebuilding the field tuple on every
        # lookup showed in fleet profiles.
        object.__setattr__(self, "_hash", hash((self.name,)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def uid(self) -> str:
        """Stable 16-hex-digit identifier derived from the name."""
        return _uid_digest("device", self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class AggregatorId:
    """Identifier of an aggregator unit (one per WAN / grid-location)."""

    name: str

    def __post_init__(self) -> None:
        _validate_name(self.name, "aggregator")

    @property
    def uid(self) -> str:
        """Stable 16-hex-digit identifier derived from the name."""
        return _uid_digest("aggregator", self.name)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class NetworkAddress:
    """A routable address inside the communication network.

    The aggregator hands devices a network address during membership
    registration ("Master address" in Fig. 3).  Addresses are scoped by
    the owning aggregator so two WANs can reuse host numbers without
    collision.
    """

    aggregator: AggregatorId
    host: int

    def __post_init__(self) -> None:
        if not isinstance(self.host, int) or self.host < 0 or self.host > 0xFFFF:
            raise AddressError(f"host must be an int in [0, 65535], got {self.host!r}")

    def __str__(self) -> str:
        return f"{self.aggregator.name}/{self.host}"


@lru_cache(maxsize=None)
def interned_device_id(name: str) -> DeviceId:
    """A shared :class:`DeviceId` for ``name``.

    Identifiers are immutable value types, so the wire-decode hot path
    reuses one instance per name instead of re-validating and
    re-allocating on every message.
    """
    return DeviceId(name)


@lru_cache(maxsize=None)
def parse_address(text: str) -> NetworkAddress:
    """Parse the ``"aggregator/host"`` string form of an address.

    Cached: addresses are immutable and the report path parses the same
    master/temporary strings on every message.
    """
    parts = text.split("/")
    if len(parts) != 2:
        raise AddressError(f"malformed address {text!r}, expected 'aggregator/host'")
    name, host_text = parts
    try:
        host = int(host_text)
    except ValueError as exc:
        raise AddressError(f"malformed host in address {text!r}") from exc
    return NetworkAddress(AggregatorId(name), host)
