"""Tampering attack models.

Each attack wraps a device's *reported* current stream — the physical
consumption is untouched (that is the point of metering fraud: consume
the same, report less).  The A6 experiment runs these against the
detector suite; §IV names identifying such a device as future work, so
the reproduction measures *detection*, not attribution.
"""

from __future__ import annotations

from repro.errors import AnomalyError


class TamperAttack:
    """Base: identity transformation of the reported value."""

    name = "none"

    def apply(self, reported_ma: float) -> float:
        """Return the manipulated report for one true reading."""
        return reported_ma


class ScalingAttack(TamperAttack):
    """Under-report by a constant factor (classic meter fraud)."""

    name = "scaling"

    def __init__(self, factor: float = 0.5) -> None:
        if not 0.0 <= factor <= 1.0:
            raise AnomalyError(f"scaling factor must be in [0, 1], got {factor}")
        self._factor = factor

    def apply(self, reported_ma: float) -> float:
        return reported_ma * self._factor


class OffsetAttack(TamperAttack):
    """Subtract a constant from every report (clamped at zero)."""

    name = "offset"

    def __init__(self, offset_ma: float = 20.0) -> None:
        if offset_ma < 0:
            raise AnomalyError(f"offset must be >= 0, got {offset_ma}")
        self._offset_ma = offset_ma

    def apply(self, reported_ma: float) -> float:
        return max(0.0, reported_ma - self._offset_ma)


class ReplayAttack(TamperAttack):
    """Freeze reporting at a captured value.

    After ``capture_after`` honest reports, replays the value seen at
    capture time forever — the constant pattern an entropy detector is
    built for.
    """

    name = "replay"

    def __init__(self, capture_after: int = 10) -> None:
        if capture_after < 1:
            raise AnomalyError(f"capture_after must be >= 1, got {capture_after}")
        self._capture_after = capture_after
        self._seen = 0
        self._captured: float | None = None

    def apply(self, reported_ma: float) -> float:
        self._seen += 1
        if self._captured is None:
            if self._seen >= self._capture_after:
                self._captured = reported_ma
            return reported_ma
        return self._captured


class DropAttack(TamperAttack):
    """Report zero every ``period``-th window (intermittent suppression)."""

    name = "drop"

    def __init__(self, period: int = 3) -> None:
        if period < 2:
            raise AnomalyError(f"period must be >= 2, got {period}")
        self._period = period
        self._count = 0

    def apply(self, reported_ma: float) -> float:
        self._count += 1
        if self._count % self._period == 0:
            return 0.0
        return reported_ma
