"""Anomalous-device attribution — the paper's open "ground truth problem".

§IV: "We also plan to address the ground truth problem to identify an
anomalous device that reports data different from its actual
consumption."  This module implements that plan.

Idea: model each device ``i`` as reporting ``r_i = true_i / alpha_i``
for an unknown per-device scale ``alpha_i`` (honest devices have
``alpha_i = 1``; a meter-fraud device under-reports with
``alpha_i > 1``).  The feeder measurement of window ``t`` satisfies

    feeder_t ≈ (1 + loss) * sum_i alpha_i * r_{i,t} + c

with ``c`` absorbing constant leakage and meter offset.  Stacking many
windows gives an ordinary least-squares problem in ``(alpha_1..n, c)``;
devices whose load patterns are linearly independent (different duty
periods, different usage) make it well conditioned.  The estimate both
*identifies* the fraudulent device and *recovers* its true consumption
(``alpha_i * r_i``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnomalyError


@dataclass(frozen=True)
class AttributionResult:
    """Outcome of a least-squares attribution.

    Attributes:
        alphas: Estimated report scale per device (1.0 = honest).
        intercept: Estimated constant term (leakage + meter offset), mA.
        residual_rms_ma: Fit quality; large values mean the linear
            model does not explain the feeder (e.g. an unmetered load).
        windows_used: Sample count behind the estimate.
        suspicion_threshold: |alpha - 1| beyond which a device is
            flagged.
    """

    alphas: dict[str, float]
    intercept_ma: float
    residual_rms_ma: float
    windows_used: int
    suspicion_threshold: float

    @property
    def suspects(self) -> list[str]:
        """Devices whose scale deviates beyond the threshold, worst first."""
        flagged = [
            (abs(alpha - 1.0), name)
            for name, alpha in self.alphas.items()
            if abs(alpha - 1.0) > self.suspicion_threshold
        ]
        return [name for _, name in sorted(flagged, reverse=True)]

    def recovered_true_ma(self, device: str, reported_ma: float) -> float:
        """Estimate of the device's actual draw given one report."""
        if device not in self.alphas:
            raise AnomalyError(f"no alpha estimated for {device!r}")
        return self.alphas[device] * reported_ma


class DeviceAttributor:
    """Accumulates (per-device reports, feeder) windows and fits alphas.

    Args:
        expected_loss_fraction: Known multiplicative wiring-loss bias.
        min_windows: Minimum samples before :meth:`estimate` will run.
        suspicion_threshold: |alpha - 1| that flags a device.
        max_windows: Bounded history (oldest windows dropped).
    """

    def __init__(
        self,
        expected_loss_fraction: float = 0.04,
        min_windows: int = 50,
        suspicion_threshold: float = 0.15,
        max_windows: int = 5000,
    ) -> None:
        if expected_loss_fraction < 0:
            raise AnomalyError(
                f"expected loss must be >= 0, got {expected_loss_fraction}"
            )
        if min_windows < 3:
            raise AnomalyError(f"min_windows must be >= 3, got {min_windows}")
        if suspicion_threshold <= 0:
            raise AnomalyError(
                f"suspicion threshold must be positive, got {suspicion_threshold}"
            )
        if max_windows < min_windows:
            raise AnomalyError("max_windows must be >= min_windows")
        self._loss = expected_loss_fraction
        self._min_windows = min_windows
        self._threshold = suspicion_threshold
        self._max_windows = max_windows
        self._windows: list[tuple[dict[str, float], float]] = []

    @property
    def window_count(self) -> int:
        """Windows collected so far."""
        return len(self._windows)

    @property
    def ready(self) -> bool:
        """True once enough windows exist to estimate."""
        return len(self._windows) >= self._min_windows

    def add_window(self, reported_ma: dict[str, float], feeder_ma: float) -> None:
        """Record one complete window (all members reported + feeder)."""
        if not reported_ma:
            raise AnomalyError("window must contain at least one device report")
        if feeder_ma < 0:
            raise AnomalyError(f"feeder current must be >= 0, got {feeder_ma}")
        self._windows.append((dict(reported_ma), float(feeder_ma)))
        if len(self._windows) > self._max_windows:
            del self._windows[0]

    def estimate(self) -> AttributionResult:
        """Fit per-device alphas by ordinary least squares.

        Raises :class:`~repro.errors.AnomalyError` when there is too
        little data, or when the design matrix is too ill-conditioned to
        attribute (devices with identical load shapes cannot be told
        apart — attribution honestly refuses rather than guessing).
        """
        if not self.ready:
            raise AnomalyError(
                f"need >= {self._min_windows} windows, have {len(self._windows)}"
            )
        devices = sorted({name for reported, _ in self._windows for name in reported})
        rows = []
        targets = []
        for reported, feeder in self._windows:
            if set(reported) != set(devices):
                continue  # partial windows cannot enter the fit
            rows.append([(1.0 + self._loss) * reported[d] for d in devices] + [1.0])
            targets.append(feeder)
        if len(rows) < self._min_windows:
            raise AnomalyError(
                f"only {len(rows)} complete windows across all devices; "
                f"need {self._min_windows}"
            )
        design = np.asarray(rows)
        target = np.asarray(targets)
        # Guard against indistinguishable load shapes.
        condition = np.linalg.cond(design)
        if condition > 1e6:
            raise AnomalyError(
                f"design matrix condition {condition:.1e} too high: device load "
                "patterns are not distinguishable enough for attribution"
            )
        solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        fitted = design @ solution
        residual_rms = float(np.sqrt(np.mean((fitted - target) ** 2)))
        alphas = {device: float(solution[i]) for i, device in enumerate(devices)}
        return AttributionResult(
            alphas=alphas,
            intercept_ma=float(solution[-1]),
            residual_rms_ma=residual_rms,
            windows_used=len(rows),
            suspicion_threshold=self._threshold,
        )
