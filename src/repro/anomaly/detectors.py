"""Report anomaly detectors.

All detectors share one tiny interface: feed observations, ask for a
:class:`Detection` verdict.  The aggregator composes them into its
verification pipeline; the A6 experiment sweeps attacks across them.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass

from repro.errors import AnomalyError


@dataclass(frozen=True)
class Detection:
    """A detector verdict.

    Attributes:
        anomalous: The screened value is suspicious.
        score: Detector-specific magnitude (bigger = more suspicious).
        reason: Human-readable explanation for traces/logs.
    """

    anomalous: bool
    score: float = 0.0
    reason: str = ""


class RangeDetector:
    """Flat physical-plausibility screen.

    A device whose sensor can read at most ``max_ma`` cannot honestly
    report more; negative consumption is likewise impossible.
    """

    def __init__(self, max_ma: float = 400.0) -> None:
        if max_ma <= 0:
            raise AnomalyError(f"max current must be positive, got {max_ma}")
        self._max_ma = max_ma

    def screen(self, current_ma: float) -> Detection:
        """Verdict for one reported current."""
        if current_ma < 0:
            return Detection(True, abs(current_ma), "negative consumption")
        if current_ma > self._max_ma:
            return Detection(
                True, current_ma - self._max_ma, f"exceeds sensor range {self._max_ma} mA"
            )
        return Detection(False)


class GroundTruthResidualDetector:
    """The paper's complementary-measurement check (network level).

    Compares the sum of device reports in a window against the feeder
    meter's system-level measurement.  The residual has a *known
    positive bias* (ohmic losses make the feeder read higher — that is
    Fig. 5), so the detector takes an expected-loss fraction and flags
    only residuals outside tolerance around it.
    """

    def __init__(
        self,
        expected_loss_fraction: float = 0.05,
        tolerance_fraction: float = 0.08,
    ) -> None:
        if expected_loss_fraction < 0:
            raise AnomalyError(
                f"expected loss must be >= 0, got {expected_loss_fraction}"
            )
        if tolerance_fraction <= 0:
            raise AnomalyError(f"tolerance must be positive, got {tolerance_fraction}")
        self._expected_loss = expected_loss_fraction
        self._tolerance = tolerance_fraction

    def screen(self, reported_sum_ma: float, feeder_ma: float) -> Detection:
        """Verdict for one window's (device-sum, feeder) pair."""
        if feeder_ma <= 0:
            # An idle feeder with nonzero reports is itself anomalous.
            if reported_sum_ma > 0:
                return Detection(True, reported_sum_ma, "reports on a dead feeder")
            return Detection(False)
        expected = feeder_ma / (1.0 + self._expected_loss)
        residual = (reported_sum_ma - expected) / feeder_ma
        if abs(residual) > self._tolerance:
            direction = "under" if residual < 0 else "over"
            return Detection(
                True,
                abs(residual),
                f"device sum {direction}-reports feeder by {abs(residual):.1%}",
            )
        return Detection(False, abs(residual))


class RelativeVariationDetector:
    """History-based per-device screen (the [8]-style related work).

    Tracks a rolling window of a device's reports; a new report whose
    relative deviation from the rolling median exceeds the threshold is
    flagged.  Catches sudden scaling/offset manipulation of a device
    with an otherwise stable profile.
    """

    def __init__(self, window: int = 50, threshold: float = 0.5) -> None:
        if window < 2:
            raise AnomalyError(f"window must be >= 2, got {window}")
        if threshold <= 0:
            raise AnomalyError(f"threshold must be positive, got {threshold}")
        self._window: deque[float] = deque(maxlen=window)
        # The same values kept sorted, maintained incrementally with
        # bisect — screening runs per report, and a full sort of the
        # window per call dominated the verification pipeline.
        self._ordered: list[float] = []
        self._threshold = threshold

    def screen(self, current_ma: float) -> Detection:
        """Verdict for one report, then absorb it into the history."""
        verdict = Detection(False)
        window = self._window
        ordered = self._ordered
        if len(ordered) >= window.maxlen // 2:
            median = ordered[len(ordered) // 2]
            if median > 1e-9:
                deviation = abs(current_ma - median) / median
                if deviation > self._threshold:
                    verdict = Detection(
                        True, deviation, f"deviates {deviation:.1%} from rolling median"
                    )
        if len(window) == window.maxlen:
            # The deque is about to evict its oldest on append; mirror
            # that in the sorted view.
            del ordered[bisect_left(ordered, window[0])]
        window.append(current_ma)
        insort(ordered, current_ma)
        return verdict


class EntropyDetector:
    """Entropy screen over quantised report history.

    Genuine consumption has structured variation; a tampering device
    replaying a constant (or a short repeated pattern) collapses the
    empirical entropy of its report stream.  Flags when the entropy of
    the recent window drops below ``min_entropy_bits``.
    """

    def __init__(
        self,
        window: int = 100,
        bins: int = 16,
        min_entropy_bits: float = 0.5,
    ) -> None:
        if window < 10:
            raise AnomalyError(f"window must be >= 10, got {window}")
        if bins < 2:
            raise AnomalyError(f"bins must be >= 2, got {bins}")
        if min_entropy_bits < 0:
            raise AnomalyError(f"entropy floor must be >= 0, got {min_entropy_bits}")
        self._window: deque[float] = deque(maxlen=window)
        self._bins = bins
        self._min_entropy_bits = min_entropy_bits

    def entropy_bits(self) -> float:
        """Empirical entropy of the current window (bits)."""
        if len(self._window) < 2:
            return float("inf")
        lo, hi = min(self._window), max(self._window)
        if hi - lo < 1e-9:
            return 0.0
        counts = [0] * self._bins
        for value in self._window:
            index = min(self._bins - 1, int((value - lo) / (hi - lo) * self._bins))
            counts[index] += 1
        total = len(self._window)
        entropy = 0.0
        for count in counts:
            if count:
                p = count / total
                entropy -= p * math.log2(p)
        return entropy

    def screen(self, current_ma: float) -> Detection:
        """Verdict for one report, then absorb it into the history."""
        self._window.append(current_ma)
        if len(self._window) < self._window.maxlen:
            return Detection(False)
        entropy = self.entropy_bits()
        if entropy < self._min_entropy_bits:
            return Detection(
                True,
                self._min_entropy_bits - entropy,
                f"report entropy {entropy:.2f} bits below floor",
            )
        return Detection(False)
