"""Anomaly and tamper detection.

Two halves:

* :mod:`repro.anomaly.detectors` — the aggregator's report screens:
  the ground-truth residual check the paper describes ("an additional
  system-level complementary measurement (sum, average, etc.) ... to
  detect anomalies in the reported value"), plus the related-work
  baselines it cites: relative-variation-with-history [8-style] and an
  entropy detector.
* :mod:`repro.anomaly.tamper` — attack models that corrupt a device's
  reports (scaling, offset, replay, drop) so detection experiments have
  something to detect.
* :mod:`repro.anomaly.attribution` — the paper's §IV "ground truth
  problem": least-squares identification of *which* device is
  misreporting, from the same windows the residual check consumes.
"""

from repro.anomaly.attribution import AttributionResult, DeviceAttributor
from repro.anomaly.detectors import (
    Detection,
    EntropyDetector,
    GroundTruthResidualDetector,
    RangeDetector,
    RelativeVariationDetector,
)
from repro.anomaly.tamper import (
    DropAttack,
    OffsetAttack,
    ReplayAttack,
    ScalingAttack,
    TamperAttack,
)

__all__ = [
    "AttributionResult",
    "DeviceAttributor",
    "Detection",
    "EntropyDetector",
    "GroundTruthResidualDetector",
    "RangeDetector",
    "RelativeVariationDetector",
    "DropAttack",
    "OffsetAttack",
    "ReplayAttack",
    "ScalingAttack",
    "TamperAttack",
]
