"""Tamper detection over stored chains.

The claim under test (experiment E6): any post-hoc mutation of stored
consumption data is detectable.  The auditor re-derives every hash from
the stored bytes and reports the first height at which the chain breaks,
plus every individually inconsistent block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.hashing import GENESIS_HASH
from repro.chain.ledger import Blockchain
from repro.errors import BlockValidationError


@dataclass(frozen=True)
class AuditReport:
    """Outcome of a full-chain audit.

    Attributes:
        height: Chain length at audit time.
        clean: True when every check passed.
        broken_links: Heights whose previous-hash link does not match.
        invalid_blocks: Heights whose internal structure is inconsistent
            (Merkle root, record count, or stored hash).
        first_bad_height: Earliest problem, or None when clean.
    """

    height: int
    broken_links: tuple[int, ...] = field(default=())
    invalid_blocks: tuple[int, ...] = field(default=())

    @property
    def clean(self) -> bool:
        """True when no problem was found."""
        return not self.broken_links and not self.invalid_blocks

    @property
    def first_bad_height(self) -> int | None:
        """Earliest height with any problem, or None."""
        candidates = list(self.broken_links) + list(self.invalid_blocks)
        if not candidates:
            return None
        return min(candidates)


def audit_chain(chain: Blockchain) -> AuditReport:
    """Re-verify every block and link of ``chain``.

    Unlike :meth:`Blockchain.validate`, which raises at the first
    problem, the audit walks the whole chain and reports everything it
    finds — an auditor wants the full damage picture, not the first
    symptom.

    Over a pruned prefix only the retained headers can be checked (hash
    linkage; the bodies are gone and the committed checkpoints vouch for
    them); retained blocks get the full structural re-derivation.
    """
    broken_links: list[int] = []
    invalid_blocks: list[int] = []
    previous_hash = GENESIS_HASH
    pruned_below = getattr(chain, "pruned_below", 0)
    for height in range(pruned_below):
        held = chain.header_at(height)
        if held.header.previous_hash != previous_hash or held.header.height != height:
            broken_links.append(height)
        previous_hash = held.block_hash
    for height in range(pruned_below, chain.height):
        block = chain.get(height)
        try:
            block.validate_structure()
        except BlockValidationError:
            invalid_blocks.append(height)
        if block.header.previous_hash != previous_hash or block.header.height != height:
            broken_links.append(height)
        previous_hash = block.block_hash
    return AuditReport(
        height=chain.height,
        broken_links=tuple(broken_links),
        invalid_blocks=tuple(invalid_blocks),
    )
