"""PBFT-lite: two-phase Byzantine-tolerant consensus over the mesh.

The PoA extension (:mod:`repro.chain.consensus_net`) assumes a correct
proposer: one vote round suffices.  A *Byzantine* proposer, however,
can equivocate — send different blocks to different validators — and a
single-phase protocol would let two groups commit different histories.
This module implements the classic two-phase answer (after Castro &
Liskov's PBFT, happy path):

1. **Pre-prepare** — the view's primary broadcasts the proposed block.
2. **Prepare** — every replica that accepts the payload broadcasts a
   *digest-bound* prepare; a replica is *prepared* once ``2f+1``
   matching prepares (its own included) exist for one digest.
3. **Commit** — prepared replicas broadcast commits; a replica
   *executes* (appends to its local ledger replica) at ``2f+1``
   matching commits.

With ``n = 3f+1`` replicas, at most ``f`` Byzantine, two conflicting
digests can never both gather ``2f+1`` prepares, so replicas' ledgers
cannot diverge — the property the tests assert directly by comparing
per-replica chain tips.  View changes (primary failover) are out of
scope: the committee here is crash-stop once past proposal, and the
paper's setting has no liveness adversary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.chain.hashing import hash_value
from repro.chain.ledger import Blockchain
from repro.errors import ConsensusError
from repro.ids import AggregatorId
from repro.net.backhaul import BackhaulMesh
from repro.sim.kernel import Simulator
from repro.sim.process import Process

RecordCheck = Callable[[list[dict[str, Any]]], bool]


@dataclass(frozen=True)
class PrePrepare:
    """Phase 1: the primary's proposal for (view, seq)."""

    view: int
    seq: int
    digest: str
    records: tuple[dict[str, Any], ...]
    primary: AggregatorId


@dataclass(frozen=True)
class Prepare:
    """Phase 2: a replica vouches for one digest at (view, seq)."""

    view: int
    seq: int
    digest: str
    replica: AggregatorId


@dataclass(frozen=True)
class Commit:
    """Phase 3: a prepared replica is ready to execute the digest."""

    view: int
    seq: int
    digest: str
    replica: AggregatorId


@dataclass
class _SlotState:
    accepted_digest: str | None = None
    records: tuple[dict[str, Any], ...] = ()
    prepares: dict[str, set[AggregatorId]] = field(default_factory=dict)
    commits: dict[str, set[AggregatorId]] = field(default_factory=dict)
    prepared: bool = False
    executed: bool = False
    equivocation_seen: bool = False


class PbftReplica(Process):
    """One replica: local ledger copy plus the three-phase state machine.

    Args:
        simulator: The kernel.
        node_id: Mesh identity.
        mesh: The committee's network.
        check: Payload acceptance predicate.
        processing_delay_s: Local work per phase step.
    """

    def __init__(
        self,
        simulator: Simulator,
        node_id: AggregatorId,
        mesh: BackhaulMesh,
        check: RecordCheck | None = None,
        processing_delay_s: float = 0.002,
    ) -> None:
        super().__init__(simulator, f"pbft:{node_id.name}")
        if processing_delay_s < 0:
            raise ConsensusError(
                f"processing delay must be >= 0, got {processing_delay_s}"
            )
        self._node_id = node_id
        self._mesh = mesh
        self._check = check or (lambda records: True)
        self._delay = processing_delay_s
        self.chain = Blockchain()  # this replica's ledger copy
        self._slots: dict[tuple[int, int], _SlotState] = {}
        self._quorum = 1  # set by the cluster once n is known
        self._executed_count = 0
        self._equivocations_detected = 0
        mesh.add_aggregator(node_id, self._on_message)

    @property
    def node_id(self) -> AggregatorId:
        """Mesh identity."""
        return self._node_id

    @property
    def mesh(self) -> BackhaulMesh:
        """The committee's network."""
        return self._mesh

    @property
    def executed_count(self) -> int:
        """Blocks this replica has executed."""
        return self._executed_count

    @property
    def equivocations_detected(self) -> int:
        """Conflicting pre-prepares observed for one (view, seq)."""
        return self._equivocations_detected

    def set_quorum(self, quorum: int) -> None:
        """Install the 2f+1 threshold (done by the cluster)."""
        if quorum < 1:
            raise ConsensusError(f"quorum must be >= 1, got {quorum}")
        self._quorum = quorum

    def _slot(self, view: int, seq: int) -> _SlotState:
        return self._slots.setdefault((view, seq), _SlotState())

    def _broadcast(self, payload: Any) -> None:
        self._mesh.broadcast(self._node_id, payload)

    # -- message handling ---------------------------------------------------

    def _on_message(self, source: AggregatorId, payload: Any) -> None:
        if isinstance(payload, PrePrepare):
            self.sim.call_later(
                self._delay, lambda: self._on_preprepare(payload),
                label=f"{self.name}:preprepare",
            )
        elif isinstance(payload, Prepare):
            self._on_prepare(payload)
        elif isinstance(payload, Commit):
            self._on_commit(payload)
        else:
            raise ConsensusError(f"unexpected PBFT payload {type(payload).__name__}")

    def _on_preprepare(self, message: PrePrepare) -> None:
        slot = self._slot(message.view, message.seq)
        if slot.accepted_digest is not None:
            if slot.accepted_digest != message.digest:
                # The primary equivocated: same slot, different payloads.
                slot.equivocation_seen = True
                self._equivocations_detected += 1
                self.trace("pbft.equivocation", view=message.view, seq=message.seq)
            return
        if hash_value(list(message.records)) != message.digest:
            self.trace("pbft.bad_digest", view=message.view, seq=message.seq)
            return
        if not self._check(list(message.records)):
            self.trace("pbft.payload_rejected", view=message.view, seq=message.seq)
            return
        slot.accepted_digest = message.digest
        slot.records = message.records
        prepare = Prepare(message.view, message.seq, message.digest, self._node_id)
        self._register_prepare(prepare)
        self._broadcast(prepare)

    def _on_prepare(self, message: Prepare) -> None:
        self._register_prepare(message)

    def _register_prepare(self, message: Prepare) -> None:
        slot = self._slot(message.view, message.seq)
        slot.prepares.setdefault(message.digest, set()).add(message.replica)
        if (
            not slot.prepared
            and slot.accepted_digest == message.digest
            and len(slot.prepares[message.digest]) >= self._quorum
        ):
            slot.prepared = True
            commit = Commit(message.view, message.seq, message.digest, self._node_id)
            self._register_commit(commit)
            self._broadcast(commit)

    def _on_commit(self, message: Commit) -> None:
        self._register_commit(message)

    def _register_commit(self, message: Commit) -> None:
        slot = self._slot(message.view, message.seq)
        slot.commits.setdefault(message.digest, set()).add(message.replica)
        if (
            slot.prepared
            and not slot.executed
            and slot.accepted_digest == message.digest
            and len(slot.commits[message.digest]) >= self._quorum
        ):
            slot.executed = True
            self._executed_count += 1
            self.chain.append(
                f"view{message.view}", float(message.seq), list(slot.records)
            )
            self.trace("pbft.executed", view=message.view, seq=message.seq)


class PbftCluster:
    """Committee wiring and the client-side propose API.

    Args:
        replicas: The committee; ``n = 3f+1`` gives tolerance ``f``.
    """

    def __init__(self, replicas: list[PbftReplica]) -> None:
        if len(replicas) < 4:
            raise ConsensusError(
                f"PBFT needs >= 4 replicas (n=3f+1, f>=1), got {len(replicas)}"
            )
        names = [r.node_id for r in replicas]
        if len(set(names)) != len(names):
            raise ConsensusError("duplicate replica identities")
        self._replicas = list(replicas)
        self._seq = 0
        self._view = 0
        for replica in replicas:
            replica.set_quorum(self.quorum)

    @property
    def f(self) -> int:
        """Byzantine replicas tolerated."""
        return (len(self._replicas) - 1) // 3

    @property
    def quorum(self) -> int:
        """The 2f+1 threshold."""
        return 2 * self.f + 1

    @property
    def replicas(self) -> list[PbftReplica]:
        """The committee."""
        return list(self._replicas)

    def primary(self) -> PbftReplica:
        """The current view's primary."""
        return self._replicas[self._view % len(self._replicas)]

    def propose(self, records: list[dict[str, Any]]) -> int:
        """Honest proposal: the primary pre-prepares one payload."""
        seq = self._seq
        self._seq += 1
        primary = self.primary()
        message = PrePrepare(
            view=self._view,
            seq=seq,
            digest=hash_value(records),
            records=tuple(records),
            primary=primary.node_id,
        )
        primary._on_preprepare(message)  # the primary processes its own
        primary.mesh.broadcast(primary.node_id, message)
        return seq

    def propose_equivocating(
        self,
        records_a: list[dict[str, Any]],
        records_b: list[dict[str, Any]],
    ) -> int:
        """Byzantine proposal: different payloads to the two halves.

        Used by tests/benches to demonstrate that no replica executes —
        neither digest can reach a 2f+1 prepare quorum.
        """
        seq = self._seq
        self._seq += 1
        primary = self.primary()
        halves = (records_a, records_b)
        others = [r for r in self._replicas if r.node_id != primary.node_id]
        for index, replica in enumerate(others):
            payload = halves[index % 2]
            message = PrePrepare(
                view=self._view,
                seq=seq,
                digest=hash_value(payload),
                records=tuple(payload),
                primary=primary.node_id,
            )
            primary.mesh.send(primary.node_id, replica.node_id, message)
        return seq

    def converged_tip(self) -> str | None:
        """The common chain tip, or None if replicas diverge."""
        tips = {replica.chain.tip_hash for replica in self._replicas}
        if len(tips) == 1:
            return next(iter(tips))
        return None
