"""Proof-of-authority consensus — the paper's future-work extension.

"In a truly decentralized network, the aggregators' role could be
performed by the devices themselves having a consensus among themselves.
In that case, the consumption data must be broadcast to the network and a
common blockchain is formed once a consensus is achieved" (§II-A), and
§IV plans "addition of consensus among devices".

We implement a round-based proof-of-authority vote: a known validator
set, a rotating proposer, and a block commits when more than two thirds
of validators vote for it.  Each validator independently re-checks the
proposed records against its own observation predicate, so a
misbehaving proposer cannot commit fabricated data.  The A5 ablation
compares its message/latency cost against the trusted-aggregator chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.chain.hashing import hash_value
from repro.chain.ledger import Blockchain
from repro.errors import ConsensusError

# Predicate a validator applies to a proposed record batch.
RecordCheck = Callable[[list[dict[str, Any]]], bool]


@dataclass(frozen=True)
class Vote:
    """One validator's vote on a proposal."""

    validator: str
    proposal_hash: str
    accept: bool


class Validator:
    """A consensus participant with its own acceptance predicate.

    Args:
        name: Validator identity (must be in the authority set).
        check: Predicate over the proposed record batch; defaults to
            accepting everything (an honest follower with no independent
            observation).
    """

    def __init__(self, name: str, check: RecordCheck | None = None) -> None:
        self._name = name
        self._check = check or (lambda records: True)

    @property
    def name(self) -> str:
        """Validator identity."""
        return self._name

    def vote(self, proposal_hash: str, records: list[dict[str, Any]]) -> Vote:
        """Evaluate a proposal and emit a vote."""
        return Vote(self._name, proposal_hash, bool(self._check(records)))


class PoaConsensus:
    """Round-robin proof-of-authority block agreement.

    Args:
        validators: The fixed authority set (order defines proposer
            rotation).
        chain: The shared chain committed blocks are appended to.
        quorum_ratio: Fraction of accept votes (strictly greater than)
            required to commit; default 2/3.
    """

    def __init__(
        self,
        validators: list[Validator],
        chain: Blockchain,
        quorum_ratio: float = 2.0 / 3.0,
    ) -> None:
        if not validators:
            raise ConsensusError("validator set must be non-empty")
        names = [v.name for v in validators]
        if len(set(names)) != len(names):
            raise ConsensusError(f"duplicate validator names in {names}")
        if not 0.0 < quorum_ratio < 1.0:
            raise ConsensusError(f"quorum ratio must be in (0, 1), got {quorum_ratio}")
        self._validators = list(validators)
        self._chain = chain
        self._quorum_ratio = quorum_ratio
        self._round = 0
        self._messages_exchanged = 0

    @property
    def round(self) -> int:
        """Number of rounds attempted (committed or rejected)."""
        return self._round

    @property
    def messages_exchanged(self) -> int:
        """Protocol messages across all rounds (proposal fan-out + votes)."""
        return self._messages_exchanged

    def proposer_for_round(self, round_index: int) -> Validator:
        """Round-robin proposer selection."""
        return self._validators[round_index % len(self._validators)]

    def propose(
        self,
        timestamp: float,
        records: list[dict[str, Any]],
    ) -> tuple[bool, list[Vote]]:
        """Run one round: proposal broadcast, voting, commit-or-reject.

        Returns ``(committed, votes)``.  On commit the block is appended
        to the shared chain attributed to the proposer.
        """
        proposer = self.proposer_for_round(self._round)
        self._round += 1
        proposal_hash = hash_value({"timestamp": timestamp, "records": records})
        # Proposal broadcast: one message to every other validator.
        self._messages_exchanged += len(self._validators) - 1
        votes = [v.vote(proposal_hash, records) for v in self._validators]
        # Vote broadcast: every validator tells every other its vote.
        self._messages_exchanged += len(self._validators) * (len(self._validators) - 1)
        accepts = sum(1 for v in votes if v.accept)
        committed = accepts > self._quorum_ratio * len(self._validators)
        if committed:
            self._chain.append(proposer.name, timestamp, records)
        return committed, votes
