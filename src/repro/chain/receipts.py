"""Inclusion receipts: O(log n) proofs that a record is in the ledger.

A device (or its owner, disputing a bill) should not have to trust the
aggregator's word that a consumption record was stored: the block's
Merkle root commits to every record, so the aggregator can issue a
*receipt* — the record, its inclusion proof, and the block coordinates —
that anyone holding the block headers can verify offline.

Receipts carry the block's ``leaf_count`` (its committed record count)
because with duplicate-last-leaf pairing a bare proof cannot tell a real
record from a forged duplicate of the last one (CVE-2012-2459); binding
the count into verification closes that hole.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chain.ledger import Blockchain
from repro.chain.merkle import MerkleTree
from repro.errors import ChainError, PrunedBlockError


@dataclass(frozen=True)
class InclusionReceipt:
    """Proof that one record is committed in one block.

    Attributes:
        block_height: Height of the containing block.
        block_hash: That block's hash (binds the receipt to the chain).
        merkle_root: The block's record commitment.
        leaf_count: Records committed in the block (the header's
            ``record_count``); bound into proof verification.
        record: The committed record itself.
        proof: Merkle inclusion path (side, sibling-hash pairs).
    """

    block_height: int
    block_hash: str
    merkle_root: str
    leaf_count: int
    record: dict[str, Any]
    proof: tuple[tuple[str, str], ...]

    def verify(self, chain: Blockchain | None = None) -> bool:
        """Check the receipt.

        Without ``chain``: verifies the Merkle proof against the
        receipt's own root and leaf count (enough when the verifier
        already trusts the header).  With ``chain``: additionally checks
        the coordinates against the live ledger, so a receipt
        referencing a forged or re-written block fails.  Blocks whose
        bodies were pruned are checked against the retained header.
        """
        if not MerkleTree.verify_proof(
            self.record, list(self.proof), self.merkle_root, leaf_count=self.leaf_count
        ):
            return False
        if chain is not None:
            if not 0 <= self.block_height < chain.height:
                return False
            try:
                # Retained blocks are checked against the *stored* bytes,
                # not the header cache: the cache is an acceleration
                # structure and must not mask a rewritten store.
                block = chain.get(self.block_height)
            except PrunedBlockError:
                header_at = getattr(chain, "header_at", None)
                if header_at is None:
                    return False
                held = header_at(self.block_height)
                if held.block_hash != self.block_hash:
                    return False
                if held.header.merkle_root != self.merkle_root:
                    return False
                if held.header.record_count != self.leaf_count:
                    return False
            else:
                if block.block_hash != self.block_hash:
                    return False
                if block.header.merkle_root != self.merkle_root:
                    return False
                if block.header.record_count != self.leaf_count:
                    return False
        return True


def receipt_to_dict(receipt: InclusionReceipt) -> dict[str, Any]:
    """JSON form for transport inside protocol messages."""
    return {
        "block_height": receipt.block_height,
        "block_hash": receipt.block_hash,
        "merkle_root": receipt.merkle_root,
        "leaf_count": receipt.leaf_count,
        "record": dict(receipt.record),
        "proof": [[side, sibling] for side, sibling in receipt.proof],
    }


def receipt_from_dict(data: dict[str, Any]) -> InclusionReceipt:
    """Rebuild a receipt from its transported form."""
    try:
        return InclusionReceipt(
            block_height=int(data["block_height"]),
            block_hash=str(data["block_hash"]),
            merkle_root=str(data["merkle_root"]),
            leaf_count=int(data["leaf_count"]),
            record=dict(data["record"]),
            proof=tuple((side, sibling) for side, sibling in data["proof"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ChainError(f"malformed receipt payload: {exc}") from exc


def issue_receipt(chain: Blockchain, block_height: int, record_index: int) -> InclusionReceipt:
    """Build the receipt for one record position."""
    try:
        block = chain.get(block_height)
    except PrunedBlockError as exc:
        raise ChainError(
            f"cannot issue a receipt for pruned block {block_height}: "
            "the record bodies are gone (existing receipts still verify "
            "against the retained headers)"
        ) from exc
    if not 0 <= record_index < len(block.records):
        raise ChainError(
            f"block {block_height} has no record index {record_index}"
        )
    tree = MerkleTree(list(block.records))
    return InclusionReceipt(
        block_height=block_height,
        block_hash=block.block_hash,
        merkle_root=block.header.merkle_root,
        leaf_count=len(block.records),
        record=dict(block.records[record_index]),
        proof=tuple(tree.proof(record_index)),
    )


def find_and_issue(
    chain: Blockchain, device_uid: str, sequence: int
) -> InclusionReceipt:
    """Locate a device's record by sequence and issue its receipt.

    Uses the chain's per-device index when available (O(records of one
    device) instead of O(chain)); falls back to a full scan for bare
    chain-likes.
    """
    locate = getattr(chain, "locate_record", None)
    if locate is not None:
        found = locate(device_uid, sequence)
        if found is None:
            raise ChainError(
                f"no record for device {device_uid} sequence {sequence} "
                "in the retained chain"
            )
        return issue_receipt(chain, *found)
    for height in range(chain.height):
        block = chain.get(height)
        for index, record in enumerate(block.records):
            if (
                record.get("device_uid") == device_uid
                and record.get("sequence") == sequence
            ):
                return issue_receipt(chain, height, index)
    raise ChainError(
        f"no record for device {device_uid} sequence {sequence} in the chain"
    )
