"""Blockchain substrate.

The paper encapsulates validated consumption data in a *permissioned
blockchain without consensus*: "the hash of a new block is created from
the reported data and the hash of the previous block... Blockchain is
only used as a hashed data chain without any consensus" (§II-A).

Components:

* :mod:`repro.chain.hashing` — canonical serialisation + SHA-256,
* :mod:`repro.chain.merkle` — Merkle tree over a block's records,
* :mod:`repro.chain.block` — block header/body structures,
* :mod:`repro.chain.ledger` — the append-only validated chain,
* :mod:`repro.chain.store` — block storage backends,
* :mod:`repro.chain.audit` — tamper detection over stored chains,
* :mod:`repro.chain.sync` — lightweight-client header sync and
  checkpoints (Danzi et al.),
* :mod:`repro.chain.consensus` — optional proof-of-authority rounds
  (the paper's future-work "consensus among devices").
"""

from repro.chain.audit import AuditReport, audit_chain
from repro.chain.block import Block, BlockHeader
from repro.chain.consensus import PoaConsensus, Validator, Vote
from repro.chain.consensus_net import NetworkedPoaConsensus, NetworkedValidator
from repro.chain.hashing import canonical_bytes, sha256_hex
from repro.chain.ledger import Blockchain
from repro.chain.merkle import MerkleTree, merkle_root
from repro.chain.pbft import PbftCluster, PbftReplica
from repro.chain.receipts import (
    InclusionReceipt,
    find_and_issue,
    issue_receipt,
    receipt_from_dict,
    receipt_to_dict,
)
from repro.chain.store import BlockStore, InMemoryBlockStore, JsonlBlockStore
from repro.chain.sync import (
    Checkpoint,
    HeaderChain,
    HeaderRecord,
    LedgerSyncClient,
    SyncPolicy,
    SyncStats,
)

__all__ = [
    "AuditReport",
    "audit_chain",
    "Block",
    "BlockHeader",
    "Checkpoint",
    "HeaderChain",
    "HeaderRecord",
    "LedgerSyncClient",
    "SyncPolicy",
    "SyncStats",
    "receipt_from_dict",
    "receipt_to_dict",
    "PoaConsensus",
    "Validator",
    "Vote",
    "NetworkedPoaConsensus",
    "NetworkedValidator",
    "PbftCluster",
    "PbftReplica",
    "InclusionReceipt",
    "find_and_issue",
    "issue_receipt",
    "canonical_bytes",
    "sha256_hex",
    "Blockchain",
    "MerkleTree",
    "merkle_root",
    "BlockStore",
    "InMemoryBlockStore",
    "JsonlBlockStore",
]
