"""Canonical serialisation and hashing.

Hash stability is the whole point of the ledger, so serialisation must be
canonical: dictionaries are emitted with sorted keys, floats with ``repr``
round-trip fidelity, and no whitespace variation.  Any Python structure
of dicts/lists/str/int/float/bool/None can be hashed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import ChainError

# One encoder instance for every canonicalisation: json.dumps would
# rebuild it per call when given non-default options, and block hashing
# runs on the report hot path.
_CANONICAL_ENCODER = json.JSONEncoder(
    sort_keys=True,
    separators=(",", ":"),
    allow_nan=False,
    ensure_ascii=True,
)


def canonical_bytes(value: Any) -> bytes:
    """Deterministic byte serialisation of a JSON-compatible value."""
    try:
        text = _CANONICAL_ENCODER.encode(value)
    except (TypeError, ValueError) as exc:
        raise ChainError(f"value is not canonically serialisable: {exc}") from exc
    return text.encode("utf-8")


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def hash_value(value: Any) -> str:
    """Hex-encoded SHA-256 of a JSON-compatible value."""
    return sha256_hex(canonical_bytes(value))


def chain_hash(previous_hash: str, payload: Any) -> str:
    """Hash linking a payload to its predecessor block.

    Mirrors the paper: "the hash of a new block is created from the
    reported data and the hash of the previous block".
    """
    if len(previous_hash) != 64:
        raise ChainError(f"previous hash must be 64 hex chars, got {previous_hash!r}")
    return sha256_hex(previous_hash.encode("ascii") + canonical_bytes(payload))


GENESIS_HASH = "0" * 64
