"""Lightweight-client ledger sync.

The Danzi et al. analyses (arXiv:1807.07422, arXiv:1711.00540) study
IoT devices that follow a blockchain without storing it: they hold only
*block headers*, synced from a gateway in configurable batches, and
verify Merkle inclusion proofs for the records they care about.  Batch
size is the central tradeoff knob — large batches amortise protocol
overhead (less traffic) but leave the device's view stale for longer
(more delay).

This module is transport-free.  The device stack wires
:class:`LedgerSyncClient` to the protocol messages
(``HeaderBatchRequest`` / ``HeaderBatchResponse``); everything here
works on plain header records and is directly testable.

A block's hash covers the record bodies, so a client that never sees the
records cannot recompute it.  Headers therefore travel *with* their
block hash (:class:`HeaderRecord`), and linkage is checked through
``header.previous_hash == previous.block_hash`` — forging a header for
height ``h`` requires breaking the hash link at ``h`` or everywhere
after it.

A :class:`Checkpoint` commits to a chain prefix so that (a) a fresh
client facing a long chain can anchor at the newest checkpoint instead
of syncing from genesis, and (b) the ledger can prune block bodies below
a checkpoint while receipts against the pruned region still verify
against the retained headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.chain.block import BlockHeader
from repro.chain.hashing import GENESIS_HASH
from repro.chain.merkle import MerkleTree
from repro.errors import ChainError, ConfigError


@dataclass(frozen=True)
class HeaderRecord:
    """One block as a lightweight client holds it: header plus hash."""

    header: BlockHeader
    block_hash: str

    def to_dict(self) -> dict[str, Any]:
        """JSON form for transport inside protocol messages."""
        return {"header": self.header.to_dict(), "block_hash": self.block_hash}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "HeaderRecord":
        """Rebuild a header record from its transported form."""
        try:
            return HeaderRecord(
                header=BlockHeader(**data["header"]),
                block_hash=str(data["block_hash"]),
            )
        except (KeyError, TypeError) as exc:
            raise ChainError(f"malformed header record: {exc}") from exc


@dataclass(frozen=True)
class Checkpoint:
    """A commitment to the chain prefix ``[0, height)``.

    Attributes:
        height: Number of blocks committed below (exclusive bound).
        tip_hash: Block hash of block ``height - 1`` — the link a header
            chain extends from when anchored here.
        record_count: Cumulative records committed below ``height``.
        timestamp: Creation time of block ``height - 1``.
    """

    height: int
    tip_hash: str
    record_count: int
    timestamp: float

    def __post_init__(self) -> None:
        if self.height < 1:
            raise ChainError(f"checkpoint height must be >= 1, got {self.height}")
        if self.record_count < 0:
            raise ChainError(
                f"checkpoint record count must be >= 0, got {self.record_count}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON form for transport inside protocol messages."""
        return {
            "height": self.height,
            "tip_hash": self.tip_hash,
            "record_count": self.record_count,
            "timestamp": self.timestamp,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Checkpoint":
        """Rebuild a checkpoint from its transported form."""
        try:
            return Checkpoint(
                height=int(data["height"]),
                tip_hash=str(data["tip_hash"]),
                record_count=int(data["record_count"]),
                timestamp=float(data["timestamp"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ChainError(f"malformed checkpoint payload: {exc}") from exc


class HeaderChain:
    """The header-only view of the ledger a lightweight client holds.

    The chain either starts at genesis or is *anchored* at a committed
    checkpoint; from there it only grows through :meth:`extend`, which
    enforces contiguous heights and unbroken hash links.
    """

    def __init__(self) -> None:
        self._records: list[HeaderRecord] = []
        self._base = 0
        self._anchor: Checkpoint | None = None

    @property
    def height(self) -> int:
        """Next height needed (headers held end just below this)."""
        return self._base + len(self._records)

    @property
    def base(self) -> int:
        """First height actually held (anchor height when anchored)."""
        return self._base

    @property
    def anchor(self) -> Checkpoint | None:
        """The checkpoint this chain was anchored at, if any."""
        return self._anchor

    @property
    def header_count(self) -> int:
        """Number of headers held in memory."""
        return len(self._records)

    @property
    def tip_hash(self) -> str:
        """Hash the next header must link to."""
        if self._records:
            return self._records[-1].block_hash
        if self._anchor is not None:
            return self._anchor.tip_hash
        return GENESIS_HASH

    def covers(self, height: int) -> bool:
        """Whether a header for ``height`` is held."""
        return self._base <= height < self.height

    def header_at(self, height: int) -> HeaderRecord:
        """The held header record for ``height``."""
        if not self.covers(height):
            raise ChainError(
                f"header chain does not cover height {height} "
                f"(holds [{self._base}, {self.height}))"
            )
        return self._records[height - self._base]

    def anchor_at(self, checkpoint: Checkpoint) -> None:
        """Adopt a committed checkpoint instead of syncing from genesis."""
        if self._records or self._anchor is not None:
            raise ChainError("can only anchor an empty header chain")
        self._anchor = checkpoint
        self._base = checkpoint.height

    def extend(self, batch: Iterable[HeaderRecord]) -> int:
        """Append verified headers; returns how many were applied.

        Headers already held are skipped (duplicate delivery is
        harmless); a gap or a broken ``previous_hash`` link raises
        :class:`~repro.errors.ChainError` and leaves the chain at the
        last good header.
        """
        applied = 0
        for record in batch:
            header = record.header
            if header.height < self.height:
                continue
            if header.height > self.height:
                raise ChainError(
                    f"header gap: expected height {self.height}, got {header.height}"
                )
            if header.previous_hash != self.tip_hash:
                raise ChainError(
                    f"header {header.height} does not link to the held tip"
                )
            self._records.append(record)
            applied += 1
        return applied

    def verify_receipt(self, receipt: Any) -> bool:
        """Fully verify an inclusion receipt offline.

        Checks the receipt's block coordinates against the held header
        (hash, Merkle root, record count) and then the Merkle proof with
        the header's ``record_count`` bound — no aggregator involved.
        """
        if not self.covers(receipt.block_height):
            return False
        held = self.header_at(receipt.block_height)
        if held.block_hash != receipt.block_hash:
            return False
        if held.header.merkle_root != receipt.merkle_root:
            return False
        if held.header.record_count != receipt.leaf_count:
            return False
        return MerkleTree.verify_proof(
            receipt.record,
            list(receipt.proof),
            held.header.merkle_root,
            leaf_count=held.header.record_count,
        )


@dataclass(frozen=True)
class SyncPolicy:
    """How a device paces its header sync.

    Attributes:
        batch_size: Headers requested per batch (the Danzi knob).
        interval_s: Poll period; ``None`` derives one batch's worth of
            block production, so bigger batches naturally poll less.
    """

    batch_size: int = 16
    interval_s: float | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(f"batch size must be >= 1, got {self.batch_size}")
        if self.interval_s is not None and self.interval_s <= 0:
            raise ConfigError(f"sync interval must be > 0, got {self.interval_s}")

    def effective_interval_s(self, block_interval_s: float = 1.0) -> float:
        """The poll period actually used."""
        if self.interval_s is not None:
            return self.interval_s
        return max(block_interval_s, block_interval_s * self.batch_size)


@dataclass
class SyncStats:
    """Traffic and staleness accounting for one sync client.

    ``delay`` samples measure, per applied header, how long after its
    block was created the device learned of it — the Danzi delay axis.
    """

    requests_sent: int = 0
    responses_received: int = 0
    headers_applied: int = 0
    batches_rejected: int = 0
    checkpoint_anchors: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    delay_sum_s: float = 0.0
    delay_max_s: float = 0.0
    delay_samples: int = 0

    @property
    def mean_delay_s(self) -> float:
        """Mean header-propagation delay over all samples."""
        if self.delay_samples == 0:
            return 0.0
        return self.delay_sum_s / self.delay_samples

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible summary."""
        return {
            "requests_sent": self.requests_sent,
            "responses_received": self.responses_received,
            "headers_applied": self.headers_applied,
            "batches_rejected": self.batches_rejected,
            "checkpoint_anchors": self.checkpoint_anchors,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "mean_delay_s": self.mean_delay_s,
            "max_delay_s": self.delay_max_s,
        }


@dataclass
class LedgerSyncClient:
    """Transport-free sync driver: a header chain plus its accounting.

    The device stack asks :meth:`next_request` what to fetch, ships the
    request over whatever transport it has, and feeds the response back
    through :meth:`apply_response`.
    """

    policy: SyncPolicy
    chain: HeaderChain = field(default_factory=HeaderChain)
    stats: SyncStats = field(default_factory=SyncStats)

    def next_request(self) -> tuple[int, int]:
        """(from_height, max_count) for the next header request."""
        return (self.chain.height, self.policy.batch_size)

    def apply_response(
        self,
        headers: Iterable[HeaderRecord],
        tip_height: int,
        checkpoint: Checkpoint | None,
        now: float,
    ) -> bool:
        """Absorb one header batch; returns True while still behind tip.

        A fresh client (no headers yet) anchors at the offered
        checkpoint.  A batch that fails linkage verification is counted
        in ``batches_rejected`` and otherwise ignored.
        """
        self.stats.responses_received += 1
        if (
            checkpoint is not None
            and self.chain.height == 0
            and self.chain.anchor is None
        ):
            self.chain.anchor_at(checkpoint)
            self.stats.checkpoint_anchors += 1
        applied_from = self.chain.height
        try:
            applied = self.chain.extend(headers)
        except ChainError:
            self.stats.batches_rejected += 1
            return False
        if applied:
            self.stats.headers_applied += applied
            for height in range(applied_from, self.chain.height):
                age = max(0.0, now - self.chain.header_at(height).header.timestamp)
                self.stats.delay_sum_s += age
                self.stats.delay_samples += 1
                if age > self.stats.delay_max_s:
                    self.stats.delay_max_s = age
        return self.chain.height < tip_height
