"""Consensus over the simulated network — latency-aware PoA rounds.

:mod:`repro.chain.consensus` prices consensus in *messages*; this module
prices it in *time*.  Validators live on the backhaul mesh; a round is:

1. the proposer broadcasts the proposal (one mesh send per validator),
2. each validator evaluates after a processing delay and broadcasts its
   vote,
3. the proposer commits once a strict 2/3 quorum of accepts arrived.

The commit latency — proposal propagation + processing + vote
propagation — is what a fully decentralized deployment would add to
every block, compared to the trusted aggregator's zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.chain.hashing import hash_value
from repro.chain.ledger import Blockchain
from repro.errors import ConsensusError
from repro.ids import AggregatorId
from repro.net.backhaul import BackhaulMesh
from repro.sim.kernel import Simulator
from repro.sim.process import Process

RecordCheck = Callable[[list[dict[str, Any]]], bool]
CommitCallback = Callable[[bool, float], None]


@dataclass(frozen=True)
class _Proposal:
    round_id: int
    proposal_hash: str
    records: tuple[dict[str, Any], ...]
    timestamp: float
    proposer: AggregatorId


@dataclass(frozen=True)
class _NetVote:
    round_id: int
    proposal_hash: str
    voter: AggregatorId
    accept: bool


class NetworkedValidator(Process):
    """A consensus participant attached to the mesh.

    Args:
        simulator: The kernel.
        node_id: This validator's mesh identity.
        mesh: The backhaul network.
        check: Acceptance predicate over proposed record batches.
        processing_delay_s: Local evaluation time per proposal.
    """

    def __init__(
        self,
        simulator: Simulator,
        node_id: AggregatorId,
        mesh: BackhaulMesh,
        check: RecordCheck | None = None,
        processing_delay_s: float = 0.002,
    ) -> None:
        super().__init__(simulator, f"validator:{node_id.name}")
        if processing_delay_s < 0:
            raise ConsensusError(
                f"processing delay must be >= 0, got {processing_delay_s}"
            )
        self._node_id = node_id
        self._mesh = mesh
        self._check = check or (lambda records: True)
        self._processing_delay_s = processing_delay_s
        self._coordinator: "NetworkedPoaConsensus | None" = None
        mesh.add_aggregator(node_id, self._on_message)

    @property
    def node_id(self) -> AggregatorId:
        """This validator's mesh identity."""
        return self._node_id

    @property
    def mesh(self) -> BackhaulMesh:
        """The network this validator communicates over."""
        return self._mesh

    @property
    def processing_delay_s(self) -> float:
        """Local proposal-evaluation time."""
        return self._processing_delay_s

    def evaluate(self, proposal: "_Proposal") -> None:
        """Evaluate a proposal and emit the vote (public entry point)."""
        self._vote(proposal)

    def bind(self, coordinator: "NetworkedPoaConsensus") -> None:
        """Attach the round coordinator (done by the consensus object)."""
        self._coordinator = coordinator

    def _on_message(self, source: AggregatorId, payload: Any) -> None:
        if isinstance(payload, _Proposal):
            self.sim.call_later(
                self._processing_delay_s,
                lambda: self._vote(payload),
                label=f"{self.name}:evaluate",
            )
        elif isinstance(payload, _NetVote):
            if self._coordinator is not None:
                self._coordinator.receive_vote(self._node_id, payload)
        else:
            raise ConsensusError(
                f"unexpected consensus payload {type(payload).__name__}"
            )

    def _vote(self, proposal: _Proposal) -> None:
        accept = bool(self._check(list(proposal.records)))
        vote = _NetVote(proposal.round_id, proposal.proposal_hash, self._node_id, accept)
        self.trace("consensus.vote", round=proposal.round_id, accept=accept)
        # Vote goes to the proposer (commit decision is the proposer's).
        if proposal.proposer == self._node_id:
            if self._coordinator is not None:
                self._coordinator.receive_vote(self._node_id, vote)
        else:
            self._mesh.send(self._node_id, proposal.proposer, vote)


class NetworkedPoaConsensus(Process):
    """Round coordinator measuring commit latency over the mesh.

    Args:
        simulator: The kernel.
        validators: Validator set (order = proposer rotation).
        chain: Ledger committed blocks land in.
        quorum_ratio: Strict-greater-than accept fraction.
    """

    def __init__(
        self,
        simulator: Simulator,
        validators: list[NetworkedValidator],
        chain: Blockchain,
        quorum_ratio: float = 2.0 / 3.0,
    ) -> None:
        super().__init__(simulator, "networked-consensus")
        if not validators:
            raise ConsensusError("validator set must be non-empty")
        if not 0.0 < quorum_ratio < 1.0:
            raise ConsensusError(f"quorum ratio must be in (0, 1), got {quorum_ratio}")
        self._validators = list(validators)
        self._chain = chain
        self._quorum_ratio = quorum_ratio
        self._round = 0
        self._pending: dict[int, dict[str, Any]] = {}
        for validator in validators:
            validator.bind(self)
            chain.authorize(validator.node_id.name)

    @property
    def rounds_started(self) -> int:
        """Rounds proposed so far."""
        return self._round

    def propose(
        self,
        records: list[dict[str, Any]],
        on_commit: CommitCallback,
    ) -> int:
        """Start a round; ``on_commit(committed, latency_s)`` fires once.

        Returns the round id.
        """
        round_id = self._round
        self._round += 1
        proposer = self._validators[round_id % len(self._validators)]
        proposal = _Proposal(
            round_id=round_id,
            proposal_hash=hash_value({"round": round_id, "records": records}),
            records=tuple(records),
            timestamp=self.now,
            proposer=proposer.node_id,
        )
        self._pending[round_id] = {
            "proposal": proposal,
            "accepts": 0,
            "rejects": 0,
            "voted": set(),
            "started_at": self.now,
            "callback": on_commit,
            "decided": False,
        }
        mesh = proposer.mesh
        for validator in self._validators:
            if validator.node_id != proposer.node_id:
                mesh.send(proposer.node_id, validator.node_id, proposal)
        # The proposer evaluates its own proposal too.
        self.sim.call_later(
            proposer.processing_delay_s,
            lambda: proposer.evaluate(proposal),
            label="consensus:self-vote",
        )
        return round_id

    def receive_vote(self, receiver: AggregatorId, vote: _NetVote) -> None:
        """Tally one vote (called by the proposer's message handler)."""
        state = self._pending.get(vote.round_id)
        if state is None or state["decided"]:
            return
        if vote.voter in state["voted"]:
            return
        state["voted"].add(vote.voter)
        if vote.accept:
            state["accepts"] += 1
        else:
            state["rejects"] += 1
        total = len(self._validators)
        quorum = self._quorum_ratio * total
        if state["accepts"] > quorum:
            self._decide(vote.round_id, committed=True)
        elif total - state["rejects"] <= quorum:
            # Even unanimous remaining accepts cannot reach quorum.
            self._decide(vote.round_id, committed=False)

    def _decide(self, round_id: int, committed: bool) -> None:
        state = self._pending.pop(round_id)
        state["decided"] = True
        latency = self.now - state["started_at"]
        proposal: _Proposal = state["proposal"]
        if committed:
            self._chain.append(
                proposal.proposer.name, proposal.timestamp, list(proposal.records)
            )
        self.trace(
            "consensus.decided",
            round=round_id,
            committed=committed,
            latency_s=latency,
        )
        state["callback"](committed, latency)
