"""Block structures.

A block batches the validated consumption records one aggregator
collected over one ledger interval.  The header commits to:

* the previous block's hash (the chain link),
* the Merkle root of the records (the data commitment),
* the creating aggregator, height and timestamp.

Records are plain dictionaries produced by
:meth:`repro.protocol.messages.ConsumptionReport.to_record`, so blocks
are JSON-serialisable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chain.hashing import chain_hash
from repro.chain.merkle import merkle_root
from repro.errors import BlockValidationError


@dataclass(frozen=True)
class BlockHeader:
    """Immutable header committed by the block hash.

    Attributes:
        height: 0 for genesis, parent height + 1 after.
        previous_hash: Hash of the parent block.
        merkle_root: Commitment to the block's records.
        aggregator: Name of the creating aggregator.
        timestamp: Simulated creation time.
        record_count: Number of records in the body.
    """

    height: int
    previous_hash: str
    merkle_root: str
    aggregator: str
    timestamp: float
    record_count: int

    def __post_init__(self) -> None:
        if self.height < 0:
            raise BlockValidationError(f"height must be >= 0, got {self.height}")
        if len(self.previous_hash) != 64:
            raise BlockValidationError(
                f"previous hash must be 64 hex chars, got {self.previous_hash!r}"
            )
        if self.record_count < 0:
            raise BlockValidationError(
                f"record count must be >= 0, got {self.record_count}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form used for hashing and storage."""
        return {
            "height": self.height,
            "previous_hash": self.previous_hash,
            "merkle_root": self.merkle_root,
            "aggregator": self.aggregator,
            "timestamp": self.timestamp,
            "record_count": self.record_count,
        }


@dataclass(frozen=True)
class Block:
    """A header plus its record body and the resulting block hash."""

    header: BlockHeader
    records: tuple[dict[str, Any], ...]
    block_hash: str = field(default="", compare=False)

    @staticmethod
    def create(
        height: int,
        previous_hash: str,
        aggregator: str,
        timestamp: float,
        records: list[dict[str, Any]],
    ) -> "Block":
        """Build a block, computing the Merkle root and chain hash."""
        header = BlockHeader(
            height=height,
            previous_hash=previous_hash,
            merkle_root=merkle_root(records),
            aggregator=aggregator,
            timestamp=timestamp,
            record_count=len(records),
        )
        block_hash = chain_hash(previous_hash, {"header": header.to_dict(), "records": records})
        return Block(header=header, records=tuple(records), block_hash=block_hash)

    def compute_hash(self) -> str:
        """Recompute the hash from current contents (for audits)."""
        return chain_hash(
            self.header.previous_hash,
            {"header": self.header.to_dict(), "records": list(self.records)},
        )

    def validate_structure(self) -> None:
        """Check internal consistency (Merkle root, count, hash).

        Raises :class:`~repro.errors.BlockValidationError` on the first
        inconsistency found.
        """
        if self.header.record_count != len(self.records):
            raise BlockValidationError(
                f"block {self.header.height}: header says {self.header.record_count} "
                f"records, body has {len(self.records)}"
            )
        expected_root = merkle_root(list(self.records))
        if self.header.merkle_root != expected_root:
            raise BlockValidationError(
                f"block {self.header.height}: merkle root mismatch"
            )
        if self.block_hash != self.compute_hash():
            raise BlockValidationError(
                f"block {self.header.height}: stored hash does not match contents"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form for storage backends."""
        return {
            "header": self.header.to_dict(),
            "records": list(self.records),
            "block_hash": self.block_hash,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Block":
        """Rebuild a block from its stored form (no validation)."""
        header = BlockHeader(**data["header"])
        return Block(
            header=header,
            records=tuple(data["records"]),
            block_hash=data["block_hash"],
        )
