"""Merkle tree over a block's measurement records.

A block created by an aggregator batches every validated report of one
interval.  Committing to a Merkle root (rather than a flat hash of the
list) lets a device or auditor verify inclusion of a single record with
an O(log n) proof — useful for billing disputes.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Any

from repro.chain.hashing import canonical_bytes, sha256_hex
from repro.errors import ChainError

_EMPTY_ROOT = sha256_hex(b"merkle-empty")


def _leaf_hash(record: Any) -> str:
    # hashlib called directly: one leaf per committed record makes this
    # the ledger's hottest function, and the sha256_hex wrapper frame
    # measurably showed in fleet profiles.  Identical digests.
    return sha256(b"\x00" + canonical_bytes(record)).hexdigest()


def _node_hash(left: str, right: str) -> str:
    return sha256(b"\x01" + left.encode("ascii") + right.encode("ascii")).hexdigest()


def merkle_root(records: list[Any]) -> str:
    """Merkle root of a record list (deterministic, duplicate-last pairing)."""
    return MerkleTree(records).root


class MerkleTree:
    """Merkle tree with inclusion proofs.

    Leaf and interior hashes use distinct domain-separation prefixes so a
    leaf can never be confused with a node (second-preimage hardening).
    """

    def __init__(self, records: list[Any]) -> None:
        self._levels: list[list[str]] = []
        leaves = [_leaf_hash(r) for r in records]
        if leaves:
            self._levels.append(leaves)
            current = leaves
            while len(current) > 1:
                nxt = []
                for i in range(0, len(current), 2):
                    left = current[i]
                    right = current[i + 1] if i + 1 < len(current) else current[i]
                    nxt.append(_node_hash(left, right))
                self._levels.append(nxt)
                current = nxt

    @property
    def root(self) -> str:
        """The tree's root hash (a fixed sentinel for an empty tree)."""
        if not self._levels:
            return _EMPTY_ROOT
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        """Number of records committed."""
        if not self._levels:
            return 0
        return len(self._levels[0])

    def proof(self, index: int) -> list[tuple[str, str]]:
        """Inclusion proof for leaf ``index`` as (side, hash) pairs.

        ``side`` is ``"L"`` when the sibling goes on the left of the
        running hash, ``"R"`` when on the right.
        """
        if not self._levels or not 0 <= index < len(self._levels[0]):
            raise ChainError(f"leaf index {index} out of range")
        path: list[tuple[str, str]] = []
        i = index
        for level in self._levels[:-1]:
            sibling_index = i ^ 1
            sibling = level[sibling_index] if sibling_index < len(level) else level[i]
            side = "L" if sibling_index < i else "R"
            path.append((side, sibling))
            i //= 2
        return path

    @staticmethod
    def expected_proof_length(leaf_count: int) -> int:
        """Proof length (tree depth) for a tree of ``leaf_count`` leaves."""
        if leaf_count < 1:
            raise ChainError(f"leaf count must be >= 1, got {leaf_count}")
        depth = 0
        width = leaf_count
        while width > 1:
            width = (width + 1) // 2
            depth += 1
        return depth

    @staticmethod
    def verify_proof(
        record: Any,
        proof: list[tuple[str, str]],
        root: str,
        leaf_count: int | None = None,
    ) -> bool:
        """Check that ``record`` is committed under ``root`` by ``proof``.

        With duplicate-last-leaf pairing, ``[A, B, C]`` and
        ``[A, B, C, C]`` share a root (the CVE-2012-2459 shape), so a
        proof alone cannot distinguish a committed record from a
        fabricated duplicate of the last one.  Passing ``leaf_count``
        (which the block header commits to as ``record_count``) closes
        that hole: the proof length must match the tree depth, and the
        leaf index the proof's sides encode must fall inside the tree.
        """
        if leaf_count is not None:
            if leaf_count < 1:
                return False
            if len(proof) != MerkleTree.expected_proof_length(leaf_count):
                return False
            # A left sibling at level k means our leaf took the right
            # slot of that pair, i.e. bit k of the leaf index is 1.
            index = 0
            for position, (side, _sibling) in enumerate(proof):
                if side == "L":
                    index |= 1 << position
            if index >= leaf_count:
                return False
        running = _leaf_hash(record)
        for side, sibling in proof:
            if side == "L":
                running = _node_hash(sibling, running)
            elif side == "R":
                running = _node_hash(running, sibling)
            else:
                raise ChainError(f"proof side must be 'L' or 'R', got {side!r}")
        return running == root
