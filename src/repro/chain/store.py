"""Block storage backends.

The ledger only needs ``put`` / ``get`` / ``height``.  Two backends:

* :class:`InMemoryBlockStore` — the default for simulations,
* :class:`JsonlBlockStore` — one JSON document per line on disk, so a
  ledger survives the process and external tools can inspect it.

Stores are *dumb on purpose*: they keep whatever bytes they are given.
Detecting that stored data was mutated is the auditor's job
(:mod:`repro.chain.audit`) — that separation is what the tamper
experiments exercise.

Both backends support *pruning*: dropping block bodies below a height so
a long-running ledger stays O(recent) in memory.  Pruned heights still
count toward ``height()`` — they are positions the chain once held, not
holes — but ``get`` raises :class:`~repro.errors.PrunedBlockError` for
them.  The JSONL file is never rewritten: on disk it remains the full
archive, pruning only evicts the in-memory copies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Protocol

from repro.chain.block import Block
from repro.errors import ChainError, PrunedBlockError


class BlockStore(Protocol):
    """Minimal storage interface the ledger depends on."""

    def height(self) -> int:
        """Number of stored blocks."""
        ...

    def put(self, block: Block) -> None:
        """Append one block (must be at index == height())."""
        ...

    def get(self, height: int) -> Block:
        """Fetch the block stored at ``height``."""
        ...


class InMemoryBlockStore:
    """List-backed store; the default for simulation runs."""

    def __init__(self) -> None:
        self._blocks: list[Block | None] = []
        self._pruned_below = 0

    def height(self) -> int:
        """Number of stored blocks (pruned positions included)."""
        return len(self._blocks)

    @property
    def pruned_below(self) -> int:
        """Heights below this bound have had their bodies dropped."""
        return self._pruned_below

    def put(self, block: Block) -> None:
        """Append one block at the next height."""
        if block.header.height != len(self._blocks):
            raise ChainError(
                f"block height {block.header.height} != next index {len(self._blocks)}"
            )
        self._blocks.append(block)

    def get(self, height: int) -> Block:
        """Fetch a stored block."""
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height}")
        block = self._blocks[height]
        if block is None:
            raise PrunedBlockError(
                f"block {height} is pruned (bodies below {self._pruned_below} dropped)"
            )
        return block

    def prune(self, below_height: int) -> int:
        """Drop block bodies below ``below_height``; returns count dropped."""
        dropped = 0
        for height in range(self._pruned_below, min(below_height, len(self._blocks))):
            if self._blocks[height] is not None:
                self._blocks[height] = None
                dropped += 1
        self._pruned_below = max(self._pruned_below, below_height)
        return dropped

    def tamper(self, height: int, block: Block) -> None:
        """Overwrite a stored block *without* any validation.

        Exists so tests and the tamper experiments can simulate an
        attacker with storage access; the ledger API never calls this.
        """
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height}")
        self._blocks[height] = block


class JsonlBlockStore:
    """Append-only JSON-lines file store.

    The in-memory cache is keyed on the file's (size, mtime) stat: when
    another writer appends to the same file, the next read notices the
    stat change and re-loads, so a second reader is never stuck on its
    first snapshot.

    Args:
        path: File to store blocks in; created on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._cache: list[Block | None] | None = None
        self._cache_stat: tuple[int, int] | None = None
        self._pruned_below = 0

    def _stat(self) -> tuple[int, int] | None:
        try:
            st = self._path.stat()
        except FileNotFoundError:
            return None
        return (st.st_size, st.st_mtime_ns)

    def _load(self) -> list[Block | None]:
        current = self._stat()
        if self._cache is None or current != self._cache_stat:
            blocks: list[Block | None] = []
            if current is not None:
                with self._path.open() as handle:
                    for line_no, line in enumerate(handle):
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            blocks.append(Block.from_dict(json.loads(line)))
                        except (json.JSONDecodeError, KeyError, TypeError) as exc:
                            raise ChainError(
                                f"corrupt block at {self._path}:{line_no + 1}: {exc}"
                            ) from exc
            # Re-apply the prune boundary after a reload: the file stays
            # the full archive, memory stays O(recent).
            for height in range(min(self._pruned_below, len(blocks))):
                blocks[height] = None
            self._cache = blocks
            self._cache_stat = current
        return self._cache

    def height(self) -> int:
        """Number of stored blocks (pruned positions included)."""
        return len(self._load())

    @property
    def pruned_below(self) -> int:
        """Heights below this bound are evicted from the memory cache."""
        return self._pruned_below

    def put(self, block: Block) -> None:
        """Append one block to the file and the cache."""
        blocks = self._load()
        if block.header.height != len(blocks):
            raise ChainError(
                f"block height {block.header.height} != next index {len(blocks)}"
            )
        with self._path.open("a") as handle:
            handle.write(json.dumps(block.to_dict(), sort_keys=True) + "\n")
        blocks.append(block)
        self._cache_stat = self._stat()

    def get(self, height: int) -> Block:
        """Fetch a stored block."""
        blocks = self._load()
        if not 0 <= height < len(blocks):
            raise ChainError(f"no block at height {height}")
        block = blocks[height]
        if block is None:
            raise PrunedBlockError(
                f"block {height} is pruned from memory (archived in {self._path})"
            )
        return block

    def prune(self, below_height: int) -> int:
        """Evict cached bodies below ``below_height``; the file keeps all."""
        blocks = self._load()
        dropped = 0
        for height in range(min(below_height, len(blocks))):
            if blocks[height] is not None:
                blocks[height] = None
                dropped += 1
        self._pruned_below = max(self._pruned_below, below_height)
        return dropped
