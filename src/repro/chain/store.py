"""Block storage backends.

The ledger only needs ``put`` / ``get`` / ``height``.  Two backends:

* :class:`InMemoryBlockStore` — the default for simulations,
* :class:`JsonlBlockStore` — one JSON document per line on disk, so a
  ledger survives the process and external tools can inspect it.

Stores are *dumb on purpose*: they keep whatever bytes they are given.
Detecting that stored data was mutated is the auditor's job
(:mod:`repro.chain.audit`) — that separation is what the tamper
experiments exercise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Protocol

from repro.chain.block import Block
from repro.errors import ChainError


class BlockStore(Protocol):
    """Minimal storage interface the ledger depends on."""

    def height(self) -> int:
        """Number of stored blocks."""
        ...

    def put(self, block: Block) -> None:
        """Append one block (must be at index == height())."""
        ...

    def get(self, height: int) -> Block:
        """Fetch the block stored at ``height``."""
        ...


class InMemoryBlockStore:
    """List-backed store; the default for simulation runs."""

    def __init__(self) -> None:
        self._blocks: list[Block] = []

    def height(self) -> int:
        """Number of stored blocks."""
        return len(self._blocks)

    def put(self, block: Block) -> None:
        """Append one block at the next height."""
        if block.header.height != len(self._blocks):
            raise ChainError(
                f"block height {block.header.height} != next index {len(self._blocks)}"
            )
        self._blocks.append(block)

    def get(self, height: int) -> Block:
        """Fetch a stored block."""
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height}")
        return self._blocks[height]

    def tamper(self, height: int, block: Block) -> None:
        """Overwrite a stored block *without* any validation.

        Exists so tests and the tamper experiments can simulate an
        attacker with storage access; the ledger API never calls this.
        """
        if not 0 <= height < len(self._blocks):
            raise ChainError(f"no block at height {height}")
        self._blocks[height] = block


class JsonlBlockStore:
    """Append-only JSON-lines file store.

    Args:
        path: File to store blocks in; created on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._cache: list[Block] | None = None

    def _load(self) -> list[Block]:
        if self._cache is None:
            blocks: list[Block] = []
            if self._path.exists():
                with self._path.open() as handle:
                    for line_no, line in enumerate(handle):
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            blocks.append(Block.from_dict(json.loads(line)))
                        except (json.JSONDecodeError, KeyError, TypeError) as exc:
                            raise ChainError(
                                f"corrupt block at {self._path}:{line_no + 1}: {exc}"
                            ) from exc
            self._cache = blocks
        return self._cache

    def height(self) -> int:
        """Number of stored blocks."""
        return len(self._load())

    def put(self, block: Block) -> None:
        """Append one block to the file and the cache."""
        blocks = self._load()
        if block.header.height != len(blocks):
            raise ChainError(
                f"block height {block.header.height} != next index {len(blocks)}"
            )
        with self._path.open("a") as handle:
            handle.write(json.dumps(block.to_dict(), sort_keys=True) + "\n")
        blocks.append(block)

    def get(self, height: int) -> Block:
        """Fetch a stored block."""
        blocks = self._load()
        if not 0 <= height < len(blocks):
            raise ChainError(f"no block at height {height}")
        return blocks[height]
