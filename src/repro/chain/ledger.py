"""The permissioned blockchain (hash chain without consensus).

Only trusted aggregators append; "since the aggregator is trusted and
validates the data, there is no consensus required among devices"
(§II-A).  Blocks from all aggregators form one *common* chain — in the
reproduction each append names the creating aggregator, so a single
:class:`Blockchain` instance can be shared by many aggregators (the
common permissioned chain) or instantiated per aggregator for isolation
experiments.

Beyond raw storage the chain maintains three derived structures:

* a **per-device record index** mapping ``device_uid`` to the (height,
  record index, sequence) coordinates of every retained record, so
  receipt issuance and billing queries stop being O(chain) scans,
* a **header list** for *every* height ever appended — this is what
  lightweight clients sync (:mod:`repro.chain.sync`) and what keeps
  receipts against pruned blocks verifiable,
* optional **checkpoints** every ``checkpoint_interval`` blocks, each
  committing to the prefix below it.  With ``pruning_depth`` set, block
  *bodies* older than the newest checkpoint-covered boundary are dropped
  from the store, bounding memory to O(recent) while headers and
  checkpoints keep the full history verifiable.

All derived state is re-synced lazily from the store, so a second
:class:`Blockchain` reading a shared (e.g. JSONL) store sees blocks
appended by other writers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterator

from repro.chain.block import Block
from repro.chain.hashing import GENESIS_HASH
from repro.chain.store import BlockStore, InMemoryBlockStore
from repro.chain.sync import Checkpoint, HeaderRecord
from repro.errors import BlockValidationError, ChainError

if TYPE_CHECKING:
    from repro.monitoring.counters import CounterBank


class Blockchain:
    """Append-only chain of validated consumption blocks.

    Args:
        store: Storage backend; defaults to in-memory.
        authorized: Optional set of aggregator names allowed to append
            (the "permissioned" part).  ``None`` allows any appender.
        counters: Optional shared counter bank; appends are recorded as
            ``chain.blocks_appended`` / ``chain.records_appended``.
        checkpoint_interval: Commit a :class:`Checkpoint` every this
            many blocks (``None`` disables checkpointing).
        pruning_depth: Keep at least this many recent block bodies;
            older ones are pruned at each checkpoint, never past the
            newest checkpoint.  Requires ``checkpoint_interval``.
    """

    def __init__(
        self,
        store: BlockStore | None = None,
        authorized: set[str] | None = None,
        counters: "CounterBank | None" = None,
        *,
        checkpoint_interval: int | None = None,
        pruning_depth: int | None = None,
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ChainError(
                f"checkpoint interval must be >= 1, got {checkpoint_interval}"
            )
        if pruning_depth is not None and pruning_depth < 0:
            raise ChainError(f"pruning depth must be >= 0, got {pruning_depth}")
        if pruning_depth is not None and checkpoint_interval is None:
            raise ChainError(
                "pruning requires checkpointing: receipts against pruned "
                "blocks verify via committed checkpoints"
            )
        self._store = store or InMemoryBlockStore()
        self._authorized = set(authorized) if authorized is not None else None
        self._counters = counters
        self._checkpoint_interval = checkpoint_interval
        self._pruning_depth = pruning_depth
        self._tip_hash = GENESIS_HASH
        self._headers: list[HeaderRecord] = []
        self._checkpoints: list[Checkpoint] = []
        self._records_total = 0
        self._pruned_below = 0
        # device_uid -> height-sorted (height, record_index, sequence)
        self._device_index: dict[str, list[tuple[int, int, Any]]] = {}
        self._indexed_height = 0
        self._sync_with_store()

    # ------------------------------------------------------------------
    # derived-state maintenance

    def _sync_with_store(self) -> None:
        """Index any blocks the store gained since we last looked.

        Keeps a chain instance attached to a shared store (several
        readers over one JSONL file) consistent with the file's current
        contents.
        """
        store_height = self._store.height()
        if store_height < self._indexed_height:
            raise ChainError(
                f"store shrank: holds {store_height} blocks, "
                f"{self._indexed_height} already indexed"
            )
        while self._indexed_height < store_height:
            self._admit(self._store.get(self._indexed_height))

    def _admit(self, block: Block) -> None:
        header = block.header
        self._headers.append(HeaderRecord(header=header, block_hash=block.block_hash))
        for index, record in enumerate(block.records):
            uid = record.get("device_uid")
            if uid is not None:
                self._device_index.setdefault(uid, []).append(
                    (header.height, index, record.get("sequence"))
                )
        self._records_total += len(block.records)
        self._indexed_height += 1
        self._tip_hash = block.block_hash
        if (
            self._checkpoint_interval is not None
            and self._indexed_height % self._checkpoint_interval == 0
        ):
            self._checkpoints.append(
                Checkpoint(
                    height=self._indexed_height,
                    tip_hash=self._tip_hash,
                    record_count=self._records_total,
                    timestamp=header.timestamp,
                )
            )
            if self._pruning_depth is not None:
                boundary = min(
                    self._indexed_height - self._pruning_depth,
                    self._checkpoints[-1].height,
                )
                if boundary > self._pruned_below:
                    self._prune_to(boundary)

    # ------------------------------------------------------------------
    # core chain API

    @property
    def height(self) -> int:
        """Number of blocks in the chain (pruned positions included)."""
        return self._store.height()

    @property
    def tip_hash(self) -> str:
        """Hash of the newest block (genesis sentinel when empty)."""
        self._sync_with_store()
        return self._tip_hash

    def is_authorized(self, aggregator: str) -> bool:
        """Whether ``aggregator`` may append to this chain."""
        return self._authorized is None or aggregator in self._authorized

    def authorize(self, aggregator: str) -> None:
        """Grant append permission (no-op for an open chain)."""
        if self._authorized is not None:
            self._authorized.add(aggregator)

    def append(
        self,
        aggregator: str,
        timestamp: float,
        records: list[dict[str, Any]],
    ) -> Block:
        """Create and append the next block.

        Raises :class:`~repro.errors.ChainError` if the aggregator is not
        authorized.  Empty record lists are allowed (an interval with no
        validated reports still advances the chain, keeping block cadence
        observable).
        """
        if not self.is_authorized(aggregator):
            raise ChainError(f"aggregator {aggregator!r} is not authorized to append")
        self._sync_with_store()
        block = Block.create(
            height=self._indexed_height,
            previous_hash=self._tip_hash,
            aggregator=aggregator,
            timestamp=timestamp,
            records=records,
        )
        self._store.put(block)
        self._admit(block)
        if self._counters is not None:
            self._counters.increment("chain.blocks_appended")
            if records:
                self._counters.increment("chain.records_appended", len(records))
        return block

    def get(self, height: int) -> Block:
        """Fetch the block at ``height``.

        Raises :class:`~repro.errors.PrunedBlockError` when the body was
        pruned; use :meth:`header_at` for the retained header.
        """
        return self._store.get(height)

    def __iter__(self) -> Iterator[Block]:
        """Iterate the *retained* blocks (pruned bodies are gone)."""
        self._sync_with_store()
        for height in range(self._pruned_below, self.height):
            yield self._store.get(height)

    def __len__(self) -> int:
        return self.height

    def validate(self) -> None:
        """Walk the whole chain, checking structure and linkage.

        Over the pruned prefix only header linkage can be checked (the
        bodies are gone — the committed checkpoints vouch for them);
        retained blocks get the full structural validation.  Raises
        :class:`~repro.errors.BlockValidationError` at the first broken
        block.
        """
        self._sync_with_store()
        previous_hash = GENESIS_HASH
        for height in range(self._pruned_below):
            held = self._headers[height]
            if held.header.height != height:
                raise BlockValidationError(
                    f"header at position {height} claims height {held.header.height}"
                )
            if held.header.previous_hash != previous_hash:
                raise BlockValidationError(
                    f"block {height}: previous-hash link broken"
                )
            previous_hash = held.block_hash
        for height in range(self._pruned_below, self.height):
            block = self._store.get(height)
            if block.header.height != height:
                raise BlockValidationError(
                    f"block at position {height} claims height {block.header.height}"
                )
            if block.header.previous_hash != previous_hash:
                raise BlockValidationError(
                    f"block {height}: previous-hash link broken"
                )
            block.validate_structure()
            previous_hash = block.block_hash
        if self.height > 0 and previous_hash != self._tip_hash:
            raise BlockValidationError("tip hash does not match last block")

    # ------------------------------------------------------------------
    # lightweight-client view

    def header_at(self, height: int) -> HeaderRecord:
        """Header + block hash for ``height`` (retained even when pruned)."""
        self._sync_with_store()
        if not 0 <= height < self._indexed_height:
            raise ChainError(f"no header at height {height}")
        return self._headers[height]

    def headers(self, start: int, max_count: int) -> list[HeaderRecord]:
        """Up to ``max_count`` header records from ``start`` upward."""
        self._sync_with_store()
        if start < 0 or max_count < 0:
            raise ChainError(
                f"invalid header range start={start} max_count={max_count}"
            )
        return self._headers[start : start + max_count]

    @property
    def checkpoints(self) -> tuple[Checkpoint, ...]:
        """All committed checkpoints, oldest first."""
        self._sync_with_store()
        return tuple(self._checkpoints)

    @property
    def latest_checkpoint(self) -> Checkpoint | None:
        """The newest committed checkpoint, if any."""
        self._sync_with_store()
        return self._checkpoints[-1] if self._checkpoints else None

    @property
    def records_total(self) -> int:
        """Records ever appended, including ones in pruned blocks."""
        self._sync_with_store()
        return self._records_total

    # ------------------------------------------------------------------
    # pruning

    @property
    def pruned_below(self) -> int:
        """Block bodies below this height have been dropped."""
        return self._pruned_below

    @property
    def retained_blocks(self) -> int:
        """Block bodies currently held in the store."""
        return self.height - self._pruned_below

    def prune(self, below_height: int) -> int:
        """Drop block bodies below ``below_height``; returns count dropped.

        Only checkpoint-covered history may be pruned — a committed
        checkpoint at or above the boundary is what lets receipts and
        audits over the pruned region still anchor to verified state.
        """
        self._sync_with_store()
        return self._prune_to(below_height)

    def _prune_to(self, below_height: int) -> int:
        if below_height <= self._pruned_below:
            return 0
        if below_height > self._indexed_height:
            raise ChainError(
                f"cannot prune below {below_height}: chain height is "
                f"{self._indexed_height}"
            )
        if not any(cp.height >= below_height for cp in self._checkpoints):
            raise ChainError(
                f"cannot prune below {below_height}: no checkpoint commits "
                "to that prefix"
            )
        pruner = getattr(self._store, "prune", None)
        if pruner is None:
            raise ChainError(
                f"{type(self._store).__name__} does not support pruning"
            )
        dropped = pruner(below_height)
        self._pruned_below = below_height
        for uid in list(self._device_index):
            entries = self._device_index[uid]
            cut = bisect_left(entries, (below_height,))
            if cut == len(entries):
                del self._device_index[uid]
            elif cut:
                self._device_index[uid] = entries[cut:]
        return dropped

    # ------------------------------------------------------------------
    # record queries (index-backed)

    def locate_record(self, device_uid: str, sequence: Any) -> tuple[int, int] | None:
        """(height, record index) of a device's record, or None.

        Only retained records are findable — the index is trimmed along
        with pruning.
        """
        self._sync_with_store()
        for height, index, seq in self._device_index.get(device_uid, ()):
            if seq == sequence:
                return (height, index)
        return None

    def records_for_device(self, device_uid: str) -> list[dict[str, Any]]:
        """All *retained* records of one device, in chain order.

        The index is an acceleration structure over the store, not a
        second source of truth: each hit is re-checked against the
        stored bytes, so a tampered store (records removed or moved —
        what the tamper experiments simulate) reads exactly as stored,
        never as indexed.
        """
        self._sync_with_store()
        found: list[dict[str, Any]] = []
        block: Block | None = None
        for height, index, _seq in self._device_index.get(device_uid, ()):
            if block is None or block.header.height != height:
                block = self._store.get(height)
            if index < len(block.records):
                record = block.records[index]
                if record.get("device_uid") == device_uid:
                    found.append(record)
        return found

    def total_energy_mwh(self, device_uid: str | None = None) -> float:
        """Sum of retained energy, optionally filtered to one device."""
        total = 0.0
        if device_uid is not None:
            for record in self.records_for_device(device_uid):
                total += float(record.get("energy_mwh", 0.0))
            return total
        for block in self:
            for record in block.records:
                total += float(record.get("energy_mwh", 0.0))
        return total
