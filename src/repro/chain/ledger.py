"""The permissioned blockchain (hash chain without consensus).

Only trusted aggregators append; "since the aggregator is trusted and
validates the data, there is no consensus required among devices"
(§II-A).  Blocks from all aggregators form one *common* chain — in the
reproduction each append names the creating aggregator, so a single
:class:`Blockchain` instance can be shared by many aggregators (the
common permissioned chain) or instantiated per aggregator for isolation
experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.chain.block import Block
from repro.chain.hashing import GENESIS_HASH
from repro.chain.store import BlockStore, InMemoryBlockStore
from repro.errors import BlockValidationError, ChainError

if TYPE_CHECKING:
    from repro.monitoring.counters import CounterBank


class Blockchain:
    """Append-only chain of validated consumption blocks.

    Args:
        store: Storage backend; defaults to in-memory.
        authorized: Optional set of aggregator names allowed to append
            (the "permissioned" part).  ``None`` allows any appender.
        counters: Optional shared counter bank; appends are recorded as
            ``chain.blocks_appended`` / ``chain.records_appended``.
    """

    def __init__(
        self,
        store: BlockStore | None = None,
        authorized: set[str] | None = None,
        counters: "CounterBank | None" = None,
    ) -> None:
        self._store = store or InMemoryBlockStore()
        self._authorized = set(authorized) if authorized is not None else None
        self._counters = counters
        existing = self._store.height()
        if existing > 0:
            tip = self._store.get(existing - 1)
            self._tip_hash = tip.block_hash
        else:
            self._tip_hash = GENESIS_HASH

    @property
    def height(self) -> int:
        """Number of blocks in the chain."""
        return self._store.height()

    @property
    def tip_hash(self) -> str:
        """Hash of the newest block (genesis sentinel when empty)."""
        return self._tip_hash

    def is_authorized(self, aggregator: str) -> bool:
        """Whether ``aggregator`` may append to this chain."""
        return self._authorized is None or aggregator in self._authorized

    def authorize(self, aggregator: str) -> None:
        """Grant append permission (no-op for an open chain)."""
        if self._authorized is not None:
            self._authorized.add(aggregator)

    def append(
        self,
        aggregator: str,
        timestamp: float,
        records: list[dict[str, Any]],
    ) -> Block:
        """Create and append the next block.

        Raises :class:`~repro.errors.ChainError` if the aggregator is not
        authorized.  Empty record lists are allowed (an interval with no
        validated reports still advances the chain, keeping block cadence
        observable).
        """
        if not self.is_authorized(aggregator):
            raise ChainError(f"aggregator {aggregator!r} is not authorized to append")
        block = Block.create(
            height=self.height,
            previous_hash=self._tip_hash,
            aggregator=aggregator,
            timestamp=timestamp,
            records=records,
        )
        self._store.put(block)
        self._tip_hash = block.block_hash
        if self._counters is not None:
            self._counters.increment("chain.blocks_appended")
            if records:
                self._counters.increment("chain.records_appended", len(records))
        return block

    def get(self, height: int) -> Block:
        """Fetch the block at ``height``."""
        return self._store.get(height)

    def __iter__(self) -> Iterator[Block]:
        for height in range(self.height):
            yield self._store.get(height)

    def __len__(self) -> int:
        return self.height

    def validate(self) -> None:
        """Walk the whole chain, checking structure and linkage.

        Raises :class:`~repro.errors.BlockValidationError` at the first
        broken block.
        """
        previous_hash = GENESIS_HASH
        for height in range(self.height):
            block = self._store.get(height)
            if block.header.height != height:
                raise BlockValidationError(
                    f"block at position {height} claims height {block.header.height}"
                )
            if block.header.previous_hash != previous_hash:
                raise BlockValidationError(
                    f"block {height}: previous-hash link broken"
                )
            block.validate_structure()
            previous_hash = block.block_hash
        if self.height > 0 and previous_hash != self._tip_hash:
            raise BlockValidationError("tip hash does not match last block")

    def records_for_device(self, device_uid: str) -> list[dict[str, Any]]:
        """All stored records of one device, in chain order."""
        found: list[dict[str, Any]] = []
        for block in self:
            for record in block.records:
                if record.get("device_uid") == device_uid:
                    found.append(record)
        return found

    def total_energy_mwh(self, device_uid: str | None = None) -> float:
        """Sum of stored energy, optionally filtered to one device."""
        total = 0.0
        for block in self:
            for record in block.records:
                if device_uid is None or record.get("device_uid") == device_uid:
                    total += float(record.get("energy_mwh", 0.0))
        return total
