"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the most specific
subclass that applies; constructors accept a human-readable message and
optional structured context kept on the instance for programmatic
inspection.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event kernel detected an inconsistency."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with invalid parameters."""


class HardwareError(ReproError):
    """A hardware model was driven outside its valid operating range."""


class SensorRangeError(HardwareError):
    """A sensor measurement request exceeded the sensor's range."""


class GridError(ReproError):
    """The electrical-grid model detected an invalid topology or state."""


class NetworkError(ReproError):
    """Base class for communication-network errors."""


class AddressError(NetworkError):
    """A network address or device identifier is malformed or unknown."""


class ChannelError(NetworkError):
    """The wireless channel rejected a transmission."""


class SlotAllocationError(NetworkError):
    """The TDMA schedule has no free slot for a new device."""


class BackhaulError(NetworkError):
    """The inter-aggregator backhaul could not route a message."""


class ProtocolError(ReproError):
    """A protocol message or state transition violated the specification."""


class CodecError(ProtocolError):
    """A protocol message could not be encoded or decoded."""


class MembershipError(ProtocolError):
    """A membership operation (register/transfer/remove) is invalid."""


class ChainError(ReproError):
    """Base class for blockchain errors."""


class BlockValidationError(ChainError):
    """A block failed structural or hash-link validation."""


class TamperDetectedError(ChainError):
    """An audit found that stored ledger data was mutated."""


class PrunedBlockError(ChainError):
    """A block body was requested below the ledger's pruning boundary."""


class ConsensusError(ChainError):
    """The consensus extension failed to reach agreement."""


class StorageError(ReproError):
    """The device-local store-and-forward buffer failed an operation."""


class BillingError(ReproError):
    """The billing engine was given inconsistent inputs."""


class AnomalyError(ReproError):
    """An anomaly-detection component was misconfigured."""


class ExperimentError(ReproError):
    """An experiment harness could not complete a run."""
