"""Array math backends for the vectorized fleet.

Two interchangeable implementations of the per-tick cohort kernel:

* :class:`NumpyBackend` — the fast path, one ufunc sweep per operation;
* :class:`PythonBackend` — ``array``-module storage with plain Python
  loops, used when numpy is unavailable (or forced for testing).

Both apply *exactly* the scalar device stack's operation order per
element, so their per-device results are bit-identical to each other and
to the scalar path: IEEE-754 arithmetic is deterministic, and numpy's
element-wise ufuncs on float64 perform the same rounding as the
equivalent Python expression.

The noise/latency *draws* stay with the caller (they come from the
per-device / per-aggregator RNG streams); the backend only does the
arithmetic.
"""

from __future__ import annotations

from array import array
from typing import Sequence

try:  # pragma: no cover - exercised implicitly by which backend runs
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAS_NUMPY = False

# Seconds per year as the DS3231 model computes it (constant-folded the
# same way CPython folds the literal expression in ``Ds3231Rtc.read``).
_SECONDS_PER_YEAR = 365.25 * 24 * 3600


class NumpyBackend:
    """Vectorized cohort math on float64 ndarrays."""

    name = "numpy"

    @staticmethod
    def from_list(values: Sequence[float]):
        return _np.array(values, dtype=_np.float64)

    @staticmethod
    def to_list(arr) -> list[float]:
        return arr.tolist()

    @staticmethod
    def delete(arr, index: int):
        return _np.delete(arr, index)

    @staticmethod
    def any_out_of_range(true_arr, range_arr) -> int | None:
        """Index of the first member whose true current exceeds its
        sensor range (member order, matching the scalar firing order),
        or None when all are in range."""
        mask = _np.abs(true_arr) > range_arr
        if not mask.any():
            return None
        return int(mask.argmax())

    @staticmethod
    def sample(true_arr, gain, offset, noise, lsb, voltage, interval_s,
               energy_total, true_total):
        """One measurement tick for the whole cohort.

        Mirrors ``Ina219.measure_ma`` + ``EnergyMeter.sample`` exactly:
        ``noisy = true*gain + offset (+ noise)``, LSB quantisation via
        round-half-even, the ``max(0.0, reading)`` clamp, and the
        ``reading * voltage * interval / 3600`` energy form.  Mutates the
        two running totals in place and returns
        ``(reading, energy)``.
        """
        noisy = true_arr * gain + offset + noise
        quantised = _np.rint(noisy / lsb) * lsb
        # max(0.0, x) keeps +0.0 for x in {-0.0, +0.0}; np.where with a
        # strict > reproduces that (np.maximum would propagate -0.0).
        reading = _np.where(quantised > 0.0, quantised, 0.0)
        energy = reading * voltage * interval_s / 3600.0
        energy_total += energy
        true_total += true_arr * voltage * interval_s / 3600.0
        return reading, energy

    @staticmethod
    def rtc_read(now: float, last_sync, ppm, aging):
        """Batch ``Ds3231Rtc.read`` for offset-free, synced clocks."""
        elapsed = now - last_sync
        years = elapsed / _SECONDS_PER_YEAR
        effective_ppm = ppm + aging * years
        # Scalar form is (now + offset) + elapsed*ppm*1e-6 with
        # offset == 0.0; now + 0.0 == now bitwise for now > 0.
        return now + elapsed * effective_ppm * 1e-6

    @staticmethod
    def accumulate_idle(idle_time, entered_at, now: float):
        """MCU idle-state accounting for one tick (IDLE -> TX -> IDLE
        collapses to idle_time += now - entered_at; entered_at = now)."""
        idle_time += now - entered_at
        entered_at[:] = now

    @staticmethod
    def host_delays(rng, median: float, sigma: float, now: float, count: int):
        """Arrival times of a cohort's reports at the aggregator host.

        One batched lognormal draw consumes the host stream exactly like
        ``count`` sequential ``RaspberryPi.processing_latency_s`` calls
        (numpy's Generator produces bit-identical values and final state
        either way).
        """
        if sigma == 0:
            return [now + median] * count
        delays = median * rng.lognormal(0.0, sigma, size=count)
        return (now + delays).tolist()

    @staticmethod
    def stable_order(times: list[float]) -> list[int]:
        return _np.argsort(times, kind="stable").tolist()

    @staticmethod
    def noise_block(rng, std: float, count: int) -> list[float]:
        """``count`` sensor-noise draws, consuming the stream exactly
        like ``count`` sequential scalar ``rng.normal(0.0, std)``."""
        return rng.normal(0.0, std, size=count).tolist()


class PythonBackend:
    """The same kernel on ``array('d')`` storage with Python loops.

    Element order of operations is identical to :class:`NumpyBackend`
    (and to the scalar stack), so results stay bit-identical — only
    slower.  Keeps the fleet functional when numpy is absent.
    """

    name = "python"

    @staticmethod
    def from_list(values: Sequence[float]):
        return array("d", values)

    @staticmethod
    def to_list(arr) -> list[float]:
        return list(arr)

    @staticmethod
    def delete(arr, index: int):
        out = array("d", arr)
        del out[index]
        return out

    @staticmethod
    def any_out_of_range(true_arr, range_arr) -> int | None:
        for i, value in enumerate(true_arr):
            if abs(value) > range_arr[i]:
                return i
        return None

    @staticmethod
    def sample(true_arr, gain, offset, noise, lsb, voltage, interval_s,
               energy_total, true_total):
        n = len(true_arr)
        reading = array("d", bytes(8 * n))
        energy = array("d", bytes(8 * n))
        for i in range(n):
            true = true_arr[i]
            noisy = true * gain[i] + offset[i] + noise[i]
            quantised = round(noisy / lsb[i]) * lsb[i]
            r = max(0.0, quantised)
            e = r * voltage[i] * interval_s / 3600.0
            reading[i] = r
            energy[i] = e
            energy_total[i] += e
            true_total[i] += true * voltage[i] * interval_s / 3600.0
        return reading, energy

    @staticmethod
    def rtc_read(now: float, last_sync, ppm, aging):
        out = array("d", bytes(8 * len(ppm)))
        for i in range(len(ppm)):
            elapsed = now - last_sync[i]
            years = elapsed / _SECONDS_PER_YEAR
            effective_ppm = ppm[i] + aging[i] * years
            out[i] = now + elapsed * effective_ppm * 1e-6
        return out

    @staticmethod
    def accumulate_idle(idle_time, entered_at, now: float):
        for i in range(len(idle_time)):
            idle_time[i] += now - entered_at[i]
            entered_at[i] = now

    @staticmethod
    def host_delays(rng, median: float, sigma: float, now: float, count: int):
        if sigma == 0:
            return [now + median] * count
        return [now + median * float(rng.lognormal(0.0, sigma)) for _ in range(count)]

    @staticmethod
    def stable_order(times: list[float]) -> list[int]:
        return sorted(range(len(times)), key=times.__getitem__)

    @staticmethod
    def noise_block(rng, std: float, count: int) -> list[float]:
        return [float(rng.normal(0.0, std)) for _ in range(count)]


def select_backend(force_python: bool = False):
    """The fastest available backend (or the Python one on request)."""
    if force_python or not HAS_NUMPY:
        return PythonBackend
    return NumpyBackend
