"""Array-backed cohort actor for steady-state metering devices.

One :class:`VectorFleet` per scenario watches the device population.  A
periodic scan folds every *quiescent* device — registered home member,
connected, empty store, no in-flight reports, no faults anywhere near
its path — into a per-(aggregator, tick-phase) cohort.  Each cohort
replaces its members' per-device firmware tasks with **one** kernel
event per measurement tick (plus one shared delivery event per instant),
computing the INA219 sampling, energy accounting, RTC stamping and MCU
power-state bookkeeping across the whole cohort in arrays.

The moment anything interesting happens to a member — roaming, an
injected fault, an anomaly Nack, a management command, a ledger-sync
policy — the device **de-vectorizes**: its arrays are written back (they
are written back eagerly every tick anyway), its sensor-noise RNG is
replayed to the exact scalar position, and its real
:class:`~repro.device.stack.MeteringDevice` firmware task resumes on the
same tick grid.  It may re-join a cohort at a later scan once quiescent
again.

Determinism contract (holds for steady-state runs, i.e. runs where no
member de-vectorizes): ledger digest, counters, summaries and
monitoring exports are bit-identical to the scalar path.  The fleet
achieves this by

* drawing per-device sensor noise and per-report host latencies from
  the *same* RNG streams in the *same* order as the scalar path (batch
  draws are bit-compatible with sequential draws),
* replicating the scalar operation order of every float expression,
* processing reports inline only when no other kernel event (and no
  shard window boundary) falls before the report's arrival time, and
  deferring to the real ``AggregatorUnit._process_report`` otherwise.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Any

from repro.aggregator.membership import MembershipKind
from repro.hw.esp32 import McuState
from repro.protocol.device_fsm import DevicePhase
from repro.protocol.messages import ConsumptionReport
from repro.transport.direct import DirectHub, DirectLink, DirectTransport
from repro.vector.backend import select_backend

if TYPE_CHECKING:
    from repro.device.stack import MeteringDevice
    from repro.runtime.scenario import Scenario
    from repro.runtime.spec import VectorSpec

_IDLE_INDEX = McuState.IDLE.index

#: Sensor-noise draws prefetched per member between generator snapshots.
_NOISE_BLOCK = 64


class _Member:
    """Cached per-device handles for the cohort hot loops."""

    __slots__ = (
        "device", "unit", "meter", "sensor", "firmware", "mcu", "rtc",
        "profile", "idle_ma", "noise_std", "noise_state", "name", "uid",
        "device_id", "reports_key", "published_key", "series",
    )

    def __init__(self, device: "MeteringDevice", unit: Any) -> None:
        self.device = device
        self.unit = unit
        self.meter = device._meter
        self.sensor = device._sensor
        self.firmware = device._firmware
        self.mcu = device._mcu
        self.rtc = device._rtc
        self.profile = device._load_profile
        self.idle_ma = device._mcu._draw_by_index[_IDLE_INDEX]
        self.noise_std = device._sensor._config.noise_std_ma
        self.noise_state = None
        self.name = device.name
        self.device_id = device._device_id
        self.uid = device._device_id.uid
        self.reports_key = f"{device.name}.reports_sent"
        self.published_key = f"{device.name}-link.published"
        # Same cache the scalar report path fills on first report.
        received_keys = unit._received_keys
        key = received_keys.get(self.device_id)
        if key is None:
            key = received_keys[self.device_id] = f"received:{self.device_id.name}"
        self.series = unit._bank.series(key, "mA")


class Cohort:
    """Devices of one aggregator sharing one measurement-tick phase."""

    def __init__(self, fleet: "VectorFleet", unit: Any, interval_s: float,
                 first_tick: float, index: int) -> None:
        self._fleet = fleet
        self._sim = fleet._sim
        self._backend = fleet._backend
        self._unit = unit
        self._interval_s = interval_s
        self.next_tick = first_tick
        self._members: list[_Member] = []
        self._seqs: list[int] = []
        self._task = None
        self.sample_label = f"vector:sample:{unit.name}:{index}"
        # Parallel arrays, one slot per member (rebuilt on join/release).
        self._gain = None
        self._offset = None
        self._lsb = None
        self._range = None
        self._voltage = None
        self._ppm = None
        self._aging = None
        self._last_sync = None
        self._energy_total = None
        self._true_total = None
        self._idle_time = None
        self._entered_at = None
        self._noise_ticks: list = []
        self._noise_cursor = 0

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> list["_Member"]:
        return list(self._members)

    @property
    def interval_s(self) -> float:
        return self._interval_s

    # -- membership -----------------------------------------------------

    def add(self, device: "MeteringDevice", unit: Any) -> None:
        """Fold ``device`` in: cancel its firmware task, take over its
        pending tick, and extend the arrays."""
        member = _Member(device, unit)
        device._firmware.stop()
        members = list(self._members)
        members.append(member)
        seqs = list(self._seqs)
        seqs.append(device._sequence)
        self._install(members, seqs)
        device._vector_cohort = self
        self._fleet._watch_link(device)
        if self._task is None:
            self._task = self._sim.every(
                self._interval_s, self._tick,
                first_at=self.next_tick, label=self.sample_label,
            )

    def release(self, device: "MeteringDevice", reason: str) -> None:
        """De-vectorize ``device`` back to its full per-object actor.

        All observable device state is written back eagerly every tick,
        so only two things remain: replaying the sensor-noise stream to
        the exact position the scalar path would have reached, and
        re-arming the real firmware task on the same tick grid.
        """
        index = None
        for i, member in enumerate(self._members):
            if member.device is device:
                index = i
                break
        if index is None:
            return
        member = self._members[index]
        self._replay_noise()
        members = list(self._members)
        del members[index]
        seqs = list(self._seqs)
        del seqs[index]
        self._install(members, seqs)
        device._vector_cohort = None
        first_at = self.next_tick
        if first_at < self._sim.clock.now:
            # The cohort already ticked at this instant; resume on the
            # following grid point (matches the periodic re-arm).
            first_at = self._sim.clock.now + self._interval_s
        device._firmware.start(first_at=first_at)
        # Re-arm the cohort task AFTER the released device's firmware so
        # the fresh cohort event sequences after it: at a shared tick
        # instant the scalar device then transmits (and creates the hub
        # drain event) before the cohort stages its delivery, keeping
        # the host latency draws in scalar arrival order.
        if self._task is not None:
            self._task.stop()
            self._task = None
        if self._members:
            self._task = self._sim.every(
                self._interval_s, self._tick,
                first_at=first_at, label=self.sample_label,
            )
        device.trace("device.devectorized", reason=reason)

    def _install(self, members: list[_Member], seqs: list[int]) -> None:
        """Swap in a new member list and rebuild every parallel array."""
        # Rewind any outstanding noise block first: successive add()
        # calls in one scan each rebuild, and without the rewind every
        # previously-added member's generator would skip a whole block.
        self._replay_noise()
        backend = self._backend
        self._members = members
        self._seqs = seqs
        self._gain = backend.from_list([m.sensor._gain for m in members])
        self._offset = backend.from_list([m.sensor._offset_ma for m in members])
        self._lsb = backend.from_list([m.sensor._config.lsb_ma for m in members])
        self._range = backend.from_list([m.sensor._config.range_ma for m in members])
        self._voltage = backend.from_list([m.meter._voltage_v for m in members])
        self._ppm = backend.from_list([m.rtc._ppm for m in members])
        self._aging = backend.from_list([m.rtc._aging_ppm_per_year for m in members])
        self._last_sync = backend.from_list(
            [m.rtc._last_sync_true_time for m in members]
        )
        self._energy_total = backend.from_list(
            [m.meter._total_energy_mwh for m in members]
        )
        self._true_total = backend.from_list(
            [m.meter._total_true_energy_mwh for m in members]
        )
        self._idle_time = backend.from_list(
            [m.mcu._time_by_index[_IDLE_INDEX] for m in members]
        )
        self._entered_at = backend.from_list(
            [m.mcu._state_entered_at for m in members]
        )
        self._prefetch_noise()

    # -- sensor-noise stream management ---------------------------------

    def _prefetch_noise(self) -> None:
        """Snapshot each member's sensor generator and draw a block.

        A block draw consumes the stream exactly like the same number of
        sequential scalar draws, so a member can later be rewound to any
        intermediate position (see :meth:`_replay_noise`).
        """
        backend = self._backend
        blocks = []
        for member in self._members:
            if member.noise_std > 0:
                gen = member.sensor._rng
                member.noise_state = gen.bit_generator.state
                blocks.append(backend.noise_block(gen, member.noise_std, _NOISE_BLOCK))
            else:
                member.noise_state = None
                blocks.append([0.0] * _NOISE_BLOCK)
        self._noise_ticks = [
            backend.from_list([block[k] for block in blocks])
            for k in range(_NOISE_BLOCK)
        ]
        self._noise_cursor = 0

    def _replay_noise(self) -> None:
        """Rewind every member's sensor generator to the consumed
        position: restore the pre-block snapshot, then redraw exactly
        the consumed count (bit-compatible with sequential draws)."""
        consumed = self._noise_cursor
        for member in self._members:
            if member.noise_state is None:
                continue
            gen = member.sensor._rng
            gen.bit_generator.state = member.noise_state
            if consumed:
                gen.normal(0.0, member.noise_std, size=consumed)
            member.noise_state = None
        self._noise_ticks = []
        self._noise_cursor = 0

    # -- the measurement tick (event A) ---------------------------------

    def _tick(self) -> None:
        members = self._members
        if not members:
            return
        backend = self._backend
        now = self._sim.clock.now
        self.next_tick = now + self._interval_s
        # A time-sync round at this instant fired before us (it was
        # armed earlier); all member clocks discipline together, so one
        # representative detects it.
        if members[0].rtc._last_sync_true_time != self._last_sync[0]:
            self._last_sync = backend.from_list(
                [m.rtc._last_sync_true_time for m in members]
            )
        # Ground truth: load profile + MCU idle draw (the scalar sample
        # runs before the WIFI_TX transition, so the MCU reads IDLE).
        true_list = [m.profile(now) + m.idle_ma for m in members]
        true_arr = backend.from_list(true_list)
        bad = backend.any_out_of_range(true_arr, self._range)
        if bad is not None:
            from repro.errors import SensorRangeError

            member = members[bad]
            raise SensorRangeError(
                f"current {true_list[bad]} mA exceeds "
                f"+/-{member.sensor._config.range_ma} mA range"
            )
        if self._noise_cursor >= len(self._noise_ticks):
            self._prefetch_noise()
        noise = self._noise_ticks[self._noise_cursor]
        self._noise_cursor += 1
        reading, energy = backend.sample(
            true_arr, self._gain, self._offset, noise, self._lsb,
            self._voltage, self._interval_s, self._energy_total, self._true_total,
        )
        measured = backend.rtc_read(now, self._last_sync, self._ppm, self._aging)
        backend.accumulate_idle(self._idle_time, self._entered_at, now)

        current_list = backend.to_list(reading)
        energy_list = backend.to_list(energy)
        measured_list = backend.to_list(measured)
        energy_total_list = backend.to_list(self._energy_total)
        true_total_list = backend.to_list(self._true_total)
        idle_list = backend.to_list(self._idle_time)

        counts = self._fleet._counts
        counts_get = counts.get
        seqs = self._seqs
        tick_seqs = []
        for i, member in enumerate(members):
            device = member.device
            meter = member.meter
            meter._total_energy_mwh = energy_total_list[i]
            meter._total_true_energy_mwh = true_total_list[i]
            member.sensor._readings_taken += 1
            member.firmware._samples_taken += 1
            sequence = seqs[i]
            tick_seqs.append(sequence)
            seqs[i] = sequence + 1
            device._sequence = sequence + 1
            device._reports_sent += 1
            mcu = member.mcu
            mcu._time_by_index[_IDLE_INDEX] = idle_list[i]
            mcu._state_entered_at = now
            counts[member.reports_key] = counts_get(member.reports_key, 0) + 1
            counts[member.published_key] = counts_get(member.published_key, 0) + 1
        # The whole tick's reports route through the hub in one batch in
        # the scalar path; account them here (the hub never sees them).
        self._unit._broker._messages_routed += len(members)
        self._fleet._stage_delivery(
            self, now, members, tick_seqs, current_list, energy_list, measured_list
        )


class VectorFleet:
    """Scenario-wide coordinator: scans, cohorts, shared delivery."""

    def __init__(self, scenario: "Scenario", spec: "VectorSpec") -> None:
        self._scenario = scenario
        self._spec = spec
        context = scenario.context
        self._sim = scenario.simulator
        self._counts = context.counters._counts
        self._backend = select_backend(force_python=spec.backend == "python")
        self._latency_s = scenario.transport.latency_s
        self._cohorts: list[Cohort] = []
        self._cohort_counter = 0
        self._pending: list[tuple] = []
        self._deliver_armed = False
        self.deliver_label = "vector:deliver"
        self._last_deliver_weight = 0
        #: Shard window boundary: reports arriving at or past it defer
        #: to real kernel events (the conservative-sync barrier may
        #: inject cross-shard messages before they are due).
        self.window_horizon = math.inf
        self._watched_links: set[int] = set()
        self._units_by_hub: dict[int, Any] = {}
        transport = scenario.transport
        if isinstance(transport, DirectTransport):
            transport._state_watchers.append(self._on_transport_fault)
        for unit in scenario.aggregators.values():
            hub = unit._broker
            if isinstance(hub, DirectHub):
                self._units_by_hub[id(hub)] = unit
                hub._state_watchers.append(self._on_hub_fault)
        # Phase the scan off the measurement grid: a scan landing on the
        # exact tick instant races same-instant firmware events (float
        # drift decides which side fires first) and always sees the
        # just-sent report in flight.  Mid-interval the steady-state
        # fleet is quiescent — reports acked, MCU idle, store empty.
        first_scan = self._sim.clock.now + spec.scan_interval_s * 0.55
        self._scan_task = self._sim.every(
            spec.scan_interval_s, self._scan, first_at=first_scan,
            label="vector:scan",
        )
        profiler = self._sim.profiler
        if profiler is not None and hasattr(profiler, "set_weight"):
            profiler.set_weight(
                self.deliver_label, lambda: self._last_deliver_weight
            )

    # -- introspection ----------------------------------------------------

    @property
    def cohorts(self) -> list[Cohort]:
        """Live cohorts (for tests and observability)."""
        return [c for c in self._cohorts if len(c)]

    @property
    def vectorized_count(self) -> int:
        """Devices currently executing in array form."""
        return sum(len(c) for c in self._cohorts)

    def stop(self) -> None:
        """Release everything and stop scanning (end of run)."""
        self.release_all("stopped")
        self._scan_task.stop()

    # -- scanning ---------------------------------------------------------

    def _scan(self) -> None:
        groups: dict[tuple, list[tuple]] = {}
        for device in self._scenario.devices.values():
            if device._vector_cohort is not None:
                continue
            unit = self._eligible(device)
            if unit is None:
                continue
            task = device._firmware._task
            pending = task._event
            key = (unit.name, device._firmware._t_measure_s, pending.time)
            groups.setdefault(key, []).append((device, unit))
        for (unit_name, interval, first_tick), entries in groups.items():
            cohort = None
            for existing in self._cohorts:
                if (
                    existing._unit.name == unit_name
                    and existing._interval_s == interval
                    and len(existing)
                    and existing.next_tick == first_tick
                ):
                    cohort = existing
                    break
            if cohort is None:
                if len(entries) < self._spec.min_cohort:
                    continue
                cohort = Cohort(
                    self, entries[0][1], interval, first_tick, self._cohort_counter
                )
                self._cohort_counter += 1
                self._cohorts.append(cohort)
                profiler = self._sim.profiler
                if profiler is not None and hasattr(profiler, "set_weight"):
                    profiler.set_weight(
                        cohort.sample_label, lambda c=cohort: len(c)
                    )
            for device, unit in entries:
                cohort.add(device, unit)

    def _eligible(self, device: "MeteringDevice") -> Any | None:
        """The device's aggregator unit when it is safely quiescent."""
        unit = device._current_ap
        if unit is None or unit is not self._scenario.aggregators.get(unit.aggregator_id.name):
            return None
        if self._sim.spans.enabled:
            return None
        fsm = device._fsm
        if fsm.phase is not DevicePhase.REPORTING:
            return None
        if fsm.master is None or fsm.temporary is not None:
            return None
        if not device._client.connected:
            return None
        if not device._store.is_empty:
            return None
        if device._inflight or device._report_attempts:
            return None
        if device._reg_watchdog is not None or device._handshake_span is not None:
            return None
        if device._tamper_attack is not None:
            return None
        if device._sync_client is not None:
            return None
        handshake = device.last_handshake
        if handshake is None or handshake.registered_at is None:
            return None
        firmware = device._firmware
        if firmware._task is None or firmware._task._event is None:
            return None
        rtc = device._rtc
        if rtc._offset_s != 0.0:
            return None
        if device._mcu._state is not McuState.IDLE:
            return None
        member = unit._registry.get(device._device_id)
        if member is None or member.kind is not MembershipKind.MASTER:
            return None
        hub = unit._broker
        if not isinstance(hub, DirectHub) or hub._down or hub._injector is not None:
            return None
        link = device._client
        if not isinstance(link, DirectLink) or link._injector is not None:
            return None
        if link._endpoint is not hub:
            return None
        transport = self._scenario.transport
        if not isinstance(transport, DirectTransport):
            return None
        if transport._injector is not None or transport.loss_p != 0.0:
            return None
        return unit

    # -- de-vectorization -------------------------------------------------

    def release_all(self, reason: str) -> None:
        """Return every vectorized device to its per-object actor."""
        for cohort in self._cohorts:
            for member in cohort.members:
                cohort.release(member.device, reason)

    def _on_transport_fault(self) -> None:
        self.release_all("transport_fault")

    def _on_hub_fault(self, hub: Any) -> None:
        unit = self._units_by_hub.get(id(hub))
        if unit is None:
            self.release_all("hub_fault")
            return
        for cohort in self._cohorts:
            if cohort._unit is unit:
                for member in cohort.members:
                    cohort.release(member.device, "hub_fault")

    def _watch_link(self, device: "MeteringDevice") -> None:
        link = device._client
        if id(link) in self._watched_links:
            return
        self._watched_links.add(id(link))

        def _on_link_fault() -> None:
            cohort = device._vector_cohort
            if cohort is not None:
                cohort.release(device, "link_fault")

        link._state_watchers.append(_on_link_fault)

    # -- the delivery event (event B) -------------------------------------

    def _stage_delivery(self, cohort: Cohort, tick_time: float, members, seqs,
                        currents, energies, measureds) -> None:
        self._pending.append(
            (cohort, tick_time, members, seqs, currents, energies, measureds)
        )
        if not self._deliver_armed:
            self._deliver_armed = True
            self._sim.call_later(
                self._latency_s, self._deliver, label=self.deliver_label
            )

    def _deliver(self) -> None:
        """Process every pending cohort's reports at arrival.

        Replicates, in exact arrival order, what one hub drain plus N
        ``_process_report`` events do in the scalar path.  A report is
        handled inline only when its arrival time precedes both the next
        pending kernel event and the shard window horizon *and* it would
        sail through screening; anything else becomes a real deferred
        ``_process_report`` event at its exact arrival time.
        """
        pending = self._pending
        self._pending = []
        self._deliver_armed = False
        self._last_deliver_weight = sum(len(entry[2]) for entry in pending)
        sim = self._sim
        backend = self._backend
        now = sim.clock.now
        horizon = self.window_horizon
        next_event = sim.queue.peek_time()
        cutoff = horizon if next_event is None or next_event > horizon else next_event
        for cohort, tick_time, members, seqs, currents, energies, measureds in pending:
            unit = cohort._unit
            count = len(members)
            host = unit._host
            arrival = backend.host_delays(
                host._rng, host._median, host._sigma, now, count
            )
            order = backend.stable_order(arrival)
            registry_get = unit._registry._members.get
            verifier = unit._verifier
            stats = verifier.stats
            policy = verifier._policy
            max_ma = policy.max_current_ma
            use_history = policy.use_history_screen
            histories = verifier._histories
            aggregation = unit._aggregation
            writer_queue = unit._writer._queue
            broker = unit._broker
            acks_key = unit._counter_names.get("acks_sent")
            if acks_key is None:
                acks_key = unit._counter_names["acks_sent"] = f"{unit.name}.acks_sent"
            counts = self._counts
            network_name = unit._aggregator_id.name
            interval_s = cohort.interval_s
            writer_append = writer_queue.append
            # Counter bumps batch to one update per cohort: nothing can
            # observe intermediate values inside this single event.
            screened = 0
            accepted = 0
            for position in order:
                arrived_at = arrival[position]
                member = members[position]
                current_ma = currents[position]
                if arrived_at < cutoff:
                    membership = registry_get(member.device_id)
                    if (
                        membership is not None
                        and membership.kind is MembershipKind.MASTER
                        and 0.0 <= current_ma <= max_ma
                    ):
                        if use_history:
                            detector = histories.get(member.device_id)
                            if detector is None:
                                detector = verifier._history_for(member.device_id)
                            ordered = detector._ordered
                            window = detector._window
                            if len(ordered) >= window.maxlen / 2:
                                median = ordered[len(ordered) // 2]
                                if (
                                    median > 1e-9
                                    and abs(current_ma - median) / median
                                    > detector._threshold
                                ):
                                    self._defer(
                                        cohort, tick_time, member, seqs[position],
                                        current_ma, energies[position],
                                        measureds[position], arrived_at,
                                    )
                                    continue
                            if len(window) == window.maxlen:
                                del ordered[bisect_left(ordered, window[0])]
                            window.append(current_ma)
                            insort(ordered, current_ma)
                        screened += 1
                        membership.last_report_at = arrived_at
                        aggregation.add_report(
                            member.device_id, measureds[position], current_ma
                        )
                        member.series.append(arrived_at, current_ma)
                        writer_append({
                            "device": member.name,
                            "device_uid": member.uid,
                            "sequence": seqs[position],
                            "measured_at": measureds[position],
                            "interval_s": interval_s,
                            "current_ma": current_ma,
                            "voltage_v": member.meter._voltage_v,
                            "energy_mwh": energies[position],
                            "buffered": False,
                            "roaming": False,
                            "network": network_name,
                        })
                        accepted += 1
                        # The Ack rides its own hub drain in the scalar
                        # path; its only lasting effects are the device's
                        # acked set and the batched counters below.
                        member.device._acked_sequences.add(seqs[position])
                        continue
                self._defer(
                    cohort, tick_time, member, seqs[position], current_ma,
                    energies[position], measureds[position], arrived_at,
                )
            if screened:
                stats.reports_screened += screened
            if accepted:
                unit._acks_sent += accepted
                counts[acks_key] = counts.get(acks_key, 0) + accepted
                broker._messages_routed += accepted

    def _defer(self, cohort: Cohort, tick_time: float, member: _Member,
               sequence: int, current_ma: float, energy_mwh: float,
               measured_at: float, arrived_at: float) -> None:
        """Fall back to the real aggregator path for one report.

        Builds the exact :class:`ConsumptionReport` the scalar transmit
        would have produced, restores the device's in-flight window and
        Ack-timeout watchdog (armed at transmit time, i.e. the tick),
        and schedules the real ``_process_report`` at the exact arrival
        time — screening, Nacks and Acks then run through the normal
        machinery, including the de-vectorization hook on the device's
        control topic.
        """
        device = member.device
        report = ConsumptionReport(
            device_id=member.device_id,
            master=device._fsm.master,
            temporary=None,
            sequence=sequence,
            measured_at=measured_at,
            interval_s=cohort.interval_s,
            current_ma=current_ma,
            voltage_v=member.meter._voltage_v,
            energy_mwh=energy_mwh,
            buffered=False,
        )
        device._inflight[sequence] = report
        retry = device._config.retry
        sim = self._sim
        if retry is not None:
            sim.schedule(
                tick_time + retry.timeout_s,
                lambda: device._on_report_timeout(sequence),
                label=device._ack_timeout_label,
            )
        unit = cohort._unit
        sim.schedule(
            arrived_at,
            lambda: unit._process_report(report, None),
            label=unit._report_label,
        )
