"""Vectorized fleet execution.

Folds homogeneous steady-state devices into array-backed cohort actors
(:class:`~repro.vector.fleet.VectorFleet`): one kernel event per cohort
per measurement tick instead of ~4 events per device, with the full
per-object :class:`~repro.device.stack.MeteringDevice` actor restored
the moment anything interesting happens to a member.

The contract is strict: on a steady-state run the vectorized path
produces the same ledger digest, counters, summaries and monitoring
exports as the scalar path, bit for bit.
"""

from repro.vector.backend import HAS_NUMPY, select_backend
from repro.vector.fleet import VectorFleet

__all__ = ["HAS_NUMPY", "select_backend", "VectorFleet"]
