"""The composed IoT metering device (all Fig. 2 layers as one actor).

:class:`MeteringDevice` wires the hardware models, the firmware sampling
task, the radio/MQTT network layer, the data layer (store-and-forward)
and the protocol state machine together, and drives the Fig. 3 sequences
against whatever network it is currently in.

Interaction surface with the aggregator is deliberately narrow — an
:class:`AccessPoint` exposes the aggregator's identity and its transport
:class:`~repro.transport.base.Endpoint`; everything else flows through
protocol messages on topics:

* uplink ``meter/{device}/register`` and ``meter/{device}/report``,
* downlink ``device/{device}/ctrl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol

from repro.device.firmware import Firmware
from repro.device.metering import EnergyMeter, Measurement
from repro.device.storage import LocalStore
from repro.errors import ConfigError, ProtocolError
from repro.faults.retry import RetryPolicy
from repro.grid.topology import GridTopology
from repro.hw.ds3231 import Ds3231Rtc
from repro.hw.esp32 import Esp32Mcu, McuState
from repro.hw.ina219 import Ina219, Ina219Config
from repro.ids import AggregatorId, DeviceId
from repro.chain.sync import (
    Checkpoint,
    HeaderChain,
    HeaderRecord,
    LedgerSyncClient,
    SyncPolicy,
    SyncStats,
)
from repro.net.channel import WirelessChannel
from repro.protocol.codec import as_message, encode_message, encoded_size
from repro.protocol.device_fsm import DeviceFsm, DevicePhase, FsmDecision
from repro.protocol.messages import (
    Ack,
    ConsumptionReport,
    HeaderBatchRequest,
    HeaderBatchResponse,
    MgmtCommand,
    MgmtResponse,
    Nack,
    NackReason,
    ReceiptRequest,
    ReceiptResponse,
    RegistrationRequest,
    RegistrationResponse,
    RemoveDevice,
    TransferMembership,
)

if TYPE_CHECKING:
    from repro.chain.receipts import InclusionReceipt
    from repro.net.timesync import TimeSyncService
    from repro.runtime.context import SimContext
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.transport.base import DeviceLink, Endpoint, QoS, RadioModel, Transport
from repro.units import energy_mwh

LoadProfile = Callable[[float], float]


class AccessPoint(Protocol):
    """What a device needs to know about the aggregator it talks to.

    Transport-generic: the device sees an abstract
    :class:`~repro.transport.base.Endpoint`, never a concrete broker —
    which backend routes the messages is the scenario's choice.
    """

    @property
    def aggregator_id(self) -> AggregatorId:
        """Identity of the aggregator (names its grid network)."""
        ...

    @property
    def endpoint(self) -> Endpoint:
        """The transport endpoint hosted by this aggregator."""
        ...

    @property
    def timesync(self) -> "TimeSyncService":
        """The RTC-discipline service of this network."""
        ...


@dataclass(frozen=True)
class DeviceConfig:
    """Static configuration of one metering device.

    Attributes:
        t_measure_s: Measurement/reporting interval (paper: 0.1 s).
        voltage_v: Device supply voltage (ESP32 Thing: 3.3 V; an
            e-scooter charger would be mains-side, still one number).
        storage_capacity: Local store-and-forward capacity (records).
        sensor: INA219 configuration.
        report_qos: QoS for consumption reports.
        flush_batch: Buffered records flushed per transmission slot.
        registration_retry_s: Backoff before re-requesting membership
            after a NETWORK_FULL refusal.
        retry: Ack-timeout/backoff policy for the report path.  An
            in-flight report whose Ack never arrives re-enters the local
            store and is flushed again after a jittered exponential
            backoff, up to the policy's attempt budget.  ``None``
            restores the legacy behaviour (unacknowledged reports are
            lost with the session).
        ledger_sync: Lightweight-client ledger sync policy.  When set,
            the device periodically pulls block headers from its
            aggregator and verifies inclusion receipts fully offline
            against the header chain.  ``None`` (default) disables sync.
    """

    t_measure_s: float = 0.1
    voltage_v: float = 3.3
    storage_capacity: int = 4096
    sensor: Ina219Config = field(default_factory=Ina219Config)
    report_qos: QoS = QoS.AT_LEAST_ONCE
    flush_batch: int = 64
    registration_retry_s: float = 5.0
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    ledger_sync: SyncPolicy | None = None

    def __post_init__(self) -> None:
        if self.t_measure_s <= 0:
            raise ConfigError(f"t_measure must be positive, got {self.t_measure_s}")
        if self.voltage_v <= 0:
            raise ConfigError(f"voltage must be positive, got {self.voltage_v}")
        if self.flush_batch <= 0:
            raise ConfigError(f"flush batch must be positive, got {self.flush_batch}")
        if self.registration_retry_s <= 0:
            raise ConfigError(
                f"registration retry must be positive, got {self.registration_retry_s}"
            )


@dataclass
class HandshakeRecord:
    """Timing of one network-entry handshake (for E3/A2)."""

    network: AggregatorId
    started_at: float
    scan_s: float = 0.0
    assoc_s: float = 0.0
    connect_s: float = 0.0
    registered_at: float | None = None
    temporary: bool = False

    @property
    def duration_s(self) -> float | None:
        """Total handshake time, or None while incomplete."""
        if self.registered_at is None:
            return None
        return self.registered_at - self.started_at


class MeteringDevice(Process):
    """One IoT-enabled device with in-device metering.

    Args:
        runtime: The kernel, or a shared :class:`SimContext` (the MQTT
            client inherits it, so the whole device stack emits into the
            same counter bank and trace stream).
        device_id: Identity of this device.
        config: Static configuration.
        grid: The electrical topology (for attach/detach).
        transport: The scenario's transport backend (link, radio and
            endpoint factories).  A bare
            :class:`~repro.net.channel.WirelessChannel` is accepted for
            backward compatibility and wrapped in an
            :class:`~repro.transport.mqtt.MqttTransport`.
        load_profile: Grid-side load current (mA) over time, *excluding*
            the MCU's own draw (added automatically).
    """

    def __init__(
        self,
        runtime: "Simulator | SimContext",
        device_id: DeviceId,
        config: DeviceConfig,
        grid: GridTopology,
        transport: Transport | WirelessChannel,
        load_profile: LoadProfile,
    ) -> None:
        super().__init__(runtime, device_id.name)
        if isinstance(transport, WirelessChannel):
            from repro.transport.mqtt import MqttTransport

            transport = MqttTransport(transport)
        self._device_id = device_id
        self._config = config
        self._grid = grid
        self._transport = transport
        self._load_profile = load_profile

        self._mcu = Esp32Mcu(supply_voltage_v=config.voltage_v)
        self._sensor = Ina219(config.sensor, self.rng("sensor"))
        self._rtc = Ds3231Rtc(self.rng("rtc"))
        self._radio: RadioModel = transport.make_radio(self)
        self._meter = EnergyMeter(self._sensor, self.true_current_ma, config.voltage_v)
        self._store = LocalStore(config.storage_capacity)
        self._fsm = DeviceFsm(device_id)
        self._firmware = Firmware(
            self.sim, self._meter, self._on_measurement, config.t_measure_s
        )
        self._client: DeviceLink = transport.make_link(self.context, device_id.name)
        # In-process backends take message dataclasses verbatim; radio
        # backends need the encoded wire bytes (and their size, for
        # airtime).  Resolved once — the link never changes backend.
        self._wire_bytes = self._client.wire_bytes

        # Set while this device executes inside an array-backed cohort
        # (see repro.vector): the cohort handle is what the
        # de-vectorization hooks below call back into.  Must exist
        # before any attribute with a de-vectorizing setter.
        self._vector_cohort: Any | None = None

        # The paper's threat model: "in-device energy metering is
        # susceptible to manipulation and fraud".  Installing an attack
        # here manipulates what the device *reports*; physical
        # consumption (what the feeder sees) is untouched.
        self._tamper_attack: Any | None = None

        self._sequence = 0
        self._current_ap: AccessPoint | None = None
        self._ap_distance_m = 5.0
        self._ctrl_topic = f"device/{device_id.name}/ctrl"
        # Report-path strings, built once: the per-measurement transmit
        # path must do zero string formatting per event.
        self._report_topic = f"meter/{device_id.name}/report"
        self._ack_timeout_label = f"{self.name}:ack-timeout"
        self._flush_label = f"{self.name}:flush"
        self._flush_retry_label = f"{self.name}:flush-retry"
        self._handshakes: list[HandshakeRecord] = []
        self._acked_sequences: set[int] = set()
        self._inflight: dict[int, ConsumptionReport] = {}
        self._report_attempts: dict[int, int] = {}
        self._reports_sent = 0
        self._reports_buffered = 0
        self._report_timeouts = 0
        self._retry_exhausted = 0
        self._flush_retries = 0
        self._registration_timeouts = 0
        self._reg_watchdog: Any | None = None
        self._receipts: dict[int, "InclusionReceipt | None"] = {}
        self._handshake_span: Any | None = None
        self._sync_client: LedgerSyncClient | None = (
            LedgerSyncClient(config.ledger_sync)
            if config.ledger_sync is not None
            else None
        )
        self._sync_task: Any | None = None
        self._sync_topic = f"meter/{device_id.name}/chainsync"

    # -- introspection ---------------------------------------------------

    @property
    def device_id(self) -> DeviceId:
        """This device's identity."""
        return self._device_id

    @property
    def config(self) -> DeviceConfig:
        """Static configuration."""
        return self._config

    @property
    def fsm(self) -> DeviceFsm:
        """The protocol state machine (read-mostly for assertions)."""
        return self._fsm

    @property
    def meter(self) -> EnergyMeter:
        """The energy meter."""
        return self._meter

    @property
    def store(self) -> LocalStore:
        """The local store-and-forward buffer."""
        return self._store

    @property
    def firmware(self) -> Firmware:
        """The sampling task (remote management can retune it)."""
        return self._firmware

    @property
    def rtc(self) -> Ds3231Rtc:
        """The device RTC (registered with the aggregator's time sync)."""
        return self._rtc

    @property
    def mcu(self) -> Esp32Mcu:
        """The MCU power-state model."""
        return self._mcu

    @property
    def handshakes(self) -> list[HandshakeRecord]:
        """Every network-entry handshake this device performed."""
        return list(self._handshakes)

    @property
    def last_handshake(self) -> HandshakeRecord | None:
        """Most recent handshake record, or None."""
        return self._handshakes[-1] if self._handshakes else None

    @property
    def tamper_attack(self) -> Any | None:
        """The installed metering attack, if any."""
        return self._tamper_attack

    @tamper_attack.setter
    def tamper_attack(self, attack: Any | None) -> None:
        self._tamper_attack = attack
        if attack is not None and self._vector_cohort is not None:
            # The cohort hot path assumes untampered reports; fall back
            # to the full per-object actor while the attack is active.
            self._vector_cohort.release(self, "tamper")

    @property
    def vectorized(self) -> bool:
        """Whether this device currently executes inside a cohort."""
        return self._vector_cohort is not None

    @property
    def sequences_issued(self) -> int:
        """Distinct report sequences ever built (one per measurement)."""
        return self._sequence

    @property
    def reports_sent(self) -> int:
        """Reports handed to MQTT (live + flushed)."""
        return self._reports_sent

    @property
    def reports_buffered(self) -> int:
        """Measurements diverted to local storage."""
        return self._reports_buffered

    @property
    def acked_count(self) -> int:
        """Distinct report sequences acknowledged by aggregators."""
        return len(self._acked_sequences)

    @property
    def acked_sequences(self) -> frozenset[int]:
        """The acknowledged report sequences themselves."""
        return frozenset(self._acked_sequences)

    @property
    def connected(self) -> bool:
        """Whether the transport session is currently up."""
        return self._client.connected

    @property
    def retry_stats(self) -> dict[str, int]:
        """Report-path resilience counters.

        ``report_timeouts``: in-flight reports whose Ack never came and
        that re-entered the store; ``flush_retries``: backoff-scheduled
        flush attempts; ``retry_exhausted``: reports whose active retry
        budget ran out (they stay parked in the store and ride later
        flushes); ``registration_timeouts``: registration rounds resent
        because no response (Ack or Nack) ever arrived.
        """
        return {
            "report_timeouts": self._report_timeouts,
            "flush_retries": self._flush_retries,
            "retry_exhausted": self._retry_exhausted,
            "registration_timeouts": self._registration_timeouts,
        }

    def true_current_ma(self, at_time: float) -> float:
        """Ground-truth terminal current: load profile + MCU draw."""
        return self._load_profile(at_time) + self._mcu.current_ma()

    # -- mobility ---------------------------------------------------------

    def enter_network(self, access_point: AccessPoint, distance_m: float = 5.0) -> None:
        """Electrically attach in ``access_point``'s network and join it.

        Models the Fig. 6 arrival: sampling (and hence local buffering)
        starts immediately with the electrical connection, while the
        radio scans, associates and connects MQTT — only then does the
        protocol handshake run.
        """
        if self._current_ap is not None:
            raise ProtocolError(f"{self.name} must leave its network before entering another")
        network_id = access_point.aggregator_id
        self._grid.attach(self._device_id, network_id, self.true_current_ma, self.now)
        self._current_ap = access_point
        self._ap_distance_m = distance_m
        self._firmware.start()
        self._fsm.begin_join()
        handshake = HandshakeRecord(network=network_id, started_at=self.now)
        self._handshakes.append(handshake)
        if self._spans.enabled:
            self._handshake_span = self._spans.begin(
                "membership.handshake", self.name, network=network_id.name
            )
        self.trace("device.enter_network", network=network_id.name)

        self._mcu.set_state(McuState.WIFI_RX, self.now)
        scan_s = self._radio.scan_duration_s()
        handshake.scan_s = scan_s
        rssi = self._radio.rssi_dbm(distance_m)

        def _scanned() -> None:
            assoc_s = self._radio.association_duration_s()
            handshake.assoc_s = assoc_s
            self.sim.call_later(assoc_s, _associated, label=f"{self.name}:assoc")

        def _associated() -> None:
            connect_s = self._client.connect(
                access_point.endpoint, rssi, on_connected=_connected
            )
            handshake.connect_s = connect_s

        def _connected() -> None:
            access_point.endpoint.subscribe(self._ctrl_topic, self._on_ctrl)
            # "All the devices in the network and the aggregators are
            # time-synchronized": put this RTC under the network's
            # discipline, with an immediate first correction.
            access_point.timesync.register_clock(self.name, self._rtc)
            self._rtc.synchronize(self.now)
            self._mcu.set_state(McuState.IDLE, self.now)
            self._arm_ledger_sync()
            decision = self._fsm.network_joined()
            self._apply_decision(decision)
            # The handshake completes at the first accepted report (home
            # re-entry) or at the registration response (new / foreign
            # network) — the device cannot tell which case it is yet.

        self.sim.call_later(scan_s, _scanned, label=f"{self.name}:scan")

    def select_network(
        self, candidates: list[tuple[AccessPoint, float]]
    ) -> tuple[AccessPoint, float, float]:
        """Pick the reporting aggregator by RSSI (paper footnote 2).

        "The Received Signal Strength Indicator (RSSI) is used by the
        device ... to detect its reporting aggregator."  Evaluates one
        (shadowed) RSSI sample per candidate ``(access_point,
        distance_m)`` and returns ``(best_ap, its_distance, its_rssi)``.
        """
        if not candidates:
            raise ProtocolError(f"{self.name} has no candidate networks to scan")
        best: tuple[AccessPoint, float, float] | None = None
        for access_point, distance_m in candidates:
            rssi = self._radio.rssi_dbm(distance_m)
            self.trace(
                "device.scan_candidate",
                network=access_point.aggregator_id.name,
                rssi_dbm=rssi,
            )
            if best is None or rssi > best[2]:
                best = (access_point, distance_m, rssi)
        return best

    def enter_best_network(
        self, candidates: list[tuple[AccessPoint, float]]
    ) -> AccessPoint:
        """Scan candidates, pick the strongest and enter its network."""
        access_point, distance_m, _ = self.select_network(candidates)
        self.enter_network(access_point, distance_m)
        return access_point

    def leave_network(self) -> None:
        """Electrically detach and drop all connectivity.

        Consumption stops with the electrical connection (transit draws
        nothing from the grid), so the firmware halts too.
        """
        if self._current_ap is None:
            raise ProtocolError(f"{self.name} is not in any network")
        if self._vector_cohort is not None:
            self._vector_cohort.release(self, "roam")
        if self._client.connected:
            try:
                self._current_ap.endpoint.unsubscribe(self._ctrl_topic, self._on_ctrl)
            except Exception:
                pass
            self._client.disconnect()
        self._current_ap.timesync.unregister_clock(self.name)
        self._grid.detach(self._device_id)
        self._firmware.stop()
        self._fsm.network_left()
        self._recover_inflight()
        if self._handshake_span is not None:
            # Leaving mid-handshake (e.g. roamed away before the
            # registration round resolved) abandons the conversation.
            self._spans.finish(self._handshake_span, "aborted")
            self._handshake_span = None
        self.trace("device.leave_network", network=self._current_ap.aggregator_id.name)
        self._current_ap = None
        self._mcu.set_state(McuState.LIGHT_SLEEP, self.now)

    def drop_connection(self) -> None:
        """Lose communication only — the grid attachment stays.

        Models a Wi-Fi fade or broker outage ("if there is ... a
        transmission or a registration failure, the raw energy
        consumption value while charging is temporarily stored in local
        memory", §II-C).  Sampling continues; measurements buffer until
        :meth:`reconnect`.
        """
        if self._current_ap is None:
            raise ProtocolError(f"{self.name} is not in any network")
        if not self._client.connected:
            raise ProtocolError(f"{self.name} is already disconnected")
        if self._vector_cohort is not None:
            self._vector_cohort.release(self, "connection_drop")
        try:
            self._current_ap.endpoint.unsubscribe(self._ctrl_topic, self._on_ctrl)
        except Exception:
            pass
        self._client.disconnect()
        # Sync runs over the network; no connection, no discipline.
        self._current_ap.timesync.unregister_clock(self.name)
        self._recover_inflight()
        self.trace("device.connection_lost")

    def reconnect(self) -> None:
        """Re-establish the session after a communication-only outage.

        The AP is known, so there is no full scan — re-association plus
        the MQTT connect.  Buffered data flushes after the first Ack.
        """
        if self._current_ap is None:
            raise ProtocolError(f"{self.name} is not in any network")
        if self._client.connected:
            raise ProtocolError(f"{self.name} is already connected")
        access_point = self._current_ap
        rssi = self._radio.rssi_dbm(self._ap_distance_m)
        assoc_s = self._radio.association_duration_s()

        def _associated() -> None:
            def _connected() -> None:
                access_point.endpoint.subscribe(self._ctrl_topic, self._on_ctrl)
                access_point.timesync.register_clock(self.name, self._rtc)
                self.trace("device.reconnected")

            self._client.connect(access_point.endpoint, rssi, on_connected=_connected)

        self.sim.call_later(assoc_s, _associated, label=f"{self.name}:reassoc")

    # -- data path ----------------------------------------------------------

    def _next_sequence(self) -> int:
        seq = self._sequence
        self._sequence += 1
        return seq

    def _build_report(self, measurement: Measurement, buffered: bool = False) -> ConsumptionReport:
        current_ma = measurement.current_ma
        reported_energy = measurement.energy_mwh
        if self._tamper_attack is not None:
            current_ma = self._tamper_attack.apply(current_ma)
            reported_energy = energy_mwh(
                current_ma, measurement.voltage_v, measurement.interval_s
            )
        return ConsumptionReport(
            device_id=self._device_id,
            master=self._fsm.master,
            temporary=self._fsm.temporary,
            sequence=self._next_sequence(),
            measured_at=self._rtc.read(measurement.measured_at),
            interval_s=measurement.interval_s,
            current_ma=current_ma,
            voltage_v=measurement.voltage_v,
            energy_mwh=reported_energy,
            buffered=buffered,
        )

    def _on_measurement(self, measurement: Measurement) -> None:
        report = self._build_report(measurement)
        if self._fsm.can_report and self._client.connected:
            self._transmit(report)
        else:
            self._store.store(report)
            self._reports_buffered += 1
            self.count("reports_buffered")
            self.trace("device.buffer", sequence=report.sequence)

    def _restamp_addresses(self, report: ConsumptionReport) -> ConsumptionReport:
        """Update a buffered report's addresses to the current membership."""
        if report.master == self._fsm.master and report.temporary == self._fsm.temporary:
            return report
        return ConsumptionReport(
            device_id=report.device_id,
            master=self._fsm.master,
            temporary=self._fsm.temporary,
            sequence=report.sequence,
            measured_at=report.measured_at,
            interval_s=report.interval_s,
            current_ma=report.current_ma,
            voltage_v=report.voltage_v,
            energy_mwh=report.energy_mwh,
            buffered=report.buffered,
        )

    def _publish_message(
        self, topic: str, message: Any, qos: QoS = QoS.AT_LEAST_ONCE
    ) -> bool:
        """Publish ``message`` in the link's wire form.

        Radio backends get encoded bytes plus the payload size that
        drives airtime; in-process backends get the frozen dataclass
        itself, skipping the codec round-trip per message.
        """
        if self._wire_bytes:
            payload = encode_message(message)
            return self._client.publish(
                topic, payload, qos=qos, payload_bytes=len(payload)
            )
        return self._client.publish(topic, message, qos=qos)

    def _transmit(self, report: ConsumptionReport) -> None:
        self._mcu.set_state(McuState.WIFI_TX, self.now)
        delivered = self._publish_message(
            self._report_topic, report, qos=self._config.report_qos
        )
        self._mcu.set_state(McuState.IDLE, self.now)
        if delivered:
            self._reports_sent += 1
            self.count("reports_sent")
            # Remember until Ack'd so a NOT_A_MEMBER Nack (foreign
            # network) can re-buffer the data instead of losing it.
            self._inflight[report.sequence] = report
            if self._config.retry is not None:
                sequence = report.sequence
                self.sim.call_later(
                    self._config.retry.timeout_s,
                    lambda: self._on_report_timeout(sequence),
                    label=self._ack_timeout_label,
                )
        else:
            # All QoS-1 retries failed (deep fade): keep the data.
            self._store.store(report)
            self._reports_buffered += 1
            self.count("reports_buffered")

    def _recover_inflight(self) -> None:
        """Tear down the in-flight window on a session loss.

        With a retry policy the unacknowledged reports re-enter the
        local store (an Ack that never came must be assumed lost;
        duplicates are deduplicated downstream by sequence).  Without
        one they are dropped with the session — the legacy behaviour.
        """
        if self._config.retry is not None:
            for sequence in sorted(self._inflight):
                self._store.store(self._inflight[sequence])
        self._inflight.clear()
        self._report_attempts.clear()
        self._cancel_reg_watchdog()

    def _on_report_timeout(self, sequence: int) -> None:
        """No Ack within the policy timeout: recover the report.

        The report re-enters the local store (so the data survives) and
        a flush attempt is scheduled after a jittered exponential
        backoff.  Once the policy's attempt budget is spent the report
        stops driving its own backoff chain — it stays parked in the
        store and only rides flushes other events trigger, so active
        retries are bounded but metered data is lost only to store
        overflow (§II-C: "temporarily stored in local memory").
        """
        report = self._inflight.pop(sequence, None)
        if report is None:
            return  # Acked, nacked, or the session was torn down.
        policy = self._config.retry
        assert policy is not None
        failures = self._report_attempts.get(sequence, 0) + 1
        if policy.exhausted(failures):
            self._report_attempts[sequence] = failures
            if failures == policy.max_attempts:
                self._retry_exhausted += 1
                self.count("retry_exhausted")
                self.trace(
                    "device.retry_exhausted", sequence=sequence, attempts=failures
                )
            self._store.store(report)
            return
        self._report_attempts[sequence] = failures
        self._report_timeouts += 1
        self.count("report_timeouts")
        self._store.store(report)
        self.trace("device.report_timeout", sequence=sequence, attempt=failures)
        backoff = policy.backoff_s(failures, self.rng("retry"))
        self._flush_retries += 1
        self.count("flush_retries")
        self.sim.call_later(
            backoff, self._flush_buffer, label=self._flush_retry_label
        )

    def _flush_buffer(self) -> None:
        """Send buffered records alongside the next transmissions."""
        if self._store.is_empty or not self._client.connected or not self._fsm.can_report:
            return
        batch = self._store.drain(self._config.flush_batch)
        for report in batch:
            self._transmit(self._restamp_addresses(report))
        if not self._store.is_empty:
            # Spread remaining backlog over subsequent slots.
            self.sim.call_later(
                self._config.t_measure_s, self._flush_buffer, label=self._flush_label
            )
        self.trace("device.flush", flushed=len(batch), remaining=self._store.pending)

    # -- lightweight-client ledger sync -------------------------------------

    @property
    def header_chain(self) -> HeaderChain | None:
        """The device's header-only ledger view (None when sync is off)."""
        return self._sync_client.chain if self._sync_client is not None else None

    @property
    def sync_stats(self) -> "SyncStats | None":
        """Sync traffic/staleness accounting (None when sync is off)."""
        return self._sync_client.stats if self._sync_client is not None else None

    def _arm_ledger_sync(self) -> None:
        """Start the periodic header-sync task (once, on first connect).

        The first round fires one reporting interval after joining — a
        lightweight client bootstraps its header chain promptly (Danzi
        et al.'s checkpoint fast-forward covers an old chain), then the
        batch-size-derived period governs steady-state catch-up.
        """
        if self._sync_client is None or self._sync_task is not None:
            return
        interval = self._sync_client.policy.effective_interval_s()
        self._sync_task = self.sim.every(
            interval,
            self._sync_tick,
            first_at=self.now + self._config.t_measure_s,
            label=f"{self.name}:chainsync",
        )

    def _sync_tick(self) -> None:
        if self._sync_client is None or not self._client.connected:
            return
        if not self._fsm.can_report:
            # Mid-registration (the bootstrap round typically lands
            # here): retry shortly rather than idling a whole period.
            self.sim.call_later(
                self._config.t_measure_s,
                self._sync_tick,
                label=f"{self.name}:chainsync",
            )
            return
        self._send_sync_request()

    def _send_sync_request(self) -> None:
        client = self._sync_client
        assert client is not None
        from_height, max_count = client.next_request()
        request = HeaderBatchRequest(self._device_id, from_height, max_count)
        client.stats.requests_sent += 1
        client.stats.bytes_sent += encoded_size(request)
        self._publish_message(self._sync_topic, request)

    def _on_header_batch(self, message: HeaderBatchResponse) -> None:
        client = self._sync_client
        if client is None:
            return  # Sync disabled; a stray response is ignorable.
        client.stats.bytes_received += encoded_size(message)
        headers = [HeaderRecord.from_dict(data) for data in message.headers]
        checkpoint = (
            Checkpoint.from_dict(message.checkpoint)
            if message.checkpoint is not None
            else None
        )
        behind = client.apply_response(headers, message.tip_height, checkpoint, self.now)
        self.trace(
            "device.headers_synced",
            height=client.chain.height,
            tip=message.tip_height,
        )
        if behind and self._client.connected and self._fsm.can_report:
            # Catch-up: keep requesting until the view reaches the tip
            # instead of waiting out the poll interval.
            self._send_sync_request()

    # -- billing-dispute receipts -------------------------------------------

    @property
    def receipts(self) -> dict[int, "InclusionReceipt | None"]:
        """Receipt answers by sequence: a verified receipt, or None when
        the aggregator reported not-found / verification failed."""
        return dict(self._receipts)

    def request_receipt(self, sequence: int) -> None:
        """Ask the current aggregator to prove a record is in the ledger.

        The answer lands in :attr:`receipts`; the Merkle proof is
        verified on arrival, so a receipt stored there is trustworthy.
        """
        if not self._client.connected:
            raise ProtocolError(f"{self.name} cannot request receipts while offline")
        request = ReceiptRequest(self._device_id, sequence)
        self._publish_message(f"meter/{self._device_id.name}/receipt", request)

    def _on_receipt_response(self, message: ReceiptResponse) -> None:
        from repro.chain.receipts import receipt_from_dict

        if not message.found or message.receipt is None:
            self._receipts[message.sequence] = None
            self.trace("device.receipt_missing", sequence=message.sequence)
            return
        receipt = receipt_from_dict(message.receipt)
        chain_view = self.header_chain
        if chain_view is not None and chain_view.covers(receipt.block_height):
            # Full offline verification: the synced header chain vouches
            # for the block coordinates, no trust in the aggregator.
            ok = chain_view.verify_receipt(receipt)
            offline = True
        else:
            # Proof-only check against the receipt's own header fields.
            ok = receipt.verify()
            offline = False
        if not ok:
            # A receipt that fails its own proof is worse than none.
            self._receipts[message.sequence] = None
            self.trace("device.receipt_invalid", sequence=message.sequence)
            return
        self._receipts[message.sequence] = receipt
        self.trace(
            "device.receipt_verified", sequence=message.sequence, offline=offline
        )

    # -- remote management ----------------------------------------------------

    def _on_mgmt_command(self, command: MgmtCommand) -> None:
        from repro.device.app.remote_mgmt import RemoteManagement
        from repro.errors import ProtocolError as _ProtocolError

        manager = RemoteManagement(self)
        try:
            payload = manager.handle(command.command, command.argument)
            ok = True
        except _ProtocolError as exc:
            payload = {"error": str(exc)}
            ok = False
        response = MgmtResponse(self._device_id, command.request_id, ok, payload)
        if self._client.connected:
            self._publish_message(f"meter/{self._device_id.name}/mgmt", response)
        self.trace("device.mgmt", command=command.command, ok=ok)

    # -- protocol ----------------------------------------------------------

    def _send_registration(self, request: RegistrationRequest) -> None:
        if not self._client.connected:
            raise ProtocolError(f"{self.name} cannot register while disconnected")
        self._publish_message(f"meter/{self._device_id.name}/register", request)
        self.trace(
            "device.register",
            temporary=request.is_temporary,
            master=str(request.master) if request.master else None,
        )
        if self._config.retry is not None:
            # Silent-loss watchdog: a registration round answered by
            # nothing at all (request or response lost) must not strand
            # the device in REGISTERING forever.
            self._cancel_reg_watchdog()
            self._reg_watchdog = self.sim.call_later(
                self._config.registration_retry_s,
                self._on_registration_silence,
                label=f"{self.name}:reg-watchdog",
            )

    def _cancel_reg_watchdog(self) -> None:
        if self._reg_watchdog is not None:
            self._reg_watchdog.cancel()
            self._reg_watchdog = None

    def _on_registration_silence(self) -> None:
        self._reg_watchdog = None
        if self._fsm.phase is not DevicePhase.REGISTERING:
            return
        if not self._client.connected:
            return
        self._registration_timeouts += 1
        self.count("registration_timeouts")
        self.trace("device.registration_timeout")
        self._send_registration(
            RegistrationRequest(self._device_id, master=self._fsm.master)
        )

    def _schedule_registration_retry(self) -> None:
        # An explicit Nack answered this round; the scheduled retry owns
        # the next one.
        self._cancel_reg_watchdog()
        def _retry() -> None:
            if not self._client.connected:
                return
            if self._fsm.phase is not DevicePhase.REGISTERING:
                return
            self._send_registration(
                RegistrationRequest(self._device_id, master=self._fsm.master)
            )

        self.sim.call_later(
            self._config.registration_retry_s, _retry, label=f"{self.name}:reg-retry"
        )

    def _apply_decision(self, decision: FsmDecision) -> None:
        if decision.send_registration is not None:
            self._send_registration(decision.send_registration)
        if decision.flush_buffer:
            self._flush_buffer()

    def _on_ctrl(self, topic: str, payload: Any) -> None:
        message = as_message(payload)
        if self._vector_cohort is not None and not isinstance(message, Ack):
            # Anything beyond a plain Ack (Nack, registration traffic,
            # management commands, receipts, sync batches, transfers)
            # means the device is no longer in steady state: restore the
            # full per-object actor before handling it.  Acks for
            # cohort-deferred reports complete consistently either way.
            self._vector_cohort.release(self, "ctrl")
        if isinstance(message, Ack):
            if message.sequence is not None:
                self._acked_sequences.add(message.sequence)
                self._inflight.pop(message.sequence, None)
                self._report_attempts.pop(message.sequence, None)
            handshake = self.last_handshake
            if handshake is not None and handshake.registered_at is None:
                # Home re-entry: the first accepted report ends the
                # handshake without any registration round.
                handshake.registered_at = self.now
                if self._handshake_span is not None:
                    self._spans.finish(
                        self._handshake_span, "ok", temporary=False, re_entry=True
                    )
                    self._handshake_span = None
            # "The combination of stored data and the measurement are
            # transmitted ... in the next transmission": once a report
            # is accepted, any backlog follows.
            if not self._store.is_empty:
                self._flush_buffer()
        elif isinstance(message, RegistrationResponse):
            self._cancel_reg_watchdog()
            decision = self._fsm.registration_response(message)
            handshake = self.last_handshake
            if handshake is not None and handshake.registered_at is None:
                handshake.registered_at = self.now
                handshake.temporary = message.temporary
                if self._handshake_span is not None:
                    self._spans.finish(
                        self._handshake_span, "ok", temporary=message.temporary
                    )
                    self._handshake_span = None
            self.trace(
                "device.registered",
                address=str(message.address),
                temporary=message.temporary,
            )
            self._apply_decision(decision)
        elif isinstance(message, Nack):
            self.trace("device.nack", reason=message.reason.value)
            if message.reason == NackReason.NETWORK_FULL:
                # Admission refused: measurements keep buffering; retry
                # membership after a backoff (slots may free up).
                self._schedule_registration_retry()
                return
            if (
                message.reason == NackReason.VERIFICATION_FAILED
                and self._fsm.phase is DevicePhase.REGISTERING
            ):
                # The host could not get the master's vouch — commonly a
                # transient backhaul fault (partition, crashed master),
                # so keep buffering and retry once it may have healed.
                self._schedule_registration_retry()
                return
            if message.sequence is not None:
                rejected = self._inflight.pop(message.sequence, None)
                self._report_attempts.pop(message.sequence, None)
                if rejected is not None and message.reason == NackReason.NOT_A_MEMBER:
                    # The host refused for lack of membership, not for the
                    # data itself — keep it for after registration.
                    self._store.store(rejected)
            decision = self._fsm.report_nacked(message)
            self._apply_decision(decision)
        elif isinstance(message, ReceiptResponse):
            self._on_receipt_response(message)
        elif isinstance(message, HeaderBatchResponse):
            self._on_header_batch(message)
        elif isinstance(message, MgmtCommand):
            self._on_mgmt_command(message)
        elif isinstance(message, TransferMembership):
            self._fsm.membership_transferred(message.new_master)
            self.trace("device.transferred", new_master=str(message.new_master))
        elif isinstance(message, RemoveDevice):
            self._fsm.removed()
            self.trace("device.removed")
        else:
            raise ProtocolError(
                f"unexpected control message {type(message).__name__} for {self.name}"
            )
