"""Device-side billing service.

Keeps the device's own running view of what it owes — the counterpart to
the authoritative bill the home aggregator computes from the ledger.
Comparing the two (they should agree to within sensor error) is itself a
tamper check available to the device owner.
"""

from __future__ import annotations

from repro.billing.tariff import Tariff
from repro.device.metering import Measurement
from repro.errors import BillingError


class BillingAgent:
    """Accumulates measured energy and prices it under a tariff.

    Args:
        tariff: Price schedule to apply.
    """

    def __init__(self, tariff: Tariff) -> None:
        self._tariff = tariff
        self._energy_mwh = 0.0
        self._cost = 0.0
        self._windows = 0

    @property
    def energy_mwh(self) -> float:
        """Total energy accounted so far."""
        return self._energy_mwh

    @property
    def cost(self) -> float:
        """Total cost at the tariff (currency units)."""
        return self._cost

    @property
    def windows(self) -> int:
        """Measurement windows accounted."""
        return self._windows

    def account(self, measurement: Measurement) -> float:
        """Add one measurement window; returns its cost."""
        if measurement.energy_mwh < 0:
            raise BillingError(f"negative energy {measurement.energy_mwh} mWh")
        price = self._tariff.price_per_mwh(measurement.measured_at)
        cost = measurement.energy_mwh * price
        self._energy_mwh += measurement.energy_mwh
        self._cost += cost
        self._windows += 1
        return cost

    def estimate_monthly_cost(self, window_s: float, elapsed_s: float) -> float:
        """Naive projection of cost to a 30-day month."""
        if elapsed_s <= 0:
            raise BillingError(f"elapsed time must be positive, got {elapsed_s}")
        seconds_per_month = 30 * 24 * 3600.0
        return self._cost * (seconds_per_month / elapsed_s)
