"""Schedule optimization for load management.

Given tariff windows and a deferrable load (e.g. the e-scooter's charge,
which needs N hours of charging before a deadline), pick the cheapest
feasible start times.  Greedy-by-price over discretised slots — optimal
for a single interruptible load, and transparent enough to verify by
hand in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TariffWindow:
    """One pricing window on the planning horizon."""

    start_s: float
    end_s: float
    price_per_mwh: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigError(f"empty window [{self.start_s}, {self.end_s}]")
        if self.price_per_mwh < 0:
            raise ConfigError(f"price must be >= 0, got {self.price_per_mwh}")

    @property
    def duration_s(self) -> float:
        """Window length in seconds."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class ScheduledSlot:
    """One chosen run interval of the load."""

    start_s: float
    end_s: float
    price_per_mwh: float


class ScheduleOptimizer:
    """Chooses the cheapest slots for an interruptible load.

    Args:
        windows: Tariff windows covering the horizon (must not overlap).
    """

    def __init__(self, windows: list[TariffWindow]) -> None:
        if not windows:
            raise ConfigError("at least one tariff window required")
        ordered = sorted(windows, key=lambda w: w.start_s)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start_s < earlier.end_s:
                raise ConfigError(
                    f"windows overlap at {later.start_s} (< {earlier.end_s})"
                )
        self._windows = ordered

    @property
    def horizon(self) -> tuple[float, float]:
        """Earliest start and latest end across windows."""
        return self._windows[0].start_s, self._windows[-1].end_s

    def plan(
        self,
        required_s: float,
        deadline_s: float | None = None,
    ) -> list[ScheduledSlot]:
        """Allocate ``required_s`` seconds of runtime at minimum cost.

        Fills the cheapest windows first (each window is interruptible),
        optionally only using time before ``deadline_s``.  Raises
        :class:`~repro.errors.ConfigError` when the horizon cannot fit
        the requirement — a schedule that silently under-delivers would
        corrupt the downstream billing comparison.
        """
        if required_s <= 0:
            raise ConfigError(f"required runtime must be positive, got {required_s}")
        usable = []
        for window in self._windows:
            end = window.end_s if deadline_s is None else min(window.end_s, deadline_s)
            if end > window.start_s:
                usable.append(TariffWindow(window.start_s, end, window.price_per_mwh))
        available = sum(w.duration_s for w in usable)
        if available < required_s:
            raise ConfigError(
                f"cannot fit {required_s}s of load into {available}s of tariff windows"
            )
        slots: list[ScheduledSlot] = []
        remaining = required_s
        for window in sorted(usable, key=lambda w: (w.price_per_mwh, w.start_s)):
            if remaining <= 0:
                break
            take = min(remaining, window.duration_s)
            slots.append(
                ScheduledSlot(window.start_s, window.start_s + take, window.price_per_mwh)
            )
            remaining -= take
        return sorted(slots, key=lambda s: s.start_s)

    def plan_cost(self, slots: list[ScheduledSlot], power_mw: float) -> float:
        """Cost of running ``power_mw`` over the chosen slots."""
        if power_mw < 0:
            raise ConfigError(f"power must be >= 0, got {power_mw}")
        total = 0.0
        for slot in slots:
            energy_mwh = power_mw * (slot.end_s - slot.start_s) / 3600.0
            total += energy_mwh * slot.price_per_mwh
        return total
