"""Demand prediction (device-specific application).

An exponentially-weighted moving average with trend (Holt's linear
method) over per-window energy.  Simple, robust at ESP32 scale, and good
enough for the load-management applications the paper motivates; the
predictor is also what the schedule optimizer consumes.
"""

from __future__ import annotations

from repro.errors import ConfigError


class DemandPredictor:
    """Holt's double-exponential smoothing over window energies.

    Args:
        alpha: Level smoothing factor in (0, 1].
        beta: Trend smoothing factor in [0, 1].
    """

    def __init__(self, alpha: float = 0.3, beta: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ConfigError(f"beta must be in [0, 1], got {beta}")
        self._alpha = alpha
        self._beta = beta
        self._level: float | None = None
        self._trend = 0.0
        self._observations = 0
        self._abs_error_sum = 0.0

    @property
    def observations(self) -> int:
        """Samples consumed so far."""
        return self._observations

    @property
    def mean_abs_error(self) -> float:
        """Mean absolute one-step-ahead error over the history."""
        if self._observations <= 1:
            return 0.0
        return self._abs_error_sum / (self._observations - 1)

    def observe(self, energy_mwh: float) -> None:
        """Feed one measurement window's energy."""
        if energy_mwh < 0:
            raise ConfigError(f"energy must be >= 0, got {energy_mwh}")
        if self._level is None:
            self._level = energy_mwh
        else:
            self._abs_error_sum += abs(self.predict(1) - energy_mwh)
            previous_level = self._level
            self._level = self._alpha * energy_mwh + (1 - self._alpha) * (
                self._level + self._trend
            )
            self._trend = self._beta * (self._level - previous_level) + (
                1 - self._beta
            ) * self._trend
        self._observations += 1

    def predict(self, horizon_windows: int = 1) -> float:
        """Forecast energy ``horizon_windows`` ahead (>= 0, never negative)."""
        if horizon_windows < 1:
            raise ConfigError(f"horizon must be >= 1, got {horizon_windows}")
        if self._level is None:
            return 0.0
        return max(0.0, self._level + self._trend * horizon_windows)
