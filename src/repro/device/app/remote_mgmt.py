"""Remote management: monitoring and maintenance hooks.

The application layer's first group: "remote management for
monitoring/device maintenance".  The manager answers status queries and
executes a small command set (reset counters, change the measurement
interval) — enough surface for the integration tests to exercise a real
management round-trip over MQTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.device.stack import MeteringDevice
from repro.errors import ProtocolError


@dataclass(frozen=True)
class DeviceStatus:
    """Snapshot returned by a status query."""

    device: str
    phase: str
    roaming: bool
    pending_buffer: int
    reports_sent: int
    total_energy_mwh: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form for transport."""
        return {
            "device": self.device,
            "phase": self.phase,
            "roaming": self.roaming,
            "pending_buffer": self.pending_buffer,
            "reports_sent": self.reports_sent,
            "total_energy_mwh": self.total_energy_mwh,
        }


class RemoteManagement:
    """Command handler bound to one device.

    Args:
        device: The managed device.
    """

    COMMANDS = ("status", "ping", "set-interval")

    def __init__(self, device: MeteringDevice) -> None:
        self._device = device
        self._commands_handled = 0

    @property
    def commands_handled(self) -> int:
        """Commands processed so far."""
        return self._commands_handled

    def status(self) -> DeviceStatus:
        """Current device status snapshot."""
        return DeviceStatus(
            device=self._device.device_id.name,
            phase=self._device.fsm.phase.value,
            roaming=self._device.fsm.is_roaming,
            pending_buffer=self._device.store.pending,
            reports_sent=self._device.reports_sent,
            total_energy_mwh=self._device.meter.total_energy_mwh,
        )

    def handle(self, command: str, argument: float | None = None) -> dict[str, Any]:
        """Execute one management command; returns the reply payload."""
        self._commands_handled += 1
        if command == "status":
            return self.status().to_dict()
        if command == "ping":
            return {"device": self._device.device_id.name, "pong": True}
        if command == "set-interval":
            if argument is None or argument <= 0:
                raise ProtocolError(
                    f"set-interval needs a positive seconds argument, got {argument}"
                )
            self._device.firmware.set_interval(float(argument))
            return {
                "device": self._device.device_id.name,
                "t_measure_s": float(argument),
            }
        raise ProtocolError(f"unknown management command {command!r}")
