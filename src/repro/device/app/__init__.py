"""Application layer of the device stack (Fig. 2, top).

The paper names three application groups; each gets a module:

1. remote management — :mod:`repro.device.app.remote_mgmt`,
2. device-specific applications, "demand prediction and schedule
   optimization for better load management" —
   :mod:`repro.device.app.prediction` and
   :mod:`repro.device.app.scheduling`,
3. services such as billing — :mod:`repro.device.app.billing_agent`.
"""

from repro.device.app.billing_agent import BillingAgent
from repro.device.app.prediction import DemandPredictor
from repro.device.app.remote_mgmt import DeviceStatus, RemoteManagement
from repro.device.app.scheduling import ScheduleOptimizer, TariffWindow
from repro.device.app.self_audit import AuditVerdict, SelfAuditor, SelfAuditResult

__all__ = [
    "AuditVerdict",
    "BillingAgent",
    "DemandPredictor",
    "DeviceStatus",
    "RemoteManagement",
    "ScheduleOptimizer",
    "SelfAuditor",
    "SelfAuditResult",
    "TariffWindow",
]
