"""Device-side self-audit: does the ledger agree with my own meter?

The owner's trust chain: the device knows what it measured
(`EnergyMeter` totals and the `BillingAgent`'s running cost); the home
network bills from the blockchain.  The self-audit compares the two and
classifies the outcome — agreement, under-billing (records lost), or
over-billing (records inflated or double-counted) — plus spot-checks
individual records via inclusion receipts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.billing.invoice import Invoice
from repro.device.stack import MeteringDevice
from repro.errors import BillingError


class AuditVerdict(enum.Enum):
    """Outcome classes of a self-audit."""

    CONSISTENT = "consistent"
    UNDER_BILLED = "under_billed"
    OVER_BILLED = "over_billed"


@dataclass(frozen=True)
class SelfAuditResult:
    """Comparison between the device's meter and its invoice.

    Attributes:
        measured_mwh: The device's own accumulated measurement.
        billed_mwh: Energy on the invoice.
        relative_gap: (billed - measured) / measured.
        verdict: Classification at the configured tolerance.
        receipts_checked / receipts_valid: Spot-check outcome.
    """

    measured_mwh: float
    billed_mwh: float
    relative_gap: float
    verdict: AuditVerdict
    receipts_checked: int = 0
    receipts_valid: int = 0

    @property
    def receipts_ok(self) -> bool:
        """True when every spot-checked receipt verified."""
        return self.receipts_checked == self.receipts_valid


class SelfAuditor:
    """Compares a device's own accounting with its invoice.

    Args:
        device: The audited device.
        tolerance: Relative gap treated as agreement.  The device's
            meter and the ledger see the *same* sensor readings, so the
            only legitimate slack is records still in flight — a couple
            of percent on short periods, far less on long ones.
    """

    def __init__(self, device: MeteringDevice, tolerance: float = 0.03) -> None:
        if tolerance <= 0:
            raise BillingError(f"tolerance must be positive, got {tolerance}")
        self._device = device
        self._tolerance = tolerance

    def audit(self, invoice: Invoice) -> SelfAuditResult:
        """Compare the invoice against the device's own meter total."""
        if invoice.device != self._device.device_id.name:
            raise BillingError(
                f"invoice for {invoice.device!r} audited by "
                f"{self._device.device_id.name!r}"
            )
        measured = self._device.meter.total_energy_mwh
        billed = invoice.total_energy_mwh
        if measured <= 0:
            gap = 0.0 if billed == 0 else float("inf")
        else:
            gap = (billed - measured) / measured
        if abs(gap) <= self._tolerance:
            verdict = AuditVerdict.CONSISTENT
        elif gap < 0:
            verdict = AuditVerdict.UNDER_BILLED
        else:
            verdict = AuditVerdict.OVER_BILLED
        valid = sum(
            1 for receipt in self._device.receipts.values()
            if receipt is not None and receipt.verify()
        )
        checked = len(self._device.receipts)
        return SelfAuditResult(
            measured_mwh=measured,
            billed_mwh=billed,
            relative_gap=gap,
            verdict=verdict,
            receipts_checked=checked,
            receipts_valid=valid,
        )
