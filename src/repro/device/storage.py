"""Device-local store-and-forward buffer (the data layer's storage).

"In the absence of network connectivity with the aggregator, raw
consumption data is stored in the local storage until the connection is
established" (§II-B), and Fig. 6 shows exactly this buffering during the
handshake window.

The store is bounded (flash on an ESP32 is finite).  When full, the
*oldest* record is dropped and counted — billing prefers recent data and
the loss is observable, never silent.
"""

from __future__ import annotations

from collections import deque

from repro.errors import StorageError
from repro.protocol.messages import ConsumptionReport


class LocalStore:
    """Bounded FIFO of unsent consumption reports.

    Args:
        capacity: Maximum records held (ESP32 NVS-scale, default 4096).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise StorageError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._records: deque[ConsumptionReport] = deque()
        self._stored_total = 0
        self._dropped_total = 0

    @property
    def capacity(self) -> int:
        """Maximum records held."""
        return self._capacity

    @property
    def pending(self) -> int:
        """Records currently awaiting transmission."""
        return len(self._records)

    @property
    def stored_total(self) -> int:
        """Records ever stored (including later-flushed ones)."""
        return self._stored_total

    @property
    def dropped_total(self) -> int:
        """Records lost to capacity eviction."""
        return self._dropped_total

    @property
    def is_empty(self) -> bool:
        """True when nothing is buffered."""
        return not self._records

    def store(self, report: ConsumptionReport) -> None:
        """Buffer one report, evicting the oldest when full."""
        if len(self._records) >= self._capacity:
            self._records.popleft()
            self._dropped_total += 1
        self._records.append(report)
        self._stored_total += 1

    def drain(self, limit: int | None = None) -> list[ConsumptionReport]:
        """Remove and return up to ``limit`` oldest records (all if None).

        Records are re-marked ``buffered=True`` so the aggregator and the
        ledger can distinguish backfill from live data (the blue line in
        Fig. 6).
        """
        if limit is not None and limit <= 0:
            raise StorageError(f"drain limit must be positive, got {limit}")
        count = len(self._records) if limit is None else min(limit, len(self._records))
        drained: list[ConsumptionReport] = []
        for _ in range(count):
            report = self._records.popleft()
            if not report.buffered:
                report = ConsumptionReport(
                    device_id=report.device_id,
                    master=report.master,
                    temporary=report.temporary,
                    sequence=report.sequence,
                    measured_at=report.measured_at,
                    interval_s=report.interval_s,
                    current_ma=report.current_ma,
                    voltage_v=report.voltage_v,
                    energy_mwh=report.energy_mwh,
                    buffered=True,
                )
            drained.append(report)
        return drained

    def peek_oldest(self) -> ConsumptionReport | None:
        """The oldest buffered record without removing it."""
        return self._records[0] if self._records else None

    def requeue_front(self, reports: list[ConsumptionReport]) -> None:
        """Put drained records back at the front (failed flush).

        The capacity bound still holds: if new records arrived while the
        batch was in flight, requeueing evicts the oldest records overall
        (the front of the requeued batch — same drop-oldest policy as
        :meth:`store`) and counts them into :attr:`dropped_total`.
        """
        for report in reversed(reports):
            self._records.appendleft(report)
        while len(self._records) > self._capacity:
            self._records.popleft()
            self._dropped_total += 1
