"""Middleware layer: the firmware's sampling task.

The firmware owns the measurement cadence: while the device is
electrically attached it samples the meter every ``T_measure`` and hands
the measurement to a sink (the stack decides whether to transmit or
buffer).  Decoupling the cadence from connectivity is what produces the
paper's buffering behaviour — measurement never stops just because the
network is gone.
"""

from __future__ import annotations

from typing import Callable

from repro.device.metering import EnergyMeter, Measurement
from repro.errors import ConfigError
from repro.sim.kernel import PeriodicTask, Simulator

MeasurementSink = Callable[[Measurement], None]


class Firmware:
    """Periodic sampling task bound to a meter and a sink.

    Args:
        simulator: The kernel.
        meter: This device's energy meter.
        sink: Receives every measurement (transmit-or-buffer decision).
        t_measure_s: Measurement interval (0.1 s in the paper: "10 times
            per second i.e., ... every 100 milliseconds").
    """

    def __init__(
        self,
        simulator: Simulator,
        meter: EnergyMeter,
        sink: MeasurementSink,
        t_measure_s: float = 0.1,
    ) -> None:
        if t_measure_s <= 0:
            raise ConfigError(f"t_measure must be positive, got {t_measure_s}")
        self._sim = simulator
        self._meter = meter
        self._sink = sink
        self._t_measure_s = t_measure_s
        self._task: PeriodicTask | None = None
        self._samples_taken = 0

    @property
    def t_measure_s(self) -> float:
        """Measurement interval in seconds."""
        return self._t_measure_s

    @property
    def running(self) -> bool:
        """Whether the sampling task is active."""
        return self._task is not None

    @property
    def samples_taken(self) -> int:
        """Measurements performed since construction."""
        return self._samples_taken

    def start(self, first_at: float | None = None) -> None:
        """Begin periodic sampling (first sample after one interval).

        ``first_at`` pins the first sample to an absolute time instead —
        used when a device de-vectorizes and must resume on the exact
        tick grid its cohort was driving.
        """
        if self._task is not None:
            return
        self._task = self._sim.every(
            self._t_measure_s, self._tick, first_at=first_at, label="firmware:sample"
        )

    def stop(self) -> None:
        """Halt sampling (device electrically detached)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def set_interval(self, t_measure_s: float) -> None:
        """Change the sampling interval (remote-management command).

        Takes effect from the next sample when running; otherwise on the
        next :meth:`start`.
        """
        if t_measure_s <= 0:
            raise ConfigError(f"t_measure must be positive, got {t_measure_s}")
        self._t_measure_s = t_measure_s
        if self._task is not None:
            self._task.reschedule(t_measure_s)

    def _tick(self) -> None:
        measurement = self._meter.sample(self._sim.now, self._t_measure_s)
        self._samples_taken += 1
        self._sink(measurement)
