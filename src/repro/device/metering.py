"""In-device energy metering (the data-representation part of Fig. 2).

"Using the voltage characteristics of the device, the energy consumption
is computed using the sensor measurement value and the measurement
duration" (§III-A).  :class:`EnergyMeter` samples the device's true
terminal current through its INA219 model once per measurement window
and converts to energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import HardwareError
from repro.hw.ina219 import Ina219
from repro.units import SECONDS_PER_HOUR

# True terminal current of the device as a function of time (mA).
CurrentFn = Callable[[float], float]


@dataclass(frozen=True)
class Measurement:
    """One measurement window.

    Attributes:
        measured_at: Window end time (device-RTC timestamp).
        interval_s: Window length.
        current_ma: Sensor reading (with error model applied).
        true_current_ma: Ground truth (kept for evaluation only — never
            transmitted; the aggregator estimates truth from its feeder
            meter).
        voltage_v: Supply voltage used in the energy computation.
        energy_mwh: current x voltage x interval.
    """

    measured_at: float
    interval_s: float
    current_ma: float
    true_current_ma: float
    voltage_v: float
    energy_mwh: float


class EnergyMeter:
    """Converts sensor samples into energy measurements.

    Args:
        sensor: This device's INA219 instance.
        current_fn: Ground-truth terminal current over time.
        voltage_v: Device supply voltage.
    """

    def __init__(self, sensor: Ina219, current_fn: CurrentFn, voltage_v: float) -> None:
        if voltage_v <= 0:
            raise HardwareError(f"voltage must be positive, got {voltage_v}")
        self._sensor = sensor
        self._current_fn = current_fn
        self._voltage_v = voltage_v
        self._total_energy_mwh = 0.0
        self._total_true_energy_mwh = 0.0

    @property
    def sensor(self) -> Ina219:
        """The underlying sensor model."""
        return self._sensor

    @property
    def voltage_v(self) -> float:
        """Supply voltage used for energy computation."""
        return self._voltage_v

    @property
    def total_energy_mwh(self) -> float:
        """Accumulated measured energy since construction."""
        return self._total_energy_mwh

    @property
    def total_true_energy_mwh(self) -> float:
        """Accumulated ground-truth energy (evaluation only)."""
        return self._total_true_energy_mwh

    def true_current_ma(self, at_time: float) -> float:
        """Ground-truth terminal current right now."""
        return self._current_fn(at_time)

    def sample(self, at_time: float, interval_s: float) -> Measurement:
        """Take one measurement covering the window ending at ``at_time``."""
        true_current = self._current_fn(at_time)
        reading = self._sensor.measure_ma(true_current)
        # A tiny negative reading can appear at near-zero load purely from
        # offset/noise; clamp so energy stays physical.
        reading = max(0.0, reading)
        # energy_mwh() inlined (same operation order, so bit-identical):
        # this runs once per device report and the call pair showed up
        # in fleet profiles.
        voltage = self._voltage_v
        energy = reading * voltage * interval_s / SECONDS_PER_HOUR
        self._total_energy_mwh += energy
        self._total_true_energy_mwh += true_current * voltage * interval_s / SECONDS_PER_HOUR
        return Measurement(
            measured_at=at_time,
            interval_s=interval_s,
            current_ma=reading,
            true_current_ma=true_current,
            voltage_v=self._voltage_v,
            energy_mwh=energy,
        )
