"""Device software stack (Fig. 2).

The layers of the paper's device architecture map onto modules:

* physical layer — sensor/MCU/RTC models from :mod:`repro.hw`,
* middleware — :mod:`repro.device.firmware` (sampling task scheduling),
* network layer — radio + MQTT client from :mod:`repro.net`, membership
  state from :mod:`repro.protocol.device_fsm`,
* data layer — :mod:`repro.device.metering` (representation) and
  :mod:`repro.device.storage` (local store-and-forward),
* application layer — :mod:`repro.device.app` (billing agent, remote
  management, demand prediction, load scheduling).

:class:`repro.device.stack.MeteringDevice` composes all of it into one
simulated actor.
"""

from repro.device.firmware import Firmware
from repro.device.metering import EnergyMeter, Measurement
from repro.device.stack import DeviceConfig, MeteringDevice
from repro.device.storage import LocalStore

__all__ = [
    "Firmware",
    "EnergyMeter",
    "Measurement",
    "DeviceConfig",
    "MeteringDevice",
    "LocalStore",
]
