"""Ledger writer: batches validated records into blocks.

The aggregator "stores the consumption data of all the devices in the
network in a blockchain" (§I).  Validated records queue here; every
block interval the queue is flushed into one block of the common chain.
Roaming records forwarded from host aggregators enter the same queue,
stamped ``roaming: true`` so billing can split them out.
"""

from __future__ import annotations

from typing import Any

from repro.chain.block import Block
from repro.chain.ledger import Blockchain
from repro.errors import ChainError


class LedgerWriter:
    """Per-aggregator staging queue in front of the shared chain.

    Args:
        chain: The common permissioned blockchain.
        aggregator_name: Name stamped into created blocks.
        max_records_per_block: Oversized queues split across blocks.
    """

    def __init__(
        self,
        chain: Blockchain,
        aggregator_name: str,
        max_records_per_block: int = 1024,
    ) -> None:
        if max_records_per_block <= 0:
            raise ChainError(
                f"records per block must be positive, got {max_records_per_block}"
            )
        self._chain = chain
        self._aggregator_name = aggregator_name
        self._max_records = max_records_per_block
        self._queue: list[dict[str, Any]] = []
        self._blocks_written = 0
        self._records_written = 0

    @property
    def pending(self) -> int:
        """Records staged for the next block."""
        return len(self._queue)

    @property
    def blocks_written(self) -> int:
        """Blocks this writer appended."""
        return self._blocks_written

    @property
    def records_written(self) -> int:
        """Records this writer committed."""
        return self._records_written

    def stage(self, record: dict[str, Any]) -> None:
        """Queue one validated record for the next block."""
        self._queue.append(record)

    def flush(self, timestamp: float) -> list[Block]:
        """Write queued records into one or more blocks.

        An empty queue writes nothing (unlike the chain's own
        ``append``, which tolerates empty blocks, the writer skips them
        to keep the ledger dense).
        """
        blocks: list[Block] = []
        while self._queue:
            batch = self._queue[: self._max_records]
            del self._queue[: self._max_records]
            block = self._chain.append(self._aggregator_name, timestamp, batch)
            blocks.append(block)
            self._blocks_written += 1
            self._records_written += len(batch)
        return blocks
