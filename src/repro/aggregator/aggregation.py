"""Windowed aggregation of device reports.

The aggregator "performs data aggregation of all devices within the
network" and keeps a system-level complementary measurement alongside.
:class:`ReportAggregator` maintains, per reporting window, the sum of
device-reported currents and the matching feeder measurement — the two
series Fig. 5 compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnomalyError
from repro.ids import DeviceId


@dataclass
class Window:
    """One aggregation window's worth of evidence.

    Attributes:
        start: Window start time.
        reported_ma: Per-device reported current in this window.
        feeder_ma: Feeder-meter measurement for the window (set once the
            aggregator samples its own sensor).
    """

    start: float
    reported_ma: dict[str, float] = field(default_factory=dict)
    feeder_ma: float | None = None

    @property
    def reported_sum_ma(self) -> float:
        """Sum of device reports in the window."""
        return sum(self.reported_ma.values())

    @property
    def complete(self) -> bool:
        """True once the feeder measurement is in."""
        return self.feeder_ma is not None


class ReportAggregator:
    """Buckets reports and feeder samples into aligned windows.

    Args:
        window_s: Bucket width (normally ``T_measure``).
        keep_windows: Bounded history length (old windows are evicted).
    """

    def __init__(self, window_s: float = 0.1, keep_windows: int = 10000) -> None:
        if window_s <= 0:
            raise AnomalyError(f"window must be positive, got {window_s}")
        if keep_windows < 1:
            raise AnomalyError(f"history must be >= 1 windows, got {keep_windows}")
        self._window_s = window_s
        self._keep = keep_windows
        self._windows: dict[int, Window] = {}

    @property
    def window_s(self) -> float:
        """Bucket width in seconds."""
        return self._window_s

    def _index(self, at_time: float) -> int:
        return int(at_time // self._window_s)

    def _bucket(self, at_time: float) -> Window:
        index = self._index(at_time)
        window = self._windows.get(index)
        if window is None:
            window = Window(start=index * self._window_s)
            self._windows[index] = window
            if len(self._windows) > self._keep:
                oldest = min(self._windows)
                del self._windows[oldest]
        return window

    def add_report(self, device_id: DeviceId, at_time: float, current_ma: float) -> None:
        """Record one device report into its window.

        A second report from the same device in one window overwrites —
        QoS-1 duplicates must not double-count in the residual check.
        """
        self._bucket(at_time).reported_ma[device_id.name] = current_ma

    def add_feeder_sample(self, at_time: float, current_ma: float) -> None:
        """Record the feeder measurement for a window."""
        self._bucket(at_time).feeder_ma = current_ma

    def window_at(self, at_time: float) -> Window | None:
        """The window covering ``at_time``, or None."""
        return self._windows.get(self._index(at_time))

    def complete_windows(self) -> list[Window]:
        """All windows holding both sides, oldest first."""
        return [
            self._windows[i]
            for i in sorted(self._windows)
            if self._windows[i].complete and self._windows[i].reported_ma
        ]

    def latest_complete(self) -> Window | None:
        """Newest window with both device reports and a feeder sample."""
        for index in sorted(self._windows, reverse=True):
            window = self._windows[index]
            if window.complete and window.reported_ma:
                return window
        return None
