"""Report verification pipeline.

"The role of an aggregator is to use its measurement to establish the
ground truth" (§II-A).  The verifier screens each incoming report with
the per-report detectors and periodically checks the network-level
residual between the aggregated reports and the feeder measurement.

Per the paper, attributing a network-level anomaly to a specific device
is future work; the verifier therefore *flags* network anomalies (they
are counted and traced) but only per-report screens produce Nacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.anomaly.detectors import (
    Detection,
    GroundTruthResidualDetector,
    RangeDetector,
    RelativeVariationDetector,
)
from repro.ids import DeviceId
from repro.protocol.messages import ConsumptionReport


@dataclass(frozen=True)
class VerificationPolicy:
    """Tunable screen configuration.

    Attributes:
        max_current_ma: Physical plausibility limit per report.
        use_history_screen: Enable the per-device rolling-median screen.
        history_window: Rolling window length of that screen.
        history_threshold: Relative deviation that trips it.
        expected_loss_fraction: Known positive bias of the feeder
            residual (ohmic losses).
        residual_tolerance: Residual fraction that flags the network.
    """

    max_current_ma: float = 400.0
    use_history_screen: bool = True
    history_window: int = 50
    # Honest duty-cycled loads swing ~5x between phases; the per-report
    # history screen must only catch gross manipulation beyond that.
    history_threshold: float = 12.0
    expected_loss_fraction: float = 0.04
    residual_tolerance: float = 0.10


@dataclass
class VerificationStats:
    """Counters the experiments read."""

    reports_screened: int = 0
    reports_rejected: int = 0
    network_checks: int = 0
    network_anomalies: int = 0
    missing_report_windows: int = 0
    rejections_by_reason: dict[str, int] = field(default_factory=dict)


class ReportVerifier:
    """Per-report and network-level verification state.

    Args:
        policy: Screen configuration.
    """

    def __init__(self, policy: VerificationPolicy | None = None) -> None:
        self._policy = policy or VerificationPolicy()
        self._range = RangeDetector(self._policy.max_current_ma)
        self._residual = GroundTruthResidualDetector(
            self._policy.expected_loss_fraction, self._policy.residual_tolerance
        )
        self._histories: dict[DeviceId, RelativeVariationDetector] = {}
        self.stats = VerificationStats()

    @property
    def policy(self) -> VerificationPolicy:
        """The active screen configuration."""
        return self._policy

    def _history_for(self, device_id: DeviceId) -> RelativeVariationDetector:
        detector = self._histories.get(device_id)
        if detector is None:
            detector = RelativeVariationDetector(
                self._policy.history_window, self._policy.history_threshold
            )
            self._histories[device_id] = detector
        return detector

    def screen_report(self, report: ConsumptionReport) -> Detection:
        """Per-report verdict; anomalous reports should be Nack'd."""
        self.stats.reports_screened += 1
        verdict = self._range.screen(report.current_ma)
        if not verdict.anomalous and self._policy.use_history_screen:
            verdict = self._history_for(report.device_id).screen(report.current_ma)
        if verdict.anomalous:
            self.stats.reports_rejected += 1
            reason = verdict.reason or "anomalous"
            self.stats.rejections_by_reason[reason] = (
                self.stats.rejections_by_reason.get(reason, 0) + 1
            )
        return verdict

    def check_network(self, reported_sum_ma: float, feeder_ma: float) -> Detection:
        """Network-level complementary-measurement check."""
        self.stats.network_checks += 1
        verdict = self._residual.screen(reported_sum_ma, feeder_ma)
        if verdict.anomalous:
            self.stats.network_anomalies += 1
        return verdict
