"""Aggregator unit.

The trusted per-network component of Fig. 1.  An
:class:`~repro.aggregator.unit.AggregatorUnit` composes:

* a membership registry (:mod:`repro.aggregator.membership`) holding
  master and temporary memberships and handing out addresses/slots,
* report verification (:mod:`repro.aggregator.verification`) built on
  the anomaly detectors and the feeder ground truth,
* windowed aggregation (:mod:`repro.aggregator.aggregation`) of device
  reports for the complementary-measurement check,
* a ledger writer (:mod:`repro.aggregator.ledger_writer`) batching
  validated records into blocks of the common chain,
* a roaming liaison (:mod:`repro.aggregator.roaming`) implementing the
  backhaul half of the Fig. 3 sequences.
"""

from repro.aggregator.aggregation import ReportAggregator
from repro.aggregator.ledger_writer import LedgerWriter
from repro.aggregator.membership import MembershipKind, MembershipRegistry
from repro.aggregator.unit import AggregatorConfig, AggregatorUnit
from repro.aggregator.verification import ReportVerifier, VerificationPolicy

__all__ = [
    "ReportAggregator",
    "LedgerWriter",
    "MembershipRegistry",
    "MembershipKind",
    "AggregatorConfig",
    "AggregatorUnit",
    "ReportVerifier",
    "VerificationPolicy",
]
