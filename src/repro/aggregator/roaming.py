"""Roaming liaison: the backhaul half of the Fig. 3 sequences.

Host side: when a foreign device requests temporary membership, the
liaison asks the claimed master to vouch for it
(:class:`~repro.protocol.messages.MembershipVerifyRequest`) and, once
membership is granted, forwards every accepted report home as a cost
center (:class:`~repro.protocol.messages.ForwardedConsumption`).

Master side: answers verify requests from its registry and accepts
forwarded consumption into its ledger queue, stamped ``roaming``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ProtocolError
from repro.faults.retry import RetryPolicy, RetryTimer
from repro.ids import AggregatorId, DeviceId
from repro.obs.spans import DISABLED_TRACER, Span, SpanTracer
from repro.protocol.messages import (
    ConsumptionReport,
    ForwardedConsumption,
    MembershipVerifyRequest,
    MembershipVerifyResponse,
)
from repro.transport.base import Mesh

# Called when a verify verdict arrives for a pending temporary registration.
VerifyCallback = Callable[[MembershipVerifyResponse], None]


@dataclass
class RoamingStats:
    """Counters the mobility experiments read."""

    verify_requests_sent: int = 0
    verify_requests_answered: int = 0
    verify_retries: int = 0
    verify_timeouts: int = 0
    verify_responses_late: int = 0
    expired_evictions: int = 0
    reports_forwarded: int = 0
    forwarded_received: int = 0


@dataclass
class _PendingVerify:
    """One in-flight verify conversation (callback + its retry timer)."""

    callback: VerifyCallback
    timer: RetryTimer | None = None
    span: Span | None = None


class RoamingLiaison:
    """One aggregator's backhaul conversation state.

    Args:
        aggregator_id: The owning aggregator.
        mesh: The backhaul network (any
            :class:`~repro.transport.base.Mesh` implementation).
        retry: Verify-request retry/timeout policy.  ``None`` disables
            expiry (a master that never answers then leaks the pending
            entry — legacy behaviour, kept only for isolated tests).
        expired_cap: Maximum devices remembered as "verify expired,
            verdict may still arrive".  Oldest entries are evicted FIFO
            beyond the cap (counted in ``stats.expired_evictions``), so
            long chaos runs with partitioned masters cannot leak one
            entry per device forever.
    """

    def __init__(
        self,
        aggregator_id: AggregatorId,
        mesh: Mesh,
        retry: RetryPolicy | None = None,
        expired_cap: int = 512,
    ) -> None:
        self._aggregator_id = aggregator_id
        self._mesh = mesh
        self._retry = retry
        self._pending_verifies: dict[DeviceId, _PendingVerify] = {}
        # Insertion-ordered so the FIFO eviction below is O(1); values
        # are unused (this is an ordered set).
        self._expired_verifies: dict[DeviceId, None] = {}
        self._expired_cap = max(1, expired_cap)
        sim = getattr(mesh, "sim", None)
        self._spans: SpanTracer = (
            getattr(sim, "spans", DISABLED_TRACER) if sim is not None else DISABLED_TRACER
        )
        self.stats = RoamingStats()

    @property
    def aggregator_id(self) -> AggregatorId:
        """The owning aggregator."""
        return self._aggregator_id

    @property
    def pending_verify_count(self) -> int:
        """Verify requests awaiting a master's answer."""
        return len(self._pending_verifies)

    # -- host side -----------------------------------------------------

    def request_verification(
        self,
        device_id: DeviceId,
        claimed_master: AggregatorId,
        on_verdict: VerifyCallback,
        parent_span: Span | None = None,
    ) -> None:
        """Ask ``claimed_master`` to vouch for ``device_id``.

        With a retry policy, an unanswered request is re-sent with
        exponential backoff; once the attempt budget is spent the
        pending entry expires with a synthesized negative verdict (the
        registration fails closed) instead of leaking forever.

        ``parent_span`` nests the verify conversation under the
        registration that triggered it in the span tree.
        """
        pending = self._pending_verifies.get(device_id)
        if pending is not None:
            # A re-sent registration while the first verify is in flight:
            # keep the newest callback.
            pending.callback = on_verdict
            return
        self._expired_verifies.pop(device_id, None)
        request = MembershipVerifyRequest(
            device_id=device_id,
            claimed_master=claimed_master,
            host=self._aggregator_id,
        )

        def _resend() -> None:
            self.stats.verify_retries += 1
            self._mesh.send(self._aggregator_id, claimed_master, request)
            self.stats.verify_requests_sent += 1

        def _give_up() -> None:
            self._expire_verify(device_id, claimed_master)

        pending = _PendingVerify(
            callback=on_verdict,
            span=self._spans.begin(
                "roaming.verify",
                self._aggregator_id.name,
                parent=parent_span,
                device=device_id.name,
                master=claimed_master.name,
            ),
        )
        if self._retry is not None:
            pending.timer = RetryTimer(
                self._mesh.sim,
                self._retry,
                attempt_fn=_resend,
                on_give_up=_give_up,
                rng=self._mesh.sim.rng.stream(
                    f"{self._aggregator_id.name}:verify-retry"
                ),
                label=f"{self._aggregator_id.name}:verify:{device_id.name}",
            )
        self._pending_verifies[device_id] = pending
        self._mesh.send(self._aggregator_id, claimed_master, request)
        self.stats.verify_requests_sent += 1
        if pending.timer is not None:
            pending.timer.arm()

    def _expire_verify(self, device_id: DeviceId, claimed_master: AggregatorId) -> None:
        """Give up on a verify the master never answered."""
        pending = self._pending_verifies.pop(device_id, None)
        if pending is None:
            return
        self.stats.verify_timeouts += 1
        if pending.span is not None:
            self._spans.finish(pending.span, "timeout")
        self._expired_verifies[device_id] = None
        while len(self._expired_verifies) > self._expired_cap:
            self._expired_verifies.pop(next(iter(self._expired_verifies)))
            self.stats.expired_evictions += 1
        self._mesh.trace(
            "roaming.verify_timeout",
            device=device_id.name,
            master=claimed_master.name,
        )
        # Fail closed: the registration is answered negatively so the
        # device gets its Nack instead of waiting forever.
        pending.callback(
            MembershipVerifyResponse(
                device_id=device_id, master=claimed_master, valid=False
            )
        )

    def forward_report(self, report: ConsumptionReport, master: AggregatorId) -> None:
        """Send an accepted roaming report home as a cost center."""
        self._mesh.send(
            self._aggregator_id,
            master,
            ForwardedConsumption(report=report, host=self._aggregator_id),
        )
        self.stats.reports_forwarded += 1

    def handle_verify_response(self, response: MembershipVerifyResponse) -> None:
        """Dispatch an arriving verdict to the waiting registration.

        A verdict landing after its request already expired is counted
        and ignored (the negative verdict was already delivered); a
        verdict that was never requested is a protocol violation.
        """
        pending = self._pending_verifies.pop(response.device_id, None)
        if pending is None:
            if response.device_id in self._expired_verifies:
                self._expired_verifies.pop(response.device_id, None)
                self.stats.verify_responses_late += 1
                return
            # A verdict whose expired entry was FIFO-evicted is
            # indistinguishable from a genuinely unsolicited one; the
            # cap is sized to make that window negligible.
            raise ProtocolError(
                f"unsolicited verify response for {response.device_id} "
                f"at {self._aggregator_id}"
            )
        if pending.timer is not None:
            pending.timer.settle()
        if pending.span is not None:
            self._spans.finish(
                pending.span,
                "ok" if response.valid else "invalid",
                valid=response.valid,
            )
        pending.callback(response)

    # -- master side ---------------------------------------------------

    def answer_verification(
        self,
        request: MembershipVerifyRequest,
        is_member: bool,
    ) -> None:
        """Reply to a host's verify request with the registry verdict."""
        if request.claimed_master != self._aggregator_id:
            raise ProtocolError(
                f"verify request for master {request.claimed_master} "
                f"arrived at {self._aggregator_id}"
            )
        response = MembershipVerifyResponse(
            device_id=request.device_id,
            master=self._aggregator_id,
            valid=is_member,
        )
        self._mesh.send(self._aggregator_id, request.host, response)
        self.stats.verify_requests_answered += 1

    def note_forwarded_received(self) -> None:
        """Count one forwarded report accepted from a host."""
        self.stats.forwarded_received += 1

    def send_remove(self, device_id: DeviceId, old_master: AggregatorId) -> None:
        """Sequence 3: tell the old master to delete a transferred device."""
        from repro.protocol.messages import RemoveDevice

        self._mesh.send(self._aggregator_id, old_master, RemoveDevice(device_id))
