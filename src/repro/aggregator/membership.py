"""Membership registry.

Tracks the two membership kinds of Fig. 3:

* **master** — the device's home; "the home network retains the
  membership of the device at all times unless there is a message to
  remove it" (§II-C),
* **temporary** — a roaming device hosted "as cost center" on behalf of
  its master; "if the device moves out of Network 2, the temporary
  membership is immediately discarded".

The registry also owns address assignment and the TDMA slot grant, since
both are bounded per-aggregator resources tied to membership lifetime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MembershipError
from repro.ids import AggregatorId, DeviceId, NetworkAddress
from repro.net.tdma import TdmaSchedule


class MembershipKind(enum.Enum):
    """Master (home) or temporary (roaming) membership."""

    MASTER = "master"
    TEMPORARY = "temporary"


@dataclass
class Membership:
    """One registry entry.

    Attributes:
        device_id: The member device.
        kind: Master or temporary.
        address: Address granted in this network.
        master_address: For temporary members, the home address the data
            is forwarded to; None for master members.
        registered_at: Grant time.
        last_report_at: Time of the newest accepted report (drives
            temporary-membership expiry).
    """

    device_id: DeviceId
    kind: MembershipKind
    address: NetworkAddress
    master_address: NetworkAddress | None
    registered_at: float
    last_report_at: float


class MembershipRegistry:
    """Address book + slot allocator of one aggregator.

    Args:
        aggregator_id: The owning aggregator (scopes the addresses).
        tdma: Slot schedule; its capacity bounds member count.
    """

    def __init__(self, aggregator_id: AggregatorId, tdma: TdmaSchedule) -> None:
        self._aggregator_id = aggregator_id
        self._tdma = tdma
        self._members: dict[DeviceId, Membership] = {}
        self._next_host = 1

    @property
    def aggregator_id(self) -> AggregatorId:
        """The owning aggregator."""
        return self._aggregator_id

    @property
    def member_count(self) -> int:
        """Total current members of both kinds."""
        return len(self._members)

    def members(self, kind: MembershipKind | None = None) -> list[Membership]:
        """Current memberships, optionally filtered by kind."""
        if kind is None:
            return list(self._members.values())
        return [m for m in self._members.values() if m.kind == kind]

    def get(self, device_id: DeviceId) -> Membership | None:
        """The membership of ``device_id`` here, or None."""
        return self._members.get(device_id)

    def is_master_member(self, device_id: DeviceId) -> bool:
        """True when this aggregator is the device's home."""
        member = self._members.get(device_id)
        return member is not None and member.kind == MembershipKind.MASTER

    def _allocate_address(self) -> NetworkAddress:
        address = NetworkAddress(self._aggregator_id, self._next_host)
        self._next_host += 1
        return address

    def register_master(self, device_id: DeviceId, at_time: float) -> Membership:
        """Create a permanent (home) membership."""
        existing = self._members.get(device_id)
        if existing is not None:
            if existing.kind == MembershipKind.MASTER:
                return existing
            raise MembershipError(
                f"{device_id} already holds a temporary membership here"
            )
        self._tdma.assign(device_id)
        member = Membership(
            device_id=device_id,
            kind=MembershipKind.MASTER,
            address=self._allocate_address(),
            master_address=None,
            registered_at=at_time,
            last_report_at=at_time,
        )
        self._members[device_id] = member
        return member

    def register_temporary(
        self,
        device_id: DeviceId,
        master_address: NetworkAddress,
        at_time: float,
    ) -> Membership:
        """Create a temporary (roaming) membership on behalf of a master."""
        if master_address.aggregator == self._aggregator_id:
            raise MembershipError(
                f"{device_id} claims this aggregator as master; use register_master"
            )
        existing = self._members.get(device_id)
        if existing is not None:
            if existing.kind == MembershipKind.TEMPORARY:
                return existing
            raise MembershipError(f"{device_id} is a master member here")
        self._tdma.assign(device_id)
        member = Membership(
            device_id=device_id,
            kind=MembershipKind.TEMPORARY,
            address=self._allocate_address(),
            master_address=master_address,
            registered_at=at_time,
            last_report_at=at_time,
        )
        self._members[device_id] = member
        return member

    def touch(self, device_id: DeviceId, at_time: float) -> None:
        """Record report activity (resets expiry for temporary members)."""
        member = self._members.get(device_id)
        if member is None:
            raise MembershipError(f"{device_id} is not a member")
        member.last_report_at = at_time

    def remove(self, device_id: DeviceId) -> Membership:
        """Delete a membership of either kind, releasing its slot."""
        member = self._members.pop(device_id, None)
        if member is None:
            raise MembershipError(f"{device_id} is not a member")
        self._tdma.release(device_id)
        return member

    def expire_temporaries(self, now: float, timeout_s: float) -> list[Membership]:
        """Discard temporary members silent for longer than ``timeout_s``.

        Implements "if the device moves out of Network 2, the temporary
        membership is immediately discarded" — the host detects the move
        by missing reports.
        """
        if timeout_s <= 0:
            raise MembershipError(f"timeout must be positive, got {timeout_s}")
        expired = [
            m
            for m in self._members.values()
            if m.kind == MembershipKind.TEMPORARY
            and now - m.last_report_at > timeout_s
        ]
        for member in expired:
            self.remove(member.device_id)
        return expired
