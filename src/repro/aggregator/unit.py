"""The aggregator unit: one trusted node per grid-location.

Composes broker, membership registry, TDMA schedule, feeder meter,
verification, ledger writer, roaming liaison and time sync into the
actor that runs both aggregator-side sequences of Fig. 3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.aggregator.aggregation import ReportAggregator
from repro.aggregator.ledger_writer import LedgerWriter
from repro.aggregator.membership import MembershipKind, MembershipRegistry
from repro.aggregator.roaming import RoamingLiaison
from repro.aggregator.verification import ReportVerifier, VerificationPolicy
from repro.chain.ledger import Blockchain
from repro.errors import ChainError, ConfigError, ProtocolError, SlotAllocationError
from repro.faults.retry import RetryPolicy
from repro.grid.meter import FeederMeter
from repro.grid.topology import GridNetwork
from repro.hw.rpi import RaspberryPi
from repro.ids import AggregatorId, DeviceId, NetworkAddress
from repro.monitoring.timeseries import SeriesBank
from repro.net.tdma import TdmaSchedule
from repro.net.timesync import TimeSyncService
from repro.protocol.codec import as_message, encode_message
from repro.protocol.messages import (
    Ack,
    ConsumptionReport,
    ForwardedConsumption,
    HeaderBatchRequest,
    HeaderBatchResponse,
    MembershipVerifyRequest,
    MembershipVerifyResponse,
    MgmtCommand,
    MgmtResponse,
    Nack,
    NackReason,
    ReceiptRequest,
    ReceiptResponse,
    RegistrationRequest,
    RegistrationResponse,
    RemoveDevice,
    TransferMembership,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.transport.base import Endpoint, Mesh, Transport

if TYPE_CHECKING:
    from repro.runtime.context import SimContext

# Upper bound on headers served per batch regardless of what a client
# asks for — bounds response size on constrained downlinks.
_MAX_HEADER_BATCH = 256


@dataclass(frozen=True)
class AggregatorConfig:
    """Static configuration of one aggregator unit.

    Attributes:
        t_measure_s: Reporting interval / feeder sampling period.
        slot_count: TDMA slots — bounds devices per aggregator.
        block_interval_s: Cadence of ledger block creation.
        temp_member_timeout_s: Silence after which a temporary
            membership is discarded (device left the network).
        downlink_latency_s: Broker-to-device delivery latency.
        timesync_interval_s: RTC discipline period.
        residual_check_windows: Rolling windows averaged per residual
            check.  A device and the feeder meter can sample opposite
            sides of a sharp load edge in one window; averaging K
            windows suppresses that skew while persistent manipulation
            still accumulates.
        verification: Report/network screen policy.
        verify_retry: Timeout/backoff policy for backhaul membership
            verifies (None leaves unanswered verifies pending forever).
    """

    t_measure_s: float = 0.1
    slot_count: int = 16
    block_interval_s: float = 1.0
    temp_member_timeout_s: float = 2.0
    downlink_latency_s: float = 0.003
    timesync_interval_s: float = 60.0
    residual_check_windows: int = 5
    verification: VerificationPolicy = field(default_factory=VerificationPolicy)
    verify_retry: RetryPolicy | None = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.t_measure_s <= 0:
            raise ConfigError(f"t_measure must be positive, got {self.t_measure_s}")
        if self.block_interval_s <= 0:
            raise ConfigError(
                f"block interval must be positive, got {self.block_interval_s}"
            )
        if self.temp_member_timeout_s <= 0:
            raise ConfigError(
                f"temp timeout must be positive, got {self.temp_member_timeout_s}"
            )
        if self.downlink_latency_s < 0:
            raise ConfigError(
                f"downlink latency must be >= 0, got {self.downlink_latency_s}"
            )
        if self.residual_check_windows < 1:
            raise ConfigError(
                f"residual check windows must be >= 1, got {self.residual_check_windows}"
            )


class AggregatorUnit(Process):
    """One aggregator: endpoint host, verifier, ledger writer, liaison.

    Args:
        runtime: The kernel, or a shared :class:`SimContext` (the
            endpoint and time-sync sub-processes inherit it, so all of
            the unit's actors emit into the same counter bank and trace
            stream).
        aggregator_id: This unit's identity (names its WAN).
        chain: The common permissioned blockchain.
        mesh: The inter-aggregator backhaul.
        grid_network: The grid-location this unit meters.
        config: Static configuration.
        transport: Transport backend hosting this unit's device-facing
            endpoint; defaults to a standalone
            :class:`~repro.transport.mqtt.MqttTransport` (an MQTT broker
            without a radio environment — the historic behaviour).
    """

    def __init__(
        self,
        runtime: "Simulator | SimContext",
        aggregator_id: AggregatorId,
        chain: Blockchain,
        mesh: Mesh,
        grid_network: GridNetwork,
        config: AggregatorConfig | None = None,
        transport: Transport | None = None,
    ) -> None:
        super().__init__(runtime, aggregator_id.name)
        if transport is None:
            from repro.transport.mqtt import MqttTransport

            transport = MqttTransport()
        self._aggregator_id = aggregator_id
        self._config = config or AggregatorConfig()
        self._host = RaspberryPi(self.rng("host"))
        self._broker: Endpoint = transport.make_endpoint(self.context, aggregator_id.name)
        self._tdma = TdmaSchedule(self._config.t_measure_s, self._config.slot_count)
        self._registry = MembershipRegistry(aggregator_id, self._tdma)
        self._meter = FeederMeter(grid_network, self.rng("feeder-sensor"))
        self._aggregation = ReportAggregator(self._config.t_measure_s)
        self._verifier = ReportVerifier(self._config.verification)
        self._writer = LedgerWriter(chain, aggregator_id.name)
        self._liaison = RoamingLiaison(
            aggregator_id, mesh, retry=self._config.verify_retry
        )
        self._timesync = TimeSyncService(
            self.context, f"{aggregator_id.name}-timesync", self._config.timesync_interval_s
        )
        self._bank = SeriesBank()
        self._started = False
        self._down = False
        self._mesh = mesh
        self._duties: list[Any] = []
        self._acks_sent = 0
        self._nacks_sent = 0
        self._last_checked_window_start = -1.0
        # Residual checks are suppressed while membership churns: a
        # newly attached device consumes (the feeder sees it) before its
        # registration completes, which would trip the sum check.
        self._membership_settle_until = 0.0
        self._residual_window: deque[tuple[float, float]] = deque(
            maxlen=self._config.residual_check_windows
        )

        self._chain = chain
        chain.authorize(aggregator_id.name)
        mesh.add_aggregator(aggregator_id, self._on_backhaul)
        self._broker.subscribe("meter/+/register", self._on_register)
        self._broker.subscribe("meter/+/report", self._on_report)
        self._broker.subscribe("meter/+/receipt", self._on_receipt_request)
        self._broker.subscribe("meter/+/chainsync", self._on_header_request)
        self._broker.subscribe("meter/+/mgmt", self._on_mgmt_response)
        self._next_mgmt_request = 1
        self._mgmt_responses: dict[int, MgmtResponse] = {}
        # In-process endpoints take message dataclasses verbatim; radio
        # endpoints need encoded wire bytes.
        self._wire_bytes = self._broker.wire_bytes
        # Per-event strings built once: the report path formats nothing
        # per message.
        self._ctrl_topics: dict[DeviceId, str] = {}
        self._received_keys: dict[DeviceId, str] = {}
        self._report_label = f"{self.name}:report"
        self._reg_label = f"{self.name}:reg"

    # -- introspection ---------------------------------------------------

    @property
    def aggregator_id(self) -> AggregatorId:
        """This unit's identity."""
        return self._aggregator_id

    @property
    def endpoint(self) -> Endpoint:
        """The hosted transport endpoint (devices connect here)."""
        return self._broker

    @property
    def broker(self) -> Endpoint:
        """Legacy alias for :attr:`endpoint` (pre-transport-layer name)."""
        return self._broker

    @property
    def registry(self) -> MembershipRegistry:
        """The membership registry."""
        return self._registry

    @property
    def verifier(self) -> ReportVerifier:
        """The verification pipeline (stats live here)."""
        return self._verifier

    @property
    def writer(self) -> LedgerWriter:
        """The ledger writer."""
        return self._writer

    @property
    def liaison(self) -> RoamingLiaison:
        """The roaming liaison (backhaul stats live here)."""
        return self._liaison

    @property
    def timesync(self) -> TimeSyncService:
        """The time-sync service devices register their RTCs with."""
        return self._timesync

    @property
    def aggregation(self) -> ReportAggregator:
        """The windowed report/feeder aggregation."""
        return self._aggregation

    @property
    def meter(self) -> FeederMeter:
        """The feeder meter (system-level complementary measurement)."""
        return self._meter

    @property
    def monitoring(self) -> SeriesBank:
        """Recorded time series (feeder, per-device arrivals)."""
        return self._bank

    @property
    def acks_sent(self) -> int:
        """Positive acknowledgments sent to devices."""
        return self._acks_sent

    @property
    def nacks_sent(self) -> int:
        """Negative acknowledgments sent to devices."""
        return self._nacks_sent

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Begin periodic duties: feeder sampling, blocks, expiry, sync."""
        if self._started:
            return
        self._started = True
        self._arm_duties()

    def _arm_duties(self) -> None:
        self._duties = [
            self.sim.every(
                self._config.t_measure_s, self._feeder_tick, label=f"{self.name}:feeder"
            ),
            self.sim.every(
                self._config.block_interval_s, self._flush_block, label=f"{self.name}:block"
            ),
            self.sim.every(
                self._config.temp_member_timeout_s / 2.0,
                self._expire_temporaries,
                label=f"{self.name}:expiry",
            ),
        ]
        self._timesync.start()

    def _stop_duties(self) -> None:
        for task in self._duties:
            task.stop()
        self._duties = []
        self._timesync.stop()

    # -- device-facing messaging -------------------------------------------

    def _note_membership_change(self) -> None:
        """Suppress residual checks while the member set stabilises.

        Other devices entering the same network are typically mid-join
        (feeder-visible but unregistered), so the sum check would flag
        honest startup; two seconds comfortably covers join-time jitter.
        """
        self._membership_settle_until = max(
            self._membership_settle_until, self.now + 2.0
        )

    def _send_to_device(self, device_id: DeviceId, message: Any) -> None:
        topic = self._ctrl_topics.get(device_id)
        if topic is None:
            topic = self._ctrl_topics[device_id] = f"device/{device_id.name}/ctrl"
        self._broker.deliver(
            topic,
            encode_message(message) if self._wire_bytes else message,
            after_s=self._config.downlink_latency_s,
        )

    def _ack(self, device_id: DeviceId, sequence: int | None = None) -> None:
        self._acks_sent += 1
        self.count("acks_sent")
        self._send_to_device(device_id, Ack(device_id, sequence))

    def _nack(
        self, device_id: DeviceId, reason: NackReason, sequence: int | None = None
    ) -> None:
        self._nacks_sent += 1
        self.count("nacks_sent")
        self._send_to_device(device_id, Nack(device_id, reason, sequence))

    # -- registration (Fig. 3, sequences 1 and 2) ---------------------------

    def _on_register(self, topic: str, payload: Any) -> None:
        message = as_message(payload)
        if not isinstance(message, RegistrationRequest):
            raise ProtocolError(f"non-registration message on {topic}")
        span = None
        if self._spans.enabled:
            span = self._spans.begin(
                "membership.register", self.name, device=message.device_id.name
            )
        delay = self._host.processing_latency_s()
        self.sim.call_later(
            delay,
            lambda: self._process_registration(message, span),
            label=self._reg_label,
        )

    def _process_registration(
        self, request: RegistrationRequest, span: Any = None
    ) -> None:
        device_id = request.device_id
        spans = self._spans
        if request.master is None:
            # Sequence 1: new home membership.
            try:
                member = self._registry.register_master(device_id, self.now)
            except SlotAllocationError:
                # "With limited time-slots ... the number of devices
                # connected to an aggregator is also limited": admission
                # control, not a crash.
                self.trace("agg.network_full", device=device_id.name)
                self._nack(device_id, NackReason.NETWORK_FULL)
                if span is not None:
                    spans.finish(span, "nack", reason="network_full")
                return
            self._note_membership_change()
            self.trace("agg.register_master", device=device_id.name)
            self._send_to_device(
                device_id,
                RegistrationResponse(device_id, member.address, temporary=False),
            )
            if span is not None:
                spans.finish(span, "ok", kind="master")
            return
        if request.master.aggregator == self._aggregator_id:
            # The device claims us as its home.
            member = self._registry.get(device_id)
            if member is not None and member.kind == MembershipKind.MASTER:
                self._send_to_device(
                    device_id,
                    RegistrationResponse(device_id, member.address, temporary=False),
                )
                if span is not None:
                    spans.finish(span, "ok", kind="master")
            elif self._ledger_vouches_for(device_id):
                # Post-restart recovery: the registry (RAM) is gone but
                # the durable chain holds this device's home records —
                # the claim checks out, so re-admit it.
                try:
                    member = self._registry.register_master(device_id, self.now)
                except SlotAllocationError:
                    self._nack(device_id, NackReason.NETWORK_FULL)
                    if span is not None:
                        spans.finish(span, "nack", reason="network_full")
                    return
                self._note_membership_change()
                self.trace("agg.re_registered_from_ledger", device=device_id.name)
                self._send_to_device(
                    device_id,
                    RegistrationResponse(device_id, member.address, temporary=False),
                )
                if span is not None:
                    spans.finish(span, "ok", kind="master", re_registered=True)
            else:
                self._nack(device_id, NackReason.UNKNOWN_MASTER)
                if span is not None:
                    spans.finish(span, "nack", reason="unknown_master")
            return
        # Sequence 2: temporary membership, verify with the master first.
        master_address = request.master

        def _on_verdict(response: MembershipVerifyResponse) -> None:
            if response.valid:
                try:
                    member = self._registry.register_temporary(
                        device_id, master_address, self.now
                    )
                except SlotAllocationError:
                    self.trace("agg.network_full", device=device_id.name)
                    self._nack(device_id, NackReason.NETWORK_FULL)
                    if span is not None:
                        spans.finish(span, "nack", reason="network_full")
                    return
                self._note_membership_change()
                self.trace(
                    "agg.register_temporary",
                    device=device_id.name,
                    master=master_address.aggregator.name,
                )
                self._send_to_device(
                    device_id,
                    RegistrationResponse(device_id, member.address, temporary=True),
                )
                if span is not None:
                    spans.finish(span, "ok", kind="temporary")
            else:
                self.trace("agg.verify_failed", device=device_id.name)
                self._nack(device_id, NackReason.VERIFICATION_FAILED)
                if span is not None:
                    spans.finish(span, "nack", reason="verification_failed")

        # The verify conversation nests under this registration span.
        self._liaison.request_verification(
            device_id, master_address.aggregator, _on_verdict, parent_span=span
        )

    def _ledger_vouches_for(self, device_id: DeviceId) -> bool:
        """Whether the durable chain holds home records of this device.

        Used to rebuild membership after a restart: a device whose
        validated consumption this aggregator previously committed is a
        legitimate home member even though the RAM registry is empty.
        """
        for record in self._chain.records_for_device(device_id.uid):
            if record.get("network") == self._aggregator_id.name and not record.get(
                "roaming"
            ):
                return True
        return False

    # -- reports -------------------------------------------------------------

    def _on_report(self, topic: str, payload: Any) -> None:
        message = as_message(payload)
        if not isinstance(message, ConsumptionReport):
            raise ProtocolError(f"non-report message on {topic}")
        span = None
        if self._spans.enabled:
            span = self._spans.begin(
                "report.conversation",
                self.name,
                device=message.device_id.name,
                sequence=message.sequence,
            )
        delay = self._host.processing_latency_s()
        self.sim.call_later(
            delay, lambda: self._process_report(message, span), label=self._report_label
        )

    def _process_report(self, report: ConsumptionReport, span: Any = None) -> None:
        device_id = report.device_id
        member = self._registry.get(device_id)
        if member is None:
            # Sequence 2 trigger: report from a non-member.
            self.trace("agg.nack_not_member", device=device_id.name)
            self._nack(device_id, NackReason.NOT_A_MEMBER, report.sequence)
            if span is not None:
                self._spans.finish(span, "nack", reason="not_a_member")
            return
        verdict = self._verifier.screen_report(report)
        if verdict.anomalous:
            self.trace(
                "agg.report_rejected", device=device_id.name, reason=verdict.reason
            )
            self._nack(device_id, NackReason.ANOMALOUS_REPORT, report.sequence)
            if span is not None:
                self._spans.finish(span, "nack", reason=verdict.reason)
            return
        self._registry.touch(device_id, self.now)
        self._aggregation.add_report(device_id, report.measured_at, report.current_ma)
        received_key = self._received_keys.get(device_id)
        if received_key is None:
            received_key = self._received_keys[device_id] = f"received:{device_id.name}"
        self._bank.record(received_key, self.now, report.current_ma, "mA")
        if member.kind == MembershipKind.TEMPORARY:
            # Host as cost center: Ack locally, forward home.
            self._ack(device_id, report.sequence)
            assert member.master_address is not None
            self._liaison.forward_report(report, member.master_address.aggregator)
            self.trace("agg.forwarded", device=device_id.name)
            if span is not None:
                self._spans.finish(span, "forwarded")
            return
        record = report.to_record()
        record["roaming"] = False
        record["network"] = self._aggregator_id.name
        self._writer.stage(record)
        self._ack(device_id, report.sequence)
        if span is not None:
            self._spans.finish(span, "accepted")

    # -- remote device management ----------------------------------------------

    @property
    def mgmt_responses(self) -> dict[int, "MgmtResponse"]:
        """Management replies received, keyed by request id."""
        return dict(self._mgmt_responses)

    def manage_device(
        self, device_id: DeviceId, command: str, argument: float | None = None
    ) -> int:
        """Send a remote-management command; returns its request id.

        The device's reply appears in :attr:`mgmt_responses` once it
        arrives.  The device must be a current member (the downlink uses
        this aggregator's broker).
        """
        if self._registry.get(device_id) is None:
            raise ProtocolError(f"{device_id} is not a member of {self.name}")
        request_id = self._next_mgmt_request
        self._next_mgmt_request += 1
        self._send_to_device(
            device_id, MgmtCommand(device_id, request_id, command, argument)
        )
        self.trace("agg.mgmt_sent", device=device_id.name, command=command)
        return request_id

    def _on_mgmt_response(self, topic: str, payload: Any) -> None:
        message = as_message(payload)
        if not isinstance(message, MgmtResponse):
            raise ProtocolError(f"non-mgmt message on {topic}")
        self._mgmt_responses[message.request_id] = message

    # -- billing-dispute receipts --------------------------------------------

    def _on_receipt_request(self, topic: str, payload: Any) -> None:
        message = as_message(payload)
        if not isinstance(message, ReceiptRequest):
            raise ProtocolError(f"non-receipt message on {topic}")
        delay = self._host.processing_latency_s()
        self.sim.call_later(
            delay, lambda: self._process_receipt_request(message),
            label=f"{self.name}:receipt",
        )

    def _process_receipt_request(self, request: ReceiptRequest) -> None:
        from repro.chain.receipts import find_and_issue, receipt_to_dict

        try:
            receipt = find_and_issue(
                self._chain, request.device_id.uid, request.sequence
            )
        except ChainError:
            self._send_to_device(
                request.device_id,
                ReceiptResponse(request.device_id, request.sequence, found=False),
            )
            return
        self.trace("agg.receipt_issued", device=request.device_id.name,
                   sequence=request.sequence)
        self._send_to_device(
            request.device_id,
            ReceiptResponse(
                request.device_id,
                request.sequence,
                found=True,
                receipt=receipt_to_dict(receipt),
            ),
        )

    # -- lightweight-client header sync ---------------------------------------

    def _on_header_request(self, topic: str, payload: Any) -> None:
        message = as_message(payload)
        if not isinstance(message, HeaderBatchRequest):
            raise ProtocolError(f"non-chainsync message on {topic}")
        delay = self._host.processing_latency_s()
        self.sim.call_later(
            delay, lambda: self._process_header_request(message),
            label=f"{self.name}:chainsync",
        )

    def _process_header_request(self, request: HeaderBatchRequest) -> None:
        count = min(request.max_count, _MAX_HEADER_BATCH)
        start = request.from_height
        checkpoint: dict[str, Any] | None = None
        if start == 0:
            # A fresh client syncing from genesis fast-forwards to the
            # latest committed checkpoint instead of replaying the whole
            # chain header by header (Danzi et al.: bootstrap cost must
            # not grow with ledger age).
            latest = self._chain.latest_checkpoint
            if latest is not None and latest.height > count:
                checkpoint = latest.to_dict()
                start = latest.height
        headers = tuple(hr.to_dict() for hr in self._chain.headers(start, count))
        self.trace(
            "agg.headers_served",
            device=request.device_id.name,
            from_height=start,
            count=len(headers),
            anchored=checkpoint is not None,
        )
        self._send_to_device(
            request.device_id,
            HeaderBatchResponse(
                request.device_id, start, self._chain.height, headers, checkpoint
            ),
        )

    # -- backhaul -------------------------------------------------------------

    def _on_backhaul(self, source: AggregatorId, payload: Any) -> None:
        if isinstance(payload, MembershipVerifyRequest):
            is_member = self._registry.is_master_member(payload.device_id)
            self._liaison.answer_verification(payload, is_member)
        elif isinstance(payload, MembershipVerifyResponse):
            self._liaison.handle_verify_response(payload)
        elif isinstance(payload, ForwardedConsumption):
            self._liaison.note_forwarded_received()
            report = payload.report
            record = report.to_record()
            record["roaming"] = True
            record["network"] = self._aggregator_id.name
            record["host"] = payload.host.name
            self._writer.stage(record)
            self._bank.record(
                f"received:{report.device_id.name}", self.now, report.current_ma, "mA"
            )
            self.trace(
                "agg.forwarded_received",
                device=report.device_id.name,
                host=payload.host.name,
            )
        elif isinstance(payload, RemoveDevice):
            if self._registry.get(payload.device_id) is not None:
                self._registry.remove(payload.device_id)
            self.trace("agg.removed_by_transfer", device=payload.device_id.name)
        else:
            raise ProtocolError(
                f"unexpected backhaul payload {type(payload).__name__} at {self.name}"
            )

    # -- membership administration (Fig. 3, sequence 3) -------------------------

    def accept_transfer(self, device_id: DeviceId, old_master: AggregatorId) -> NetworkAddress:
        """Become the device's new home (transfer-of-ownership).

        Registers a master membership here, tells the device its updated
        master address, and asks the old master to delete its membership.
        Returns the new master address.
        """
        existing = self._registry.get(device_id)
        if existing is not None and existing.kind == MembershipKind.TEMPORARY:
            self._registry.remove(device_id)
        member = self._registry.register_master(device_id, self.now)
        self._note_membership_change()
        self._send_to_device(device_id, TransferMembership(device_id, member.address))
        self._liaison.send_remove(device_id, old_master)
        self.trace("agg.transfer_accepted", device=device_id.name)
        return member.address

    def remove_device(self, device_id: DeviceId) -> None:
        """Administratively remove a device (loss/reset)."""
        self._registry.remove(device_id)
        self._note_membership_change()
        self._send_to_device(device_id, RemoveDevice(device_id))
        self.trace("agg.device_removed", device=device_id.name)

    @property
    def down(self) -> bool:
        """Whether the unit is currently crashed (fault injection)."""
        return self._down

    def crash_for(self, outage_s: float) -> None:
        """Crash the whole unit for ``outage_s``, then restart it.

        During the outage the broker drops every message (devices'
        reports go unanswered and buffer locally via their retry path)
        and the mesh loses anything addressed to or from this node.  The
        restart runs :meth:`simulate_crash_restart` — volatile state is
        gone, the ledger survives — and re-arms the periodic duties.
        """
        if outage_s <= 0:
            raise ConfigError(f"outage must be positive, got {outage_s}")
        if self._down:
            raise ProtocolError(f"{self.name} is already down")
        self._down = True
        self._broker.set_down(True)
        self._mesh.set_node_down(self._aggregator_id, True)
        if self._started:
            self._stop_duties()
        self.trace("agg.crashed", outage_s=outage_s)
        self.sim.call_later(outage_s, self._restart, label=f"{self.name}:restart")

    def _restart(self) -> None:
        self._down = False
        self.simulate_crash_restart()
        self._broker.set_down(False)
        self._mesh.set_node_down(self._aggregator_id, False)
        if self._started:
            self._arm_duties()

    def simulate_crash_restart(self) -> None:
        """Aggregator process restart: volatile state gone, ledger kept.

        The membership registry, TDMA grants, aggregation windows and
        pending verifications live in RAM and are lost; the blockchain
        is durable storage and survives.  Devices recover through the
        normal protocol: their next report draws ``Nack(NOT_A_MEMBER)``
        and the Fig. 3 registration sequence re-runs, with the outage
        window covered by their local store-and-forward buffers.
        """
        self._tdma = TdmaSchedule(self._config.t_measure_s, self._config.slot_count)
        self._registry = MembershipRegistry(self._aggregator_id, self._tdma)
        self._aggregation = ReportAggregator(self._config.t_measure_s)
        self._verifier = ReportVerifier(self._config.verification)
        self._residual_window.clear()
        self._last_checked_window_start = self.now
        self._note_membership_change()
        self.trace("agg.restarted")

    # -- anomaly attribution (paper §IV future work) ------------------------------

    def attribute_anomaly(
        self,
        min_windows: int = 50,
        suspicion_threshold: float = 0.15,
    ) -> "AttributionResult":
        """Identify which member device misreports, from stored windows.

        Feeds every complete aggregation window into a least-squares
        :class:`~repro.anomaly.attribution.DeviceAttributor`.  Call it
        after the network-level residual check has been flagging — it
        answers the follow-up question the paper leaves as future work.
        """
        from repro.anomaly.attribution import DeviceAttributor

        attributor = DeviceAttributor(
            expected_loss_fraction=self._config.verification.expected_loss_fraction,
            min_windows=min_windows,
            suspicion_threshold=suspicion_threshold,
        )
        for window in self._aggregation.complete_windows():
            attributor.add_window(window.reported_ma, window.feeder_ma)
        return attributor.estimate()

    # -- periodic duties --------------------------------------------------------

    def _feeder_tick(self) -> None:
        measured = self._meter.measure_ma(self.now)
        self._aggregation.add_feeder_sample(self.now, measured)
        self._bank.record("feeder", self.now, measured, "mA")
        # Judge a window only after a two-superframe grace period so
        # every slot's report (plus transit and processing delay) has
        # arrived; judging the live window would flag mere latency.
        check_time = self.now - 2.0 * self._aggregation.window_s
        if check_time < 0:
            return
        window = self._aggregation.window_at(check_time)
        if (
            window is not None
            and window.complete
            and window.reported_ma
            and window.start > self._last_checked_window_start
        ):
            self._last_checked_window_start = window.start
            if window.start < self._membership_settle_until:
                self._residual_window.clear()
                return
            if len(window.reported_ma) < self._registry.member_count:
                # A member is silent this window (mid-registration, just
                # departed, or suppressing) — the sum check would be
                # vacuous, so count it as its own anomaly class instead.
                self._verifier.stats.missing_report_windows += 1
                self._residual_window.clear()
                self.trace(
                    "agg.missing_reports",
                    reported=len(window.reported_ma),
                    members=self._registry.member_count,
                )
                return
            self._residual_window.append((window.reported_sum_ma, window.feeder_ma))
            if len(self._residual_window) < self._residual_window.maxlen:
                return
            reported_mean = sum(r for r, _ in self._residual_window) / len(self._residual_window)
            feeder_mean = sum(f for _, f in self._residual_window) / len(self._residual_window)
            verdict = self._verifier.check_network(reported_mean, feeder_mean)
            if verdict.anomalous:
                self.trace("agg.network_anomaly", reason=verdict.reason)

    def _flush_block(self) -> None:
        blocks = self._writer.flush(self.now)
        if blocks:
            self.count("blocks_written", len(blocks))
            self.trace(
                "agg.blocks_written",
                count=len(blocks),
                records=sum(b.header.record_count for b in blocks),
            )

    def _expire_temporaries(self) -> None:
        expired = self._registry.expire_temporaries(
            self.now, self._config.temp_member_timeout_s
        )
        if expired:
            self._note_membership_change()
        for member in expired:
            self.trace("agg.temp_expired", device=member.device_id.name)
