"""CPU budget helpers shared by every multi-process executor.

CI containers (and cgroup-limited deployments generally) often expose
fewer *schedulable* CPUs than ``os.cpu_count()`` reports — the machine
may have 64 cores while the container is pinned to 2.  Sizing worker
pools from ``cpu_count()`` there oversubscribes the allowance and every
worker runs slower than the serial path.  ``sched_getaffinity`` reports
the schedulable set, so it is the number that actually bounds useful
parallelism; platforms without it (macOS) fall back to ``cpu_count()``.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError


def available_cpus() -> int:
    """Number of CPUs this process may actually be scheduled on."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request to a concrete pool size.

    ``None`` or ``0`` autodetects via :func:`available_cpus`; positive
    values pass through untouched (an explicit request may deliberately
    oversubscribe); anything negative is a configuration error.
    """
    if workers is None or workers == 0:
        return available_cpus()
    if workers < 0:
        raise ConfigError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers
