"""Scenario-level configuration with JSON round-tripping.

Component configs live next to their components
(:class:`~repro.device.stack.DeviceConfig`,
:class:`~repro.aggregator.unit.AggregatorConfig`, ...).  This module
provides the top-level knobs an experiment sweep varies, plus load/save
so sweeps can be described as data.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ConfigError


@dataclass(frozen=True)
class ScenarioParams:
    """Top-level scenario knobs.

    Attributes:
        seed: Master seed.
        n_networks: Grid-locations to build.
        devices_per_network: Devices homed in each.
        t_measure_s: Reporting interval.
        duration_s: Default run length.
    """

    seed: int = 0
    n_networks: int = 2
    devices_per_network: int = 2
    t_measure_s: float = 0.1
    duration_s: float = 45.0

    def __post_init__(self) -> None:
        if self.n_networks < 1:
            raise ConfigError(f"need >= 1 network, got {self.n_networks}")
        if self.devices_per_network < 0:
            raise ConfigError(
                f"devices per network must be >= 0, got {self.devices_per_network}"
            )
        if self.t_measure_s <= 0:
            raise ConfigError(f"t_measure must be positive, got {self.t_measure_s}")
        if self.duration_s <= 0:
            raise ConfigError(f"duration must be positive, got {self.duration_s}")


def save_params(params: ScenarioParams, path: str | Path) -> None:
    """Write params as pretty JSON."""
    Path(path).write_text(json.dumps(asdict(params), indent=2) + "\n")


def load_params(path: str | Path) -> ScenarioParams:
    """Read params back, validating field names and values."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load scenario params from {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError(f"params file {path} must hold a JSON object")
    allowed = set(ScenarioParams.__dataclass_fields__)
    unknown = set(data) - allowed
    if unknown:
        raise ConfigError(f"unknown scenario param(s) {sorted(unknown)} in {path}")
    return ScenarioParams(**data)
