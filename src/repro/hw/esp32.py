"""ESP32 device MCU model.

The testbed devices are Sparkfun ESP32 Things [11].  For the experiments,
what matters is the device's *current draw over time*, which depends on
the MCU power state (deep sleep, idle, active CPU, Wi-Fi RX/TX).  The
numbers below follow the ESP32 datasheet / SparkFun measurements:

==================  ===============
State               Typical current
==================  ===============
DEEP_SLEEP          0.01 mA
LIGHT_SLEEP         0.8 mA
IDLE (modem sleep)  20 mA
ACTIVE (CPU)        45 mA
WIFI_RX             100 mA
WIFI_TX             180 mA
==================  ===============

Devices additionally draw load current for their *function* (e.g. an
e-scooter charging its battery); that part lives in the workload
profiles, not here.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError, HardwareError


class McuState(enum.Enum):
    """Power states of the ESP32 MCU."""

    DEEP_SLEEP = "deep_sleep"
    LIGHT_SLEEP = "light_sleep"
    IDLE = "idle"
    ACTIVE = "active"
    WIFI_RX = "wifi_rx"
    WIFI_TX = "wifi_tx"


# Stable per-member position for list-indexed lookup tables: an enum's
# __hash__ is a Python-level call, and the MCU's per-event state
# bookkeeping was paying for it on every dict access.
for _index, _state in enumerate(McuState):
    _state.index = _index


DEFAULT_STATE_CURRENT_MA: dict[McuState, float] = {
    McuState.DEEP_SLEEP: 0.01,
    McuState.LIGHT_SLEEP: 0.8,
    McuState.IDLE: 20.0,
    McuState.ACTIVE: 45.0,
    McuState.WIFI_RX: 100.0,
    McuState.WIFI_TX: 180.0,
}


class Esp32Mcu:
    """MCU with a power-state machine and time-in-state accounting.

    Args:
        supply_voltage_v: Operating voltage (3.3 V on the Thing board).
        state_current_ma: Override of the per-state current table.
    """

    def __init__(
        self,
        supply_voltage_v: float = 3.3,
        state_current_ma: dict[McuState, float] | None = None,
    ) -> None:
        if supply_voltage_v <= 0:
            raise ConfigError(f"supply voltage must be positive, got {supply_voltage_v}")
        table = dict(DEFAULT_STATE_CURRENT_MA)
        if state_current_ma:
            table.update(state_current_ma)
        for state, current in table.items():
            if current < 0:
                raise ConfigError(f"current for {state} must be >= 0, got {current}")
        self._supply_voltage_v = supply_voltage_v
        self._state_current_ma = table
        self._state = McuState.IDLE
        self._state_entered_at = 0.0
        # Hot-path mirrors indexed by McuState.index: set_state and
        # current_ma run per transmit/receive, and enum-keyed dict
        # lookups (a Python-level __hash__ per access) dominated them.
        self._draw_by_index = [table[s] for s in McuState]
        self._time_by_index = [0.0] * len(self._draw_by_index)

    @property
    def supply_voltage_v(self) -> float:
        """Operating voltage of the board."""
        return self._supply_voltage_v

    @property
    def state(self) -> McuState:
        """Current power state."""
        return self._state

    def current_ma(self) -> float:
        """Current draw in the present state."""
        return self._draw_by_index[self._state.index]

    def current_in_state_ma(self, state: McuState) -> float:
        """Current draw the MCU would have in ``state``."""
        return self._draw_by_index[state.index]

    def set_state(self, state: McuState, at_time: float) -> None:
        """Transition to ``state`` at simulated time ``at_time``."""
        entered_at = self._state_entered_at
        if at_time < entered_at:
            raise HardwareError(
                f"state change at {at_time} precedes last change at {entered_at}"
            )
        self._time_by_index[self._state.index] += at_time - entered_at
        self._state = state
        self._state_entered_at = at_time

    def time_in_state(self, state: McuState, now: float) -> float:
        """Total seconds spent in ``state`` up to ``now``."""
        total = self._time_by_index[state.index]
        if state is self._state:
            total += max(0.0, now - self._state_entered_at)
        return total
