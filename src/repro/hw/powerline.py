"""Ohmic wiring model.

Fig. 5's central observation is that the aggregator's system-level
measurement is 0.9-8.2 % *higher* than the sum of the device
self-reports.  The paper attributes this to "ohmic losses of various
electrical components" plus sensor error.  The mechanism: each device
measures the current *at its own terminals*, while the feeder meter sees
that current *plus* the loss current of connectors, wiring and
regulators between the feeder and the device.

We model a wire segment as a series resistance plus a small constant
leakage; the grid substrate composes segments into a feeder tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class WireSegment:
    """One series element between the feeder and a device.

    Attributes:
        resistance_ohms: Series resistance of the segment (wire, connector,
            protection diode equivalent, ...).
        leakage_ma: Constant shunt loss along the segment (indicator LEDs,
            regulator quiescent draw) seen by the feeder but not by the
            device-side sensor.
        name: Label for traces.
    """

    resistance_ohms: float = 0.15
    leakage_ma: float = 1.0
    name: str = "segment"

    def __post_init__(self) -> None:
        if self.resistance_ohms < 0:
            raise ConfigError(f"resistance must be >= 0, got {self.resistance_ohms}")
        if self.leakage_ma < 0:
            raise ConfigError(f"leakage must be >= 0, got {self.leakage_ma}")

    def loss_current_ma(self, device_current_ma: float, supply_voltage_v: float) -> float:
        """Extra current the feeder sees beyond the device's own draw.

        The I²R dissipation in the segment is supplied at the feeder
        voltage, so it appears as an additional current
        ``I² * R / V``; the leakage term adds directly.
        """
        if supply_voltage_v <= 0:
            raise ConfigError(f"supply voltage must be positive, got {supply_voltage_v}")
        amps = device_current_ma / 1000.0
        loss_w = amps * amps * self.resistance_ohms
        loss_ma = (loss_w / supply_voltage_v) * 1000.0
        return loss_ma + self.leakage_ma

    def feeder_current_ma(self, device_current_ma: float, supply_voltage_v: float) -> float:
        """Total current the feeder supplies for this device."""
        return device_current_ma + self.loss_current_ma(device_current_ma, supply_voltage_v)
