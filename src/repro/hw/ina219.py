"""INA219 current/power monitor model.

The paper's devices and aggregators all carry a TI INA219 [12].  Fig. 5's
result — the aggregator's system-level measurement reads 0.9-8.2 % above
the sum of device self-reports — is attributed to "ohmic losses of
various electrical components and the measurement error of the current
sensor", with the sensor's 0.5 mA offset error called out explicitly.

This model therefore reproduces the datasheet error terms that matter:

* **offset error** — a per-instance constant drawn once from
  [-offset_max, +offset_max] (the datasheet bounds it at 0.5 mA for the
  gain/range the paper uses),
* **gain error** — a per-instance multiplicative constant,
* **quantisation** — the 12-bit ADC over the configured range gives a
  fixed LSB; readings snap to it,
* **noise** — zero-mean Gaussian per reading,
* **shunt burden** — the 0.1 ohm shunt drops voltage proportional to
  current; the grid model can account for it as a series resistance.

The model is deliberately *not* a register-level emulation; experiments
only consume calibrated current readings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, SensorRangeError


@dataclass(frozen=True)
class Ina219Config:
    """Static configuration of one INA219 instance.

    Defaults follow the datasheet values for the +/-400 mA range used on
    breakout boards with the 0.1 ohm shunt (PGA /1, 12-bit ADC).
    """

    shunt_ohms: float = 0.1
    range_ma: float = 400.0
    adc_bits: int = 12
    offset_max_ma: float = 0.5
    gain_error_max: float = 0.01
    noise_std_ma: float = 0.05

    def __post_init__(self) -> None:
        if self.shunt_ohms <= 0:
            raise ConfigError(f"shunt must be positive, got {self.shunt_ohms}")
        if self.range_ma <= 0:
            raise ConfigError(f"range must be positive, got {self.range_ma}")
        if not 8 <= self.adc_bits <= 16:
            raise ConfigError(f"adc_bits must be in [8, 16], got {self.adc_bits}")
        if self.offset_max_ma < 0:
            raise ConfigError(f"offset bound must be >= 0, got {self.offset_max_ma}")
        if self.gain_error_max < 0:
            raise ConfigError(f"gain error bound must be >= 0, got {self.gain_error_max}")
        if self.noise_std_ma < 0:
            raise ConfigError(f"noise std must be >= 0, got {self.noise_std_ma}")

    @property
    def lsb_ma(self) -> float:
        """Current resolution of one ADC code over the signed range."""
        return 2.0 * self.range_ma / (2 ** self.adc_bits)


class Ina219:
    """One physical sensor instance with frozen per-instance error terms.

    Args:
        config: Static datasheet configuration.
        rng: Random stream used to draw the per-instance offset/gain and
            the per-reading noise.  Pass a stream derived from the device
            name so every instance gets its own error realisation.
    """

    def __init__(self, config: Ina219Config, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng
        self._offset_ma = float(rng.uniform(-config.offset_max_ma, config.offset_max_ma))
        self._gain = float(1.0 + rng.uniform(-config.gain_error_max, config.gain_error_max))
        self._readings_taken = 0

    @property
    def config(self) -> Ina219Config:
        """The static configuration this instance was built with."""
        return self._config

    @property
    def offset_ma(self) -> float:
        """This instance's frozen offset error (mA)."""
        return self._offset_ma

    @property
    def gain(self) -> float:
        """This instance's frozen gain factor (unitless, near 1)."""
        return self._gain

    @property
    def readings_taken(self) -> int:
        """Number of measurements performed so far."""
        return self._readings_taken

    def measure_ma(self, true_current_ma: float) -> float:
        """Return the sensor's reading for a true current (mA).

        Applies gain, offset, Gaussian noise and LSB quantisation, in the
        order the physical signal chain applies them.  Raises
        :class:`~repro.errors.SensorRangeError` when the true current
        exceeds the configured range (the real part saturates; saturated
        data would silently corrupt experiments, so we fail loudly).
        """
        if abs(true_current_ma) > self._config.range_ma:
            raise SensorRangeError(
                f"current {true_current_ma} mA exceeds +/-{self._config.range_ma} mA range"
            )
        noisy = true_current_ma * self._gain + self._offset_ma
        if self._config.noise_std_ma > 0:
            noisy += float(self._rng.normal(0.0, self._config.noise_std_ma))
        lsb = self._config.lsb_ma
        quantised = round(noisy / lsb) * lsb
        self._readings_taken += 1
        return quantised

    def shunt_drop_v(self, true_current_ma: float) -> float:
        """Voltage dropped across the shunt at a given current."""
        return (true_current_ma / 1000.0) * self._config.shunt_ohms
