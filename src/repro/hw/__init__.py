"""Hardware models — the physical layer of the device stack.

Each model reproduces the behaviour of one component of the paper's
testbed at the fidelity the experiments need:

* :class:`~repro.hw.ina219.Ina219` — current/power monitor with the
  datasheet error model (offset, gain, quantisation) that drives the
  Fig. 5 measurement gap,
* :class:`~repro.hw.ds3231.Ds3231Rtc` — real-time clock with ppm drift,
* :class:`~repro.hw.esp32.Esp32Mcu` — device MCU with power states,
* :class:`~repro.hw.rpi.RaspberryPi` — aggregator host model,
* :class:`~repro.hw.battery.Battery` — battery + CC/CV charging curve for
  the e-scooter workload,
* :class:`~repro.hw.powerline.WireSegment` — ohmic wiring model used by
  the grid substrate.
"""

from repro.hw.battery import Battery, CcCvCharger
from repro.hw.ds3231 import Ds3231Rtc
from repro.hw.esp32 import Esp32Mcu, McuState
from repro.hw.ina219 import Ina219, Ina219Config
from repro.hw.powerline import WireSegment
from repro.hw.rpi import RaspberryPi

__all__ = [
    "Battery",
    "CcCvCharger",
    "Ds3231Rtc",
    "Esp32Mcu",
    "McuState",
    "Ina219",
    "Ina219Config",
    "WireSegment",
    "RaspberryPi",
]
