"""DS3231 real-time clock model.

Every device and aggregator in the testbed carries a DS3231 [13], an
extremely accurate TCXO-compensated RTC (+/-2 ppm over the commercial
temperature range).  The paper assumes devices and aggregators are
time-synchronized; this model lets us represent the *residual* error of
that assumption: each RTC runs at a slightly wrong rate and accumulates
offset until the next synchronisation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, HardwareError


class Ds3231Rtc:
    """An RTC with a fixed frequency error and settable offset.

    Args:
        rng: Random stream used to draw the per-instance ppm error.
        ppm_max: Bound of the frequency error (datasheet: 2 ppm).
        aging_ppm_per_year: Slow drift of the frequency error itself.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        ppm_max: float = 2.0,
        aging_ppm_per_year: float = 0.1,
    ) -> None:
        if ppm_max < 0:
            raise ConfigError(f"ppm_max must be >= 0, got {ppm_max}")
        if aging_ppm_per_year < 0:
            raise ConfigError(f"aging must be >= 0, got {aging_ppm_per_year}")
        self._ppm = float(rng.uniform(-ppm_max, ppm_max))
        self._aging_ppm_per_year = aging_ppm_per_year
        self._offset_s = 0.0
        self._last_sync_true_time = 0.0

    @property
    def ppm(self) -> float:
        """This instance's frozen frequency error in parts per million."""
        return self._ppm

    def read(self, true_time: float) -> float:
        """Local clock value at the given true (simulated) time."""
        if true_time < self._last_sync_true_time:
            raise HardwareError(
                f"RTC read at {true_time} before last sync {self._last_sync_true_time}"
            )
        elapsed = true_time - self._last_sync_true_time
        years = elapsed / (365.25 * 24 * 3600)
        effective_ppm = self._ppm + self._aging_ppm_per_year * years
        return true_time + self._offset_s + elapsed * effective_ppm * 1e-6

    def error_at(self, true_time: float) -> float:
        """Clock error (local - true) at the given true time."""
        return self.read(true_time) - true_time

    def synchronize(self, true_time: float) -> float:
        """Discipline the clock to the reference at ``true_time``.

        Returns the correction applied (seconds); the aggregator's time
        synchronisation service calls this on every sync round.
        """
        correction = -self.error_at(true_time)
        self._offset_s = 0.0
        self._last_sync_true_time = true_time
        return correction
