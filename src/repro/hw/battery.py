"""Battery and CC/CV charger models for the e-scooter workload.

The paper's motivating example is an e-scooter that charges in different
networks.  Its grid-side consumption while charging follows the classic
constant-current / constant-voltage profile: flat current until the
battery reaches the CV threshold, then exponentially decaying current
until the termination cutoff.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError, HardwareError
from repro.units import SECONDS_PER_HOUR


class Battery:
    """State-of-charge integrator with a fixed capacity.

    Args:
        capacity_mah: Usable capacity.
        soc: Initial state of charge in [0, 1].
    """

    def __init__(self, capacity_mah: float, soc: float = 0.0) -> None:
        if capacity_mah <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_mah}")
        if not 0.0 <= soc <= 1.0:
            raise ConfigError(f"soc must be in [0, 1], got {soc}")
        self._capacity_mah = capacity_mah
        self._charge_mah = soc * capacity_mah

    @property
    def capacity_mah(self) -> float:
        """Usable capacity in mAh."""
        return self._capacity_mah

    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self._charge_mah / self._capacity_mah

    def add_charge(self, current_ma: float, duration_s: float) -> None:
        """Integrate ``current_ma`` over ``duration_s`` into the SoC."""
        if duration_s < 0:
            raise HardwareError(f"duration must be >= 0, got {duration_s}")
        self._charge_mah += current_ma * duration_s / SECONDS_PER_HOUR
        self._charge_mah = min(self._charge_mah, self._capacity_mah)
        self._charge_mah = max(self._charge_mah, 0.0)

    def drain(self, current_ma: float, duration_s: float) -> None:
        """Discharge at ``current_ma`` for ``duration_s``."""
        self.add_charge(-current_ma, duration_s)


class CcCvCharger:
    """Constant-current / constant-voltage charger.

    The charge current as a function of state of charge:

    * SoC < ``cv_threshold_soc``: the full constant current,
    * above the threshold: exponential decay towards zero, hitting the
      termination current at SoC = 1.

    Args:
        cc_current_ma: Bulk-phase constant current.
        cv_threshold_soc: Where the CV phase begins (typically ~0.8).
        termination_ratio: Current at full charge as a fraction of CC
            current (chargers terminate around 0.05-0.1).
    """

    def __init__(
        self,
        cc_current_ma: float,
        cv_threshold_soc: float = 0.8,
        termination_ratio: float = 0.05,
    ) -> None:
        if cc_current_ma <= 0:
            raise ConfigError(f"CC current must be positive, got {cc_current_ma}")
        if not 0.0 < cv_threshold_soc < 1.0:
            raise ConfigError(
                f"cv threshold must be in (0, 1), got {cv_threshold_soc}"
            )
        if not 0.0 < termination_ratio < 1.0:
            raise ConfigError(
                f"termination ratio must be in (0, 1), got {termination_ratio}"
            )
        self._cc_current_ma = cc_current_ma
        self._cv_threshold_soc = cv_threshold_soc
        self._termination_ratio = termination_ratio

    @property
    def cc_current_ma(self) -> float:
        """Bulk constant current."""
        return self._cc_current_ma

    def charge_current_ma(self, soc: float) -> float:
        """Grid-side charge current at a given battery SoC."""
        if not 0.0 <= soc <= 1.0:
            raise HardwareError(f"soc must be in [0, 1], got {soc}")
        if soc < self._cv_threshold_soc:
            return self._cc_current_ma
        if soc >= 1.0:
            return 0.0
        # Exponential decay from CC current at the threshold down to the
        # termination current at SoC 1.
        span = 1.0 - self._cv_threshold_soc
        progress = (soc - self._cv_threshold_soc) / span
        decay = math.log(self._termination_ratio)
        return self._cc_current_ma * math.exp(decay * progress)

    def step(self, battery: Battery, duration_s: float) -> float:
        """Advance charging by ``duration_s``; returns the current drawn."""
        current = self.charge_current_ma(battery.soc)
        battery.add_charge(current, duration_s)
        return current
