"""Raspberry Pi aggregator host model.

Each aggregator in the testbed is an RPi Model B.  For the experiments
the host contributes (a) a processing latency to every protocol
operation and (b) its own baseline current draw, which the feeder meter
of its network sees.  Latencies are drawn per-operation from a lognormal
around the configured median to represent OS scheduling jitter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class RaspberryPi:
    """Host model with processing-latency sampling and baseline draw.

    Args:
        rng: Random stream for latency jitter.
        median_proc_latency_s: Median per-message processing time.
        jitter_sigma: Lognormal sigma for the latency distribution.
        baseline_current_ma: Host's own draw (RPi B idles near 360 mA).
        supply_voltage_v: Host supply (5 V).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        median_proc_latency_s: float = 0.002,
        jitter_sigma: float = 0.3,
        baseline_current_ma: float = 360.0,
        supply_voltage_v: float = 5.0,
    ) -> None:
        if median_proc_latency_s <= 0:
            raise ConfigError(
                f"median latency must be positive, got {median_proc_latency_s}"
            )
        if jitter_sigma < 0:
            raise ConfigError(f"jitter sigma must be >= 0, got {jitter_sigma}")
        if baseline_current_ma < 0:
            raise ConfigError(f"baseline current must be >= 0, got {baseline_current_ma}")
        if supply_voltage_v <= 0:
            raise ConfigError(f"supply voltage must be positive, got {supply_voltage_v}")
        self._rng = rng
        self._median = median_proc_latency_s
        self._sigma = jitter_sigma
        self._baseline_current_ma = baseline_current_ma
        self._supply_voltage_v = supply_voltage_v

    @property
    def baseline_current_ma(self) -> float:
        """The host's own steady current draw."""
        return self._baseline_current_ma

    @property
    def supply_voltage_v(self) -> float:
        """Host supply voltage."""
        return self._supply_voltage_v

    def processing_latency_s(self) -> float:
        """Sample one per-message processing latency."""
        if self._sigma == 0:
            return self._median
        return float(self._median * self._rng.lognormal(0.0, self._sigma))
