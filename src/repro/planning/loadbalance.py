"""Device-to-aggregator assignment under slot-capacity constraints.

Each aggregator admits at most ``slot_count`` devices; each device can
reach a subset of aggregators (RSSI above the association floor).  Two
policies:

* :func:`greedy_rssi_assignment` — what naive devices do: everyone
  picks their strongest AP, first come first served.  Overloads popular
  locations and strands late arrivals.
* :func:`balance_min_max_utilisation` — the §IV answer: a feasible
  assignment minimising the maximum slot utilisation, found by binary
  search over a capacity cap with a max-flow feasibility check
  (networkx), tie-broken toward stronger RSSI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ConfigError


@dataclass(frozen=True)
class BalanceProblem:
    """One assignment instance.

    Attributes:
        capacities: Free slots per aggregator name.
        reachable: Per device, the RSSI (dBm) of each aggregator it can
            hear, e.g. ``{"dev1": {"agg1": -50.0, "agg2": -70.0}}``.
    """

    capacities: dict[str, int]
    reachable: dict[str, dict[str, float]]

    def __post_init__(self) -> None:
        if not self.capacities:
            raise ConfigError("at least one aggregator required")
        for name, slots in self.capacities.items():
            if slots < 0:
                raise ConfigError(f"capacity of {name} must be >= 0, got {slots}")
        for device, candidates in self.reachable.items():
            if not candidates:
                raise ConfigError(f"device {device} can reach no aggregator")
            unknown = set(candidates) - set(self.capacities)
            if unknown:
                raise ConfigError(f"device {device} references unknown {unknown}")


@dataclass
class Assignment:
    """A computed device-to-aggregator mapping."""

    mapping: dict[str, str] = field(default_factory=dict)
    unassigned: list[str] = field(default_factory=list)

    def load(self, aggregator: str) -> int:
        """Devices assigned to ``aggregator``."""
        return sum(1 for target in self.mapping.values() if target == aggregator)

    def utilisation(self, problem: BalanceProblem) -> dict[str, float]:
        """Per-aggregator load over capacity (0 when capacity is 0)."""
        result = {}
        for name, capacity in problem.capacities.items():
            result[name] = self.load(name) / capacity if capacity else 0.0
        return result

    def max_utilisation(self, problem: BalanceProblem) -> float:
        """The balance objective."""
        values = self.utilisation(problem).values()
        return max(values) if values else 0.0


def greedy_rssi_assignment(problem: BalanceProblem) -> Assignment:
    """Everyone joins their strongest audible AP, in device-name order.

    Devices whose best choices are full cascade to their next-best; a
    device finding everything full ends up unassigned.
    """
    assignment = Assignment()
    remaining = dict(problem.capacities)
    for device in sorted(problem.reachable):
        choices = sorted(
            problem.reachable[device].items(), key=lambda kv: kv[1], reverse=True
        )
        for aggregator, _ in choices:
            if remaining[aggregator] > 0:
                assignment.mapping[device] = aggregator
                remaining[aggregator] -= 1
                break
        else:
            assignment.unassigned.append(device)
    return assignment


def _feasible(problem: BalanceProblem, caps: dict[str, int]) -> dict[str, str] | None:
    """Max-flow feasibility: can every device be placed under ``caps``?"""
    graph = nx.DiGraph()
    source, sink = "__s__", "__t__"
    for device, candidates in problem.reachable.items():
        graph.add_edge(source, f"d:{device}", capacity=1)
        for aggregator in candidates:
            graph.add_edge(f"d:{device}", f"a:{aggregator}", capacity=1)
    for aggregator, cap in caps.items():
        graph.add_edge(f"a:{aggregator}", sink, capacity=cap)
    flow_value, flow = nx.maximum_flow(graph, source, sink)
    if flow_value < len(problem.reachable):
        return None
    mapping: dict[str, str] = {}
    for device in problem.reachable:
        for target, amount in flow[f"d:{device}"].items():
            if amount > 0:
                mapping[device] = target[2:]
                break
    return mapping


def balance_min_max_utilisation(problem: BalanceProblem) -> Assignment:
    """Assignment minimising the maximum slot utilisation.

    Binary-searches the per-aggregator device cap; each candidate cap is
    checked with a max-flow feasibility test.  Returns the mapping for
    the smallest feasible cap; devices are never left unassigned unless
    the instance is infeasible even at full capacity (then the greedy
    fallback result, with its unassigned list, is returned).
    """
    full = {
        name: problem.capacities[name] for name in problem.capacities
    }
    if _feasible(problem, full) is None:
        return greedy_rssi_assignment(problem)

    low, high = 1, max(full.values())
    best_mapping: dict[str, str] | None = None
    while low <= high:
        mid = (low + high) // 2
        caps = {name: min(cap, mid) for name, cap in full.items()}
        mapping = _feasible(problem, caps)
        if mapping is not None:
            best_mapping = mapping
            high = mid - 1
        else:
            low = mid + 1
    assignment = Assignment(mapping=best_mapping or {})
    return assignment
