"""Planning extensions — the paper's §IV "dynamic load-balancing".

"Device mobility introduces unprecedented demand variability and leads
to research problems such as dynamic load-balancing."  This package
makes that research problem concrete:

* :mod:`repro.planning.demand` — per-network demand estimation from the
  ledger (what each grid-location will need to serve),
* :mod:`repro.planning.loadbalance` — assignment of devices to
  aggregators under slot-capacity constraints, minimising the maximum
  utilisation, with a greedy-RSSI baseline for comparison.
"""

from repro.planning.demand import NetworkDemandEstimator
from repro.planning.loadbalance import (
    Assignment,
    BalanceProblem,
    balance_min_max_utilisation,
    greedy_rssi_assignment,
)

__all__ = [
    "NetworkDemandEstimator",
    "Assignment",
    "BalanceProblem",
    "balance_min_max_utilisation",
    "greedy_rssi_assignment",
]
