"""Per-network demand estimation from the ledger.

The common blockchain already holds every validated consumption record
with its serving network; estimating near-future demand per
grid-location is a windowed aggregation plus Holt smoothing (reusing the
device-level predictor), giving the load balancer its inputs.
"""

from __future__ import annotations

from repro.chain.ledger import Blockchain
from repro.device.app.prediction import DemandPredictor
from repro.errors import AnomalyError


class NetworkDemandEstimator:
    """Estimates each network's energy demand per interval.

    Args:
        chain: The common ledger.
        interval_s: Aggregation interval for the demand series.
    """

    def __init__(self, chain: Blockchain, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise AnomalyError(f"interval must be positive, got {interval_s}")
        self._chain = chain
        self._interval_s = interval_s

    def demand_series(self, network: str) -> list[float]:
        """Energy (mWh) per interval served by ``network``, in order."""
        buckets: dict[int, float] = {}
        for block in self._chain:
            for record in block.records:
                if record.get("network") != network:
                    continue
                index = int(float(record["measured_at"]) // self._interval_s)
                buckets[index] = buckets.get(index, 0.0) + float(record["energy_mwh"])
        return [buckets[i] for i in sorted(buckets)]

    def forecast(self, network: str, horizon_intervals: int = 1) -> float:
        """Holt-smoothed demand forecast for ``network``."""
        series = self.demand_series(network)
        predictor = DemandPredictor()
        for value in series:
            predictor.observe(value)
        return predictor.predict(horizon_intervals)

    def forecast_all(self, networks: list[str], horizon_intervals: int = 1) -> dict[str, float]:
        """Forecasts for every listed network."""
        return {
            network: self.forecast(network, horizon_intervals)
            for network in networks
        }
