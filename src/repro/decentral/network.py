"""Devices metering, gossiping and agreeing on a common blockchain.

Round structure (period ``round_interval_s``):

1. **Gossip** — every device broadcasts the records it measured since
   the last round to every peer over the device mesh.
2. **Settle** — a short wait (a few link latencies) lets views converge.
3. **Propose** — the round's proposer (rotating) batches *its own view*
   (its records plus everything gossiped to it) and starts a consensus
   round.
4. **Validate** — every device accepts only if each record it knows
   (its own or gossiped) appears in the batch **unaltered**; a proposer
   that drops or rewrites anything is voted down by everyone who saw
   the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.chain.consensus_net import NetworkedPoaConsensus, NetworkedValidator
from repro.chain.hashing import hash_value
from repro.chain.ledger import Blockchain
from repro.device.firmware import Firmware
from repro.device.metering import EnergyMeter, Measurement
from repro.errors import ConsensusError
from repro.hw.ina219 import Ina219, Ina219Config
from repro.ids import AggregatorId, DeviceId
from repro.net.backhaul import BackhaulLink
from repro.sim.kernel import Simulator
from repro.transport.base import Mesh

LoadProfile = Callable[[float], float]


@dataclass(frozen=True)
class _Gossip:
    """One device's records for one round."""

    round_index: int
    origin: str
    records: tuple[dict[str, Any], ...]


def _record_key(record: dict[str, Any]) -> tuple[str, int]:
    return (str(record.get("device_uid")), int(record.get("sequence", -1)))


class DecentralizedDevice(NetworkedValidator):
    """A self-metering device that is also a consensus validator.

    Args:
        simulator: The kernel.
        device_id: The device's identity.
        mesh: The device-to-device mesh (any
            :class:`~repro.transport.base.Mesh` implementation).
        load_profile: Grid-side draw over time (mA).
        t_measure_s: Sampling interval.
        voltage_v: Supply voltage for the energy computation.
    """

    def __init__(
        self,
        simulator: Simulator,
        device_id: DeviceId,
        mesh: Mesh,
        load_profile: LoadProfile,
        t_measure_s: float = 0.1,
        voltage_v: float = 3.3,
    ) -> None:
        node_id = AggregatorId(f"node-{device_id.name}")
        super().__init__(simulator, node_id, mesh, check=self._validate_batch)
        self._device_id = device_id
        self._mesh = mesh
        sensor = Ina219(Ina219Config(), self.rng("sensor"))
        self._meter = EnergyMeter(sensor, load_profile, voltage_v)
        self._firmware = Firmware(simulator, self._meter, self._on_measurement, t_measure_s)
        self._sequence = 0
        self._staged: list[dict[str, Any]] = []
        # What I know about each round: record key -> record hash.
        self._view: dict[int, dict[tuple[str, int], str]] = {}
        self._round_records: dict[int, list[dict[str, Any]]] = {}
        self._current_round = 0
        self._rejections = 0

    @property
    def device_id(self) -> DeviceId:
        """The metered device's identity."""
        return self._device_id

    @property
    def meter(self) -> EnergyMeter:
        """This device's energy meter."""
        return self._meter

    @property
    def rejections(self) -> int:
        """Proposals this device voted against."""
        return self._rejections

    def start(self) -> None:
        """Begin sampling."""
        self._firmware.start()

    def stop(self) -> None:
        """Halt sampling."""
        self._firmware.stop()

    def _on_measurement(self, measurement: Measurement) -> None:
        record = {
            "device": self._device_id.name,
            "device_uid": self._device_id.uid,
            "sequence": self._sequence,
            "measured_at": measurement.measured_at,
            "interval_s": measurement.interval_s,
            "current_ma": measurement.current_ma,
            "voltage_v": measurement.voltage_v,
            "energy_mwh": measurement.energy_mwh,
        }
        self._sequence += 1
        self._staged.append(record)

    # -- gossip ---------------------------------------------------------

    def broadcast_round(self, round_index: int) -> list[dict[str, Any]]:
        """Gossip staged records to every peer; returns what was sent."""
        records = self._staged
        self._staged = []
        self._remember(round_index, records)
        gossip = _Gossip(round_index, self._device_id.name, tuple(records))
        self._mesh.broadcast(self.node_id, gossip)
        self.trace("decentral.gossip", round=round_index, records=len(records))
        return records

    def _remember(self, round_index: int, records: list[dict[str, Any]]) -> None:
        view = self._view.setdefault(round_index, {})
        bucket = self._round_records.setdefault(round_index, [])
        for record in records:
            view[_record_key(record)] = hash_value(record)
            bucket.append(record)
        # Bound memory: forget rounds older than a few.
        for old in [r for r in self._view if r < round_index - 4]:
            del self._view[old]
            self._round_records.pop(old, None)

    def round_view(self, round_index: int) -> list[dict[str, Any]]:
        """Everything this device knows for a round (own + gossiped)."""
        return list(self._round_records.get(round_index, []))

    def enter_round(self, round_index: int) -> None:
        """Advance the validator's round clock (set by the coordinator)."""
        self._current_round = round_index

    def _on_message(self, source: AggregatorId, payload: Any) -> None:
        if isinstance(payload, _Gossip):
            self._remember(payload.round_index, list(payload.records))
            return
        super()._on_message(source, payload)

    # -- validation -------------------------------------------------------

    def _validate_batch(self, records: list[dict[str, Any]]) -> bool:
        """Accept only batches consistent with my gossip view.

        Every record I know for the current round must be present and
        byte-identical; any batch record claiming a (device, sequence) I
        know but with different content is a rewrite.  Records I never
        saw are tolerated (gossip to me may have raced the proposal).
        """
        view = self._view.get(self._current_round, {})
        batch_by_key = {_record_key(r): hash_value(r) for r in records}
        for key, digest in view.items():
            proposed = batch_by_key.get(key)
            if proposed is None or proposed != digest:
                self._rejections += 1
                return False
        return True


class DecentralizedNetwork:
    """Round coordinator for a committee of decentralized devices.

    Args:
        simulator: The kernel.
        devices: The committee (also the validator set).
        chain: The common blockchain.
        link_latency_s: Device-to-device mesh latency (fully meshed).
        round_interval_s: Gossip-and-commit period.
        gossip_settle_s: Wait between gossip and proposal.
    """

    def __init__(
        self,
        simulator: Simulator,
        devices: list[DecentralizedDevice],
        chain: Blockchain,
        link_latency_s: float = 0.002,
        round_interval_s: float = 1.0,
        gossip_settle_s: float = 0.05,
    ) -> None:
        if len(devices) < 2:
            raise ConsensusError("a decentralized committee needs >= 2 devices")
        if round_interval_s <= gossip_settle_s:
            raise ConsensusError("round interval must exceed the gossip settle time")
        self._sim = simulator
        self._devices = list(devices)
        self._chain = chain
        self._round_interval_s = round_interval_s
        self._gossip_settle_s = gossip_settle_s
        # Fully mesh the committee.
        for i, a in enumerate(devices):
            for b in devices[i + 1:]:
                a.mesh.connect(
                    BackhaulLink(a.node_id, b.node_id, latency_s=link_latency_s)
                )
        self._consensus = NetworkedPoaConsensus(simulator, devices, chain)
        self._round_index = 0
        self._commits = 0
        self._failures = 0
        self._latencies: list[float] = []
        self._task = None

    @property
    def commits(self) -> int:
        """Rounds that committed a block."""
        return self._commits

    @property
    def failures(self) -> int:
        """Rounds rejected by the committee."""
        return self._failures

    @property
    def commit_latencies(self) -> list[float]:
        """Consensus latency of every decided round."""
        return list(self._latencies)

    def start(self) -> None:
        """Start sampling on every device and begin rounds."""
        for device in self._devices:
            device.start()
        if self._task is None:
            self._task = self._sim.every(
                self._round_interval_s, self._run_round, label="decentral:round"
            )

    def stop(self) -> None:
        """Stop rounds and sampling."""
        if self._task is not None:
            self._task.stop()
            self._task = None
        for device in self._devices:
            device.stop()

    def drain(self) -> None:
        """Stop sampling, then run one final round for the leftovers.

        Without this, measurements taken after the last periodic round
        would stay staged forever when the committee shuts down.
        """
        self.stop()
        self._run_round()

    def _run_round(self) -> None:
        round_index = self._round_index
        self._round_index += 1
        for device in self._devices:
            device.enter_round(round_index)
            device.broadcast_round(round_index)
        proposer = self._devices[round_index % len(self._devices)]

        def _propose() -> None:
            batch = proposer.round_view(round_index)
            if not batch:
                return
            self._consensus.propose(batch, self._on_decided)

        self._sim.call_later(self._gossip_settle_s, _propose, label="decentral:propose")

    def _on_decided(self, committed: bool, latency_s: float) -> None:
        if committed:
            self._commits += 1
        else:
            self._failures += 1
        self._latencies.append(latency_s)
