"""The fully decentralized variant — no aggregator at all.

§II-A: "In a truly decentralized network, the aggregators' role could be
performed by the devices themselves having a consensus among themselves.
In that case, the consumption data must be broadcast to the network and
a common blockchain is formed once a consensus is achieved among them."

This package runs that sentence: :class:`~repro.decentral.network.
DecentralizedDevice` meters itself, gossips its records to every peer,
and validates proposed blocks against its own gossip view;
:class:`~repro.decentral.network.DecentralizedNetwork` coordinates
per-round proposals through the latency-aware PoA consensus.  A proposer
that drops or alters anyone's records is rejected by every peer that saw
the original gossip.
"""

from repro.decentral.network import DecentralizedDevice, DecentralizedNetwork

__all__ = ["DecentralizedDevice", "DecentralizedNetwork"]
