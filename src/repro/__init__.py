"""repro — reproduction of "Real-Time Energy Monitoring in IoT-enabled
Mobile Devices" (Shivaraman et al., DATE 2020).

A decentralized, blockchain-backed energy-metering architecture for
mobile IoT devices, rebuilt on a discrete-event simulation substrate.
The public API re-exports the pieces a downstream user composes:

>>> from repro import build_paper_testbed
>>> scenario = build_paper_testbed(seed=7)
>>> scenario.run_until(30.0)
>>> scenario.chain.validate()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.aggregator import AggregatorConfig, AggregatorUnit
from repro.billing import BillingEngine, FlatTariff, TimeOfUseTariff
from repro.chain import Blockchain, audit_chain
from repro.device import DeviceConfig, MeteringDevice
from repro.experiments import (
    run_fig5,
    run_fig6,
    run_handshake_distribution,
)
from repro.ids import AggregatorId, DeviceId, NetworkAddress
from repro.runtime import ScenarioSpec, SimContext, build
from repro.sim import Simulator
from repro.workloads import (
    MobilityTrace,
    Scenario,
    build_paper_testbed,
    build_scaled_scenario,
    paper_testbed_spec,
    scaled_spec,
)

__version__ = "1.0.0"

__all__ = [
    "AggregatorConfig",
    "AggregatorUnit",
    "BillingEngine",
    "FlatTariff",
    "TimeOfUseTariff",
    "Blockchain",
    "audit_chain",
    "DeviceConfig",
    "MeteringDevice",
    "run_fig5",
    "run_fig6",
    "run_handshake_distribution",
    "AggregatorId",
    "DeviceId",
    "NetworkAddress",
    "Simulator",
    "SimContext",
    "ScenarioSpec",
    "build",
    "MobilityTrace",
    "Scenario",
    "paper_testbed_spec",
    "scaled_spec",
    "build_paper_testbed",
    "build_scaled_scenario",
    "__version__",
]
